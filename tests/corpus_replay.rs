//! Corpus replay: every minimized fuzz case in `tests/corpus/` must
//! route with a clean verify report and pass every fuzz oracle when
//! replayed against the honest router roster.
//!
//! The corpus files are shrinker output — each one is the minimal
//! reproducer of a deliberately injected router fault (see
//! `route_fuzz::fault`). With the fault absent they pin the exact
//! instances the oracles once tripped on, so any regression that
//! reintroduces a stale-occupancy or hidden-failure bug fails here
//! with a replayable, single-digit-net case file.

use vlsi_route::fuzz::{evaluate_case, FuzzCase, RouterSet};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::DetailedRouter;
use vlsi_route::verify::verify;

fn corpus() -> Vec<(String, FuzzCase)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut cases: Vec<(String, FuzzCase)> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .map(|p| {
            let name = p.file_name().expect("case file name").to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable case file");
            let case =
                FuzzCase::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, case)
        })
        .collect();
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(cases.len() >= 5, "the corpus holds a meaningful case set, found {}", cases.len());
    cases
}

#[test]
fn corpus_cases_are_minimized() {
    for (name, case) in corpus() {
        assert!(
            case.net_count() <= 8,
            "{name}: corpus cases are shrinker output, expected <= 8 nets, got {}",
            case.net_count()
        );
        assert!(case.try_build().is_some(), "{name}: case builds");
    }
}

#[test]
fn corpus_replays_clean_through_every_oracle() {
    let routers = RouterSet::standard(None);
    for (name, case) in corpus() {
        let violations = evaluate_case(&case, &routers, 1);
        assert!(violations.is_empty(), "{name}: {case} -> {violations:?}");
    }
}

#[test]
fn corpus_replays_with_clean_verify_reports() {
    // The direct form of the DRC oracle, without going through the
    // fuzz driver: route each corpus instance with the rip-up router
    // and hand the result to the independent checker.
    let router = MightyRouter::new(RouterConfig::default());
    for (name, case) in corpus() {
        let problem = case.build();
        let routing = DetailedRouter::route(&router, &problem)
            .unwrap_or_else(|e| panic!("{name}: routes without error, got {e}"));
        let report = verify(&problem, &routing.db);
        if routing.is_complete() {
            assert!(report.is_clean(), "{name}: claimed complete but: {report}");
        } else {
            // Legal-but-incomplete is honest as long as the claim
            // matches the recomputed connectivity.
            assert!(report.is_legal_but_incomplete(), "{name}: {report}");
            assert_eq!(
                report.disconnected_nets(),
                routing.failed.len(),
                "{name}: claimed failed set matches the verifier"
            );
        }
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    let router = MightyRouter::new(RouterConfig::default());
    for (name, case) in corpus() {
        let a = DetailedRouter::route(&router, &case.build()).expect("routes");
        let b = DetailedRouter::route(&router, &case.build()).expect("routes");
        assert_eq!(a.db.checksum(), b.db.checksum(), "{name}: replay is bit-stable");
        assert_eq!(a.failed, b.failed, "{name}");
    }
}
