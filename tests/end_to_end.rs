//! Cross-crate integration tests: full pipelines from instance
//! generation through routing to independent verification.

use vlsi_route::benchdata::format::{parse_channel, parse_problem, write_channel, write_problem};
use vlsi_route::benchdata::gen::{ChannelGen, ObstructedGen, SwitchboxGen};
use vlsi_route::benchdata::{burstein_class, burstein_class_width, deutsch_class, BURSTEIN_WIDTH};
use vlsi_route::channel::{dogleg, greedy, lea, yacr};
use vlsi_route::maze::{sequential, CostModel};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::RouteDb;
use vlsi_route::verify::verify;

#[test]
fn generated_switchbox_routes_and_verifies() {
    let problem = SwitchboxGen { width: 14, height: 12, nets: 12, seed: 77 }.build();
    let out = MightyRouter::new(RouterConfig::default()).route(&problem);
    assert!(out.is_complete(), "failed nets: {:?}", out.failed());
    assert!(verify(&problem, out.db()).is_clean());
}

#[test]
fn burstein_class_headline_result() {
    // The abstract's claim, end to end: the difficult switchbox routes
    // completely, and still routes with one less column, while the
    // sequential baseline fails even at nominal width.
    for width in [BURSTEIN_WIDTH, BURSTEIN_WIDTH - 1] {
        let problem = burstein_class_width(width);
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        assert!(out.is_complete(), "rip-up must complete at width {width}");
        assert!(verify(&problem, out.db()).is_clean());
    }
    let nominal = burstein_class();
    let seq = sequential::route_all(&nominal, CostModel::default());
    assert!(!seq.is_complete(), "the baseline is expected to fail this box");
}

#[test]
fn deutsch_class_routes_at_density() {
    let spec = deutsch_class();
    let tracks = spec.density() as usize;
    let problem = spec.to_problem(tracks);
    let out = MightyRouter::new(RouterConfig::default()).route(&problem);
    assert!(out.is_complete(), "rip-up must route the difficult channel in density");
    assert!(verify(&problem, out.db()).is_clean());
}

#[test]
fn channel_router_hierarchy_on_one_instance() {
    // One mid-size channel through all routers; verified track counts
    // must respect density and the expected quality ordering must hold
    // loosely (rip-up no worse than the classical routers).
    let spec =
        ChannelGen { width: 40, nets: 16, extra_pin_pct: 30, span_window: 14, seed: 31 }.build();
    let density = spec.density() as usize;

    let mut results: Vec<(&str, usize)> = Vec::new();
    if let Ok(sol) = lea::route(&spec) {
        let (p, db) = sol.layout.realize(&spec).unwrap();
        assert!(verify(&p, &db).is_clean());
        results.push(("lea", sol.tracks));
    }
    if let Ok(sol) = dogleg::route(&spec) {
        let (p, db) = sol.layout.realize(&spec).unwrap();
        assert!(verify(&p, &db).is_clean());
        results.push(("dogleg", sol.tracks));
    }
    let greedy_sol = greedy::route(&spec).expect("greedy always completes");
    {
        let (p, db) = greedy_sol.layout.realize(&spec).unwrap();
        assert!(verify(&p, &db).is_clean());
        results.push(("greedy", greedy_sol.tracks));
    }
    if let Ok(sol) = yacr::route(&spec, 8) {
        assert!(verify(&sol.problem, &sol.db).is_clean());
        results.push(("yacr", sol.tracks));
    }

    // Rip-up/reroute minimum-track search.
    let router = MightyRouter::new(RouterConfig::default());
    let mut ripup_tracks = None;
    for extra in 0..=8usize {
        let problem = spec.to_problem(density + extra);
        let out = router.route(&problem);
        if out.is_complete() {
            assert!(verify(&problem, out.db()).is_clean());
            ripup_tracks = Some(density + extra);
            break;
        }
    }
    let ripup = ripup_tracks.expect("rip-up routes this channel");

    for (name, tracks) in &results {
        assert!(*tracks >= density, "{name} beat the density bound?!");
        assert!(ripup <= *tracks, "rip-up ({ripup}) worse than {name} ({tracks})");
    }
}

#[test]
fn obstructed_region_full_pipeline() {
    let problem =
        ObstructedGen { width: 18, height: 18, nets: 10, obstacle_pct: 15, seed: 9 }.build();
    let out = MightyRouter::new(RouterConfig::default()).route(&problem);
    let report = verify(&problem, out.db());
    assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
}

#[test]
fn text_format_round_trips_through_routing() {
    let problem = SwitchboxGen { width: 10, height: 8, nets: 6, seed: 5 }.build();
    let text = write_problem(&problem);
    let parsed = parse_problem(&text).expect("round trip parses");
    assert_eq!(problem, parsed);
    let out = MightyRouter::new(RouterConfig::default()).route(&parsed);
    assert!(verify(&parsed, out.db()).is_clean() || !out.is_complete());

    let spec = deutsch_class();
    let spec2 = parse_channel(&write_channel(&spec)).expect("channel round trip");
    assert_eq!(spec, spec2);
}

#[test]
fn incremental_repair_respects_existing_wiring() {
    // Pre-route half the nets sequentially, then hand the database to
    // the incremental router for the rest.
    let problem = SwitchboxGen { width: 14, height: 12, nets: 10, seed: 12 }.build();
    let mut db = RouteDb::new(&problem);
    for net in problem.nets().iter().take(5) {
        let _ = sequential::connect_net(&mut db, net.id, CostModel::default());
    }
    let out = MightyRouter::new(RouterConfig::default())
        .try_route_incremental(&problem, db)
        .expect("database built for this problem");
    let report = verify(&problem, out.db());
    assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    assert!(out.is_complete(), "incremental completion failed: {:?}", out.failed());
}

#[test]
fn verifier_counts_match_router_reports_across_suite() {
    for seed in 0..5 {
        let problem = SwitchboxGen { width: 16, height: 16, nets: 24, seed }.build();
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let report = verify(&problem, out.db());
        assert_eq!(out.failed().len(), report.disconnected_nets(), "seed {seed}");
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "seed {seed}: {report}");
    }
}
