//! Frontier equivalence: the bucket-queue and binary-heap frontiers
//! are defined to be *bit-identical*, not merely both-correct. Every
//! corpus case and a fuzz-seed sweep must produce the same
//! `RouteDb::checksum()`, the same failed set, and the same golden
//! observer event sequence under both [`FrontierKind`]s, for both the
//! rip-up router and the sequential Lee baseline.

use vlsi_route::fuzz::{case_for_seed, FuzzCase};
use vlsi_route::maze::sequential::route_all_in;
use vlsi_route::maze::{CostModel, ProbeKind, SearchArena};
use vlsi_route::mighty::{FrontierKind, MightyRouter, RouterConfig};
use vlsi_route::model::{EventLog, Problem};

fn corpus_problems() -> Vec<(String, Problem)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut cases: Vec<(String, Problem)> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .map(|p| {
            let name = p.file_name().expect("case file name").to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable case file");
            let case =
                FuzzCase::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, case.build())
        })
        .collect();
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

fn router(frontier: FrontierKind) -> MightyRouter {
    MightyRouter::new(RouterConfig { frontier, ..RouterConfig::default() })
}

#[test]
fn corpus_checksums_match_across_frontiers() {
    let (heap, buckets) = (router(FrontierKind::Heap), router(FrontierKind::Buckets));
    for (name, problem) in corpus_problems() {
        let a = heap.route(&problem);
        let b = buckets.route(&problem);
        assert_eq!(a.db().checksum(), b.db().checksum(), "{name}: checksum parity");
        assert_eq!(a.failed(), b.failed(), "{name}: failed-set parity");
    }
}

#[test]
fn corpus_event_sequences_match_across_frontiers() {
    // Stronger than checksum parity: the frontiers must drive the
    // router through the *same* schedule — every rip-up, penalty, and
    // commit event in the same order with the same payloads.
    let (heap, buckets) = (router(FrontierKind::Heap), router(FrontierKind::Buckets));
    for (name, problem) in corpus_problems() {
        let mut log_a = EventLog::default();
        let mut log_b = EventLog::default();
        let a = heap.route_observed(&problem, &mut log_a);
        let b = buckets.route_observed(&problem, &mut log_b);
        assert_eq!(a.db().checksum(), b.db().checksum(), "{name}");
        assert_eq!(log_a, log_b, "{name}: golden event sequences diverge");
        assert!(!log_a.events().is_empty(), "{name}: observer saw the route");
    }
}

#[test]
fn fuzz_seed_sweep_checksums_match_across_frontiers() {
    // A slice of the same deterministic seed walk `vroute fuzz` uses;
    // the full 0..3000 sweep runs release-mode via the fuzz oracle
    // (`FrontierDivergence`), this pins a fast cross-section in tier 1.
    let (heap, buckets) = (router(FrontierKind::Heap), router(FrontierKind::Buckets));
    for seed in 0..120 {
        let case = case_for_seed(seed);
        let Some(problem) = case.try_build() else { continue };
        let a = heap.route(&problem);
        let b = buckets.route(&problem);
        assert_eq!(a.db().checksum(), b.db().checksum(), "seed {seed}: {case}");
        assert_eq!(a.failed(), b.failed(), "seed {seed}: {case}");
    }
}

#[test]
fn lee_baseline_matches_across_frontiers_and_probes() {
    // The sequential Lee router consumes the arena directly; sweep all
    // frontier x probe corners against the default configuration.
    for (name, problem) in corpus_problems() {
        let mut reference = SearchArena::with_config(FrontierKind::Heap, ProbeKind::Scalar);
        let want = route_all_in(&problem, CostModel::default(), &mut reference);
        for kind in [FrontierKind::Heap, FrontierKind::Buckets] {
            for probe in [ProbeKind::Scalar, ProbeKind::Bits] {
                let mut arena = SearchArena::with_config(kind, probe);
                let got = route_all_in(&problem, CostModel::default(), &mut arena);
                assert_eq!(
                    got.db.checksum(),
                    want.db.checksum(),
                    "{name}: lee {kind:?}/{probe:?} diverged"
                );
                assert_eq!(got.failed, want.failed, "{name}: lee {kind:?}/{probe:?}");
            }
        }
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_search_shims_stay_equivalent() {
    use vlsi_route::maze::search::{find_path_in, find_path_with, Query};
    use vlsi_route::model::{RouteDb, Step};

    let (_, problem) = corpus_problems().into_iter().next().expect("corpus nonempty");
    let db = RouteDb::new(&problem);
    let net = problem.nets().first().expect("net").id;
    let pins = problem.nets()[net.index()].pins.clone();
    let step = |p: &vlsi_route::model::Pin| Step { at: p.at, layer: p.layer };
    let query = Query {
        grid: db.grid(),
        net,
        sources: vec![step(&pins[0])],
        targets: pins[1..].iter().map(step).collect(),
        cost: CostModel::default(),
    };
    let mut a = SearchArena::new();
    let mut b = SearchArena::new();
    let new = find_path_in(&mut a, &query);
    let old = find_path_with(&mut b, &query);
    assert_eq!(new.is_some(), old.is_some(), "shim finds iff the new entry point finds");
    if let (Some(n), Some(o)) = (new, old) {
        assert_eq!(n.trace, o.trace, "identical path through the deprecated shim");
        assert_eq!(n.cost, o.cost);
    }
}
