//! Golden chip-flow tests: fixed-seed synthetic chips routed through
//! the full hierarchical pipeline (plan → parallel per-tile detail →
//! seam stitch → fallback) must be bit-for-bit deterministic across
//! worker counts, and the stitched database must hold up under the
//! independent verifier and the whole-database lint registry.

use vlsi_route::analyze::{lint_db, lint_salvage_chip};
use vlsi_route::benchdata::gen::ChipGen;
use vlsi_route::global::{
    route_hierarchical, route_hierarchical_supervised, ChipSupervision, GlobalConfig, GlobalOutcome,
};
use vlsi_route::mighty::ChipJournal;
use vlsi_route::model::Problem;
use vlsi_route::verify::verify;

/// The fixed golden instances: small enough for debug-mode CI, large
/// enough that every tile boundary mechanism (crossings, seam repair,
/// fallback) is exercised.
fn golden_chips() -> Vec<(Problem, GlobalConfig)> {
    let cfg16 = GlobalConfig { tile: 16, ..GlobalConfig::default() };
    vec![
        (
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(11) }.build(),
            cfg16,
        ),
        (
            ChipGen { width: 96, height: 96, nets: 420, macros: 6, ..ChipGen::small(3) }.build(),
            cfg16,
        ),
    ]
}

fn route_with_jobs(problem: &Problem, cfg: &GlobalConfig, jobs: usize) -> GlobalOutcome {
    let cfg = GlobalConfig { jobs, ..*cfg };
    route_hierarchical(problem, &cfg)
}

#[test]
fn chip_flow_is_deterministic_across_worker_counts() {
    for (i, (problem, cfg)) in golden_chips().into_iter().enumerate() {
        let one = route_with_jobs(&problem, &cfg, 1);
        for jobs in [2, 4] {
            let many = route_with_jobs(&problem, &cfg, jobs);
            assert_eq!(
                one.db().checksum(),
                many.db().checksum(),
                "chip {i}: jobs 1 vs {jobs} databases differ"
            );
            assert_eq!(one.failed(), many.failed(), "chip {i}: failed sets differ at jobs {jobs}");
            assert_eq!(one.stats(), many.stats(), "chip {i}: global stats differ at jobs {jobs}");
            assert_eq!(
                one.chip_stats(),
                many.chip_stats(),
                "chip {i}: chip stats differ at jobs {jobs}"
            );
        }
    }
}

#[test]
fn stitched_databases_pass_verifier_and_lints() {
    for (i, (problem, cfg)) in golden_chips().into_iter().enumerate() {
        let out = route_with_jobs(&problem, &cfg, 4);
        let report = verify(&problem, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "chip {i}: {report}");
        // The whole-database lint registry (L001..L009) over the
        // stitched result, chip-aware: every error rule must pass once
        // honestly declared failures are excused (L004 fires on
        // *undeclared* disconnections only). Orphaned anchor stubs are
        // excused only *outside* the seam bands, so any L009 warning
        // that survives marks a pin the seam surgery itself stranded —
        // those must all belong to nets the flow honestly reported
        // failed, never to nets it claims routed.
        let salvage = lint_salvage_chip(&problem, out.db(), out.failed(), cfg.tile, 3);
        assert!(salvage.is_legal(), "chip {i}: lint errors: {:?}", salvage.diagnostics());
        let failed: std::collections::BTreeSet<_> = out.failed().iter().copied().collect();
        for finding in salvage.findings().iter().filter(|f| f.rule().code == "L009") {
            let d = finding.to_diagnostic();
            assert!(
                d.net.is_some_and(|n| failed.contains(&n)),
                "chip {i}: seam surgery stranded an anchor on a net it claims routed: {d:?}"
            );
        }
        let lint = lint_db(&problem, out.db());
        assert!(
            lint.findings().iter().all(|f| f.rule().code != "L008"),
            "chip {i}: dead wire after stitch: {:?}",
            lint.diagnostics()
        );
    }
}

#[test]
fn chip_flow_accounts_for_every_net_exactly_once() {
    // Honesty golden: routed + failed partitions the net list, and
    // `is_complete` answers from the final database, not the plan.
    let (problem, cfg) = golden_chips().remove(0);
    let out = route_with_jobs(&problem, &cfg, 2);
    let nets = problem.nets().len();
    assert!(out.failed().len() <= nets);
    let verified = verify(&problem, out.db());
    assert_eq!(
        out.is_complete(),
        verified.is_clean(),
        "is_complete must agree with the independent verifier"
    );
    // Failed nets are exactly the disconnected ones in the verifier's eyes.
    let mut failed: Vec<_> = out.failed().to_vec();
    failed.sort_unstable();
    let mut disconnected: Vec<_> = verified
        .violations()
        .iter()
        .filter_map(|v| match v {
            vlsi_route::verify::Violation::Disconnected { net, .. } => Some(*net),
            _ => None,
        })
        .collect();
    disconnected.sort_unstable();
    disconnected.dedup();
    assert_eq!(failed, disconnected);
}

#[test]
fn seed_727_stitch_finding_routes_to_completion() {
    // Regression for the fuzz finding at switchbox seed 727: the
    // tiled flow left one crossing net disconnected after the stitch
    // pass until the seam-repair escalation ladder (widened band,
    // re-anchored band, per-net flat reroute) was added. The shrunk
    // case lives in tests/corpus/stitch-727.case; this test pins the
    // hierarchical flow itself completing it.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/stitch-727.case"
    ))
    .expect("the shrunk seed-727 case is in the corpus");
    let case = vlsi_route::fuzz::FuzzCase::parse(&text).expect("case parses");
    let problem = case.try_build().expect("case builds");
    let cfg = GlobalConfig { tile: 8, ..GlobalConfig::default() };
    let out = route_hierarchical(&problem, &cfg);
    assert!(
        out.is_complete(),
        "seed 727 must complete through the escalation ladder: failed {:?} ({:?})",
        out.failed(),
        out.chip_stats()
    );
    assert!(verify(&problem, out.db()).is_clean());
}

#[test]
fn journaled_chip_resumes_byte_identically_after_a_simulated_kill() {
    // Crash-safety golden: journal a chip run, cut the journal off
    // mid-file the way a SIGKILL would, and resume. Replayed tiles
    // must reproduce the uninterrupted database byte for byte — the
    // journal's stitch/final checkpoints cross-check that claim from
    // inside the flow, and this test re-checks it from outside.
    let dir = std::env::temp_dir().join("vroute-chip-flow-kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let (problem, cfg) = golden_chips().remove(0);
    let sup = ChipSupervision::default();

    let journal = ChipJournal::create(&dir).expect("journal dir");
    let first = route_hierarchical_supervised(&problem, &cfg, &sup, Some(&journal));
    assert_eq!(first.journal_error(), None);
    drop(journal);

    let path = dir.join(ChipJournal::FILE_NAME);
    let bytes = std::fs::read(&path).expect("journal written");
    assert!(bytes.len() > 64, "the journal holds per-tile records");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("simulated kill");

    let journal = ChipJournal::resume(&dir).expect("journal reopens");
    let resumed = route_hierarchical_supervised(&problem, &cfg, &sup, Some(&journal));
    assert!(resumed.resumed_tiles() > 0, "the surviving journal prefix must replay");
    assert_eq!(resumed.journal_error(), None, "checkpoints must match the first run");
    assert_eq!(first.db().checksum(), resumed.db().checksum());
    assert_eq!(first.failed(), resumed.failed());
    assert_eq!(first.stats(), resumed.stats());
    assert_eq!(first.chip_stats(), resumed.chip_stats());
    let _ = std::fs::remove_dir_all(&dir);
}
