//! Golden diagnostics for the static analyzer over the fuzz corpus.
//!
//! Every corpus case is run through the pre-route feasibility analysis
//! and its rendered diagnostics are compared against a pinned golden
//! string — most cases are feasible and must stay diagnostic-free,
//! while `obstructed-infeasible.case` must keep firing its
//! density-overflow certificate. A second test closes the acceptance
//! loop: the batch engine's precheck skips the certified case with an
//! `Infeasible` outcome instead of burning router budget on it.

use vlsi_route::analyze::{analyze_problem, lint_db, render_text, Severity};
use vlsi_route::fuzz::FuzzCase;
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::RouteError;
use vlsi_route::{EngineConfig, RouteEngine};

fn corpus() -> Vec<(String, FuzzCase)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut cases: Vec<(String, FuzzCase)> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .map(|p| {
            let name = p.file_name().expect("case file name").to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable case file");
            let case =
                FuzzCase::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, case)
        })
        .collect();
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

/// The expected feasibility diagnostics per corpus case. Everything
/// not listed here must analyze clean.
const GOLDEN: &[(&str, &str)] = &[(
    "obstructed-infeasible.case",
    "error[F001/density-overflow]: density overflow at the cut between rows 4 and 5: \
     3 crossing nets, 2 free cell pairs\n  --> (0, 4)..(7, 5)\n  \
     = hint: widen the channel, add a layer, or move pins off the saturated cut\n1 error\n",
)];

#[test]
fn corpus_feasibility_diagnostics_match_the_golden_set() {
    let mut fired = 0usize;
    for (name, case) in corpus() {
        let report = analyze_problem(&case.build());
        let rendered = render_text(report.diagnostics());
        let expected =
            GOLDEN.iter().find(|(n, _)| *n == name.as_str()).map_or("", |(_, text)| *text);
        assert_eq!(rendered, expected, "{name}: feasibility diagnostics drifted");
        if !report.is_feasible() {
            fired += 1;
        }
    }
    assert_eq!(fired, GOLDEN.len(), "every golden entry corresponds to a certificate");
}

#[test]
fn corpus_certificates_replay_against_their_instances() {
    for (name, case) in corpus() {
        let problem = case.build();
        for cert in analyze_problem(&problem).certificates() {
            assert!(
                cert.replay(&problem),
                "{name}: certificate does not replay: {}",
                cert.summary()
            );
        }
    }
}

#[test]
fn corpus_routings_lint_without_unexpected_errors() {
    // The lint registry over every honest rip-up result: warnings are
    // permitted (dead wires on failed nets, say), and the only legal
    // error is a disconnected-net finding on a net the router itself
    // reported as failed — the lint form of "legal but incomplete".
    let router = MightyRouter::new(RouterConfig::default());
    for (name, case) in corpus() {
        let problem = case.build();
        let routing = vlsi_route::model::DetailedRouter::route(&router, &problem).expect("routes");
        let report = lint_db(&problem, &routing.db);
        let errors: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .filter(|d| d.code != "L004" || !d.net.is_some_and(|n| routing.failed.contains(&n)))
            .collect();
        assert!(errors.is_empty(), "{name}: lint errors on an honest routing: {errors:?}");
    }
}

#[test]
fn engine_precheck_skips_the_certified_corpus_case() {
    let problems: Vec<_> = corpus()
        .into_iter()
        .filter(|(name, _)| name == "obstructed-infeasible.case" || name == "switchbox-min-01.case")
        .map(|(name, case)| (name, case.build()))
        .collect();
    assert_eq!(problems.len(), 2, "both driver cases present");
    let infeasible_at = problems
        .iter()
        .position(|(name, _)| name == "obstructed-infeasible.case")
        .expect("certified case present");
    let instances: Vec<_> = problems.into_iter().map(|(_, p)| p).collect();

    let engine = RouteEngine::new(EngineConfig { jobs: 1, precheck: true, ..Default::default() });
    let batch = engine.route_batch(&MightyRouter::new(RouterConfig::default()), &instances);
    assert_eq!(batch.stats.infeasible, 1, "exactly the certified case is skipped");
    assert_eq!(batch.stats.complete, 1, "the feasible case still routes");
    match &batch.results[infeasible_at] {
        Err(RouteError::Infeasible { reason }) => {
            assert!(reason.contains("density overflow"), "{reason}");
        }
        other => panic!("expected an infeasible outcome, got {other:?}"),
    }
}
