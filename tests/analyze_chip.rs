//! Chip-scale analysis integration tests: the golden certificate
//! corpus under `tests/corpus/chip-*.sb` must keep firing (and
//! replaying) its F004/F006 certificates, the `analyze` precheck gate
//! on the hierarchical flow must skip certified nets without touching
//! anything else, and the feature-ordering knob must stay
//! `--jobs`-independent.

use std::collections::BTreeSet;

use vlsi_route::analyze::{analyze_chip, InfeasibilityCertificate};
use vlsi_route::benchdata::format::{parse_problem, write_problem};
use vlsi_route::benchdata::gen::ChipGen;
use vlsi_route::geom::Point;
use vlsi_route::global::{route_hierarchical, GlobalConfig, PlanOrder};
use vlsi_route::model::{Problem, ProblemBuilder};

/// Tile size shared by the corpus generator, the corpus tests and the
/// fuzz oracle — small enough that a 32-cell board has real seams.
const TILE: u32 = 8;

/// The pinned ChipGen seed for corpus regeneration: its pin placement
/// keeps the x = 15/16 wall columns pin-free (see `walled_chip`).
const CORPUS_SEED: u64 = 1;

fn corpus_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus")).join(name)
}

fn corpus_gen(seed: u64) -> ChipGen {
    ChipGen {
        width: 32,
        height: 16,
        nets: 10,
        macros: 0,
        span: 8,
        long_pct: 60,
        multi_pct: 0,
        seed,
    }
}

/// Rebuilds a generated chip with a two-column wall along the vertical
/// tile boundary at x = 15/16, leaving the bottom `gap` rows open on
/// both layers. Pin placement comes verbatim from [`ChipGen`]; the
/// construction demands that no pin lands on a wall column so the
/// certificate arithmetic stays exact (capacity = `2 * gap` pairs).
fn walled_chip(seed: u64, gap: i32) -> Option<Problem> {
    let base = corpus_gen(seed).build();
    let pins: BTreeSet<Point> =
        base.nets().iter().flat_map(|n| n.pins.iter().map(|p| p.at)).collect();
    if pins.iter().any(|p| p.x == 15 || p.x == 16) {
        return None;
    }
    let mut b = ProblemBuilder::switchbox(base.width(), base.height());
    for x in [15, 16] {
        for y in gap..base.height() as i32 {
            b.obstacle(Point::new(x, y));
        }
    }
    for net in base.nets() {
        let mut nb = b.net(net.name.clone());
        for pin in &net.pins {
            nb.pin_at(pin.at, pin.layer);
        }
    }
    Some(b.build().expect("walled corpus chip builds"))
}

fn is_f004(c: &InfeasibilityCertificate) -> bool {
    matches!(c, InfeasibilityCertificate::TileCutSaturated { .. })
}

fn is_f006(c: &InfeasibilityCertificate) -> bool {
    matches!(c, InfeasibilityCertificate::WalledTileRegion { .. })
}

#[test]
#[ignore = "one-off: scan ChipGen seeds for a corpus-friendly placement"]
fn scan_corpus_seeds() {
    for seed in 0..64u64 {
        let Some(choked) = walled_chip(seed, 1) else { continue };
        let Some(sealed) = walled_chip(seed, 0) else { continue };
        let f004 = analyze_chip(&choked, TILE).certificates().iter().any(is_f004);
        let f006 = analyze_chip(&sealed, TILE).certificates().iter().any(is_f006);
        println!("seed {seed}: f004={f004} f006={f006}");
        if f004 && f006 {
            println!("seed {seed} works");
            return;
        }
    }
    panic!("no seed in 0..64 works");
}

/// Regenerates the golden corpus files. Run explicitly after changing
/// the construction:
///
/// ```text
/// cargo test --test analyze_chip regenerate_corpus -- --ignored
/// ```
#[test]
#[ignore = "writes tests/corpus/chip-*.sb; run explicitly to regenerate"]
fn regenerate_corpus() {
    let choked = walled_chip(CORPUS_SEED, 1).expect("pinned seed keeps the wall pin-free");
    assert!(
        analyze_chip(&choked, TILE).certificates().iter().any(is_f004),
        "choked corpus chip must certify F004"
    );
    std::fs::write(corpus_path("chip-cut-saturated.sb"), write_problem(&choked))
        .expect("corpus write");

    let sealed = walled_chip(CORPUS_SEED, 0).expect("pinned seed keeps the wall pin-free");
    assert!(
        analyze_chip(&sealed, TILE).certificates().iter().any(is_f006),
        "sealed corpus chip must certify F006"
    );
    std::fs::write(corpus_path("chip-walled-region.sb"), write_problem(&sealed))
        .expect("corpus write");
}

fn load_corpus(name: &str) -> Problem {
    let text = std::fs::read_to_string(corpus_path(name))
        .unwrap_or_else(|e| panic!("{name}: unreadable ({e}); run regenerate_corpus"));
    parse_problem(&text).unwrap_or_else(|e| panic!("{name}: does not parse: {e}"))
}

#[test]
fn corpus_chip_certificates_fire_and_replay() {
    for (name, want) in [
        ("chip-cut-saturated.sb", is_f004 as fn(&InfeasibilityCertificate) -> bool),
        ("chip-walled-region.sb", is_f006),
    ] {
        let problem = load_corpus(name);
        let report = analyze_chip(&problem, TILE);
        assert!(!report.is_feasible(), "{name}: must stay certified infeasible");
        assert!(
            report.certificates().iter().any(want),
            "{name}: expected certificate kind missing: {:?}",
            report.certificates()
        );
        for cert in report.certificates() {
            assert!(cert.replay(&problem), "{name}: certificate does not replay: {cert:?}");
        }
        // The analysis is a pure function of the instance.
        let again = analyze_chip(&problem, TILE);
        assert_eq!(report.certificates(), again.certificates(), "{name}: analysis not stable");
    }
}

#[test]
fn corpus_matches_its_generator() {
    // The committed files are exactly what `regenerate_corpus` writes —
    // nobody has hand-edited a witness.
    for (name, gap) in [("chip-cut-saturated.sb", 1), ("chip-walled-region.sb", 0)] {
        let generated = write_problem(&walled_chip(CORPUS_SEED, gap).expect("pinned seed builds"));
        let committed = std::fs::read_to_string(corpus_path(name)).expect("committed corpus");
        assert_eq!(committed, generated, "{name}: drifted from its generator");
    }
}

#[test]
fn analyze_gate_skips_certified_nets_in_the_hierarchical_flow() {
    let problem = load_corpus("chip-walled-region.sb");
    let report = analyze_chip(&problem, TILE);
    let certified = report.certified_nets();
    assert!(!certified.is_empty(), "sealed chip certifies at least one net");

    let cfg = GlobalConfig { tile: TILE, analyze: true, ..GlobalConfig::default() };
    let out = route_hierarchical(&problem, &cfg);
    let failed: BTreeSet<_> = out.failed().iter().copied().collect();
    for net in &certified {
        assert!(failed.contains(net), "certified net {net:?} must be reported failed");
    }
    assert_eq!(out.chip_stats().certified_nets, certified.len());
    assert!(out.chip_stats().analyze_certificates >= certified.len());
}

#[test]
fn analyze_gate_is_inert_on_a_feasible_chip() {
    // Golden feasible chip: the precheck finds nothing, so the gated
    // run must be byte-identical to the ungated one.
    let problem =
        ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(11) }.build();
    let off = GlobalConfig { tile: 16, ..GlobalConfig::default() };
    let on = GlobalConfig { analyze: true, ..off };
    let plain = route_hierarchical(&problem, &off);
    let gated = route_hierarchical(&problem, &on);
    assert_eq!(plain.db().checksum(), gated.db().checksum(), "analyze gate changed the wiring");
    assert_eq!(plain.failed(), gated.failed());
    assert_eq!(gated.chip_stats().certified_nets, 0);
}

#[test]
fn feature_ordering_is_deterministic_across_worker_counts() {
    let problem =
        ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(11) }.build();
    let base = GlobalConfig { tile: 16, order: PlanOrder::Features, ..GlobalConfig::default() };
    let one = route_hierarchical(&problem, &GlobalConfig { jobs: 1, ..base });
    for jobs in [2, 4] {
        let many = route_hierarchical(&problem, &GlobalConfig { jobs, ..base });
        assert_eq!(
            one.db().checksum(),
            many.db().checksum(),
            "feature ordering: jobs 1 vs {jobs} databases differ"
        );
        assert_eq!(one.failed(), many.failed(), "feature ordering: failed sets differ");
        assert_eq!(one.chip_stats(), many.chip_stats(), "feature ordering: stats differ");
    }
}
