//! # vlsi-route
//!
//! A two-layer detailed-routing library built around an incremental
//! **rip-up-and-reroute** router (the [`mighty`] crate) together with the
//! classic channel-routing baselines it is evaluated against, an
//! occupancy-grid routing model, a maze-routing substrate, a rule
//! checker, and a benchmark corpus.
//!
//! This crate is a facade: it re-exports every workspace crate under one
//! roof so applications can depend on a single package.
//!
//! ## Quick start
//!
//! ```
//! use vlsi_route::model::{Problem, ProblemBuilder, PinSide};
//! use vlsi_route::mighty::{MightyRouter, RouterConfig};
//! use vlsi_route::verify;
//!
//! // A tiny 8x8 switchbox with two nets.
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! b.net("b").pin_side(PinSide::Bottom, 2).pin_side(PinSide::Top, 6);
//! let problem: Problem = b.build().expect("valid problem");
//!
//! let outcome = MightyRouter::new(RouterConfig::default()).route(&problem);
//! assert!(outcome.is_complete());
//! let report = verify::verify(&problem, outcome.db());
//! assert!(report.is_clean(), "{report}");
//! ```
//!
//! ## Observing a routing run
//!
//! Every router implements [`DetailedRouter`], and every
//! implementation emits the same [`RouteObserver`] event vocabulary.
//! Attach a [`MetricsRecorder`] (aggregate counters and histograms) or
//! an [`EventLog`] (the full machine-readable event sequence) without
//! changing the routed result:
//!
//! ```
//! use vlsi_route::MetricsRecorder;
//! use vlsi_route::model::{PinSide, ProblemBuilder};
//! use vlsi_route::mighty::{MightyRouter, RouterConfig};
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! let problem = b.build().expect("valid problem");
//!
//! let mut metrics = MetricsRecorder::new();
//! let router = MightyRouter::new(RouterConfig::default());
//! let outcome = router.route_observed(&problem, &mut metrics);
//! assert!(outcome.is_complete());
//! assert_eq!(metrics.nets_committed(), 1);
//! ```
//!
//! ## Embedding the routing service
//!
//! The persistent daemon behind `vroute serve` is a library type:
//! [`RouteService`] keeps warm workers (arena reuse, O(1) steady-state
//! allocations) behind a bounded admission queue with priorities and
//! per-request deadlines. The [`proto`] module holds the versioned
//! JSON protocol it speaks on the wire.
//!
//! ```
//! use std::sync::mpsc;
//! use vlsi_route::model::{PinSide, ProblemBuilder};
//! use vlsi_route::{JobSpec, ServiceConfig, ServiceReply};
//! use vlsi_route::mighty::RouteService;
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! let problem = b.build().expect("valid problem");
//!
//! let config = ServiceConfig::builder().workers(1).build().expect("valid config");
//! let service = RouteService::start(config).expect("service starts");
//! let (tx, rx) = mpsc::channel();
//! service.submit(JobSpec::new(7, problem), tx).expect("admitted");
//! match rx.recv().expect("reply") {
//!     ServiceReply::Done(done) => {
//!         assert_eq!(done.tag, 7);
//!         assert!(done.result.expect("routes").is_complete());
//!     }
//!     ServiceReply::Event { .. } => unreachable!("no events were requested"),
//! }
//! ```

#![warn(missing_docs)]

pub use mighty;
pub use route_analyze as analyze;
pub use route_benchdata as benchdata;
pub use route_channel as channel;
pub use route_fuzz as fuzz;
pub use route_geom as geom;
pub use route_global as global;
pub use route_maze as maze;
pub use route_model as model;
pub use route_opt as opt;
pub use route_proto as proto;
pub use route_verify as verify;

pub use mighty::{
    ConfigError, EngineConfig, EngineConfigBuilder, FallbackChain, JobDone, JobSpec, MightyRouter,
    ObserveMode, RetryPolicy, RouteEngine, RouteService, RouterConfig, RouterConfigBuilder,
    RunJournal, ServeJournal, ServiceConfig, ServiceConfigBuilder, ServiceReply, ServiceStats,
    SubmitError, Supervisor,
};
pub use route_analyze::{Diagnostic, InfeasibilityCertificate, Severity};
pub use route_maze::{
    BucketFrontier, Frontier, FrontierKind, HeapFrontier, ProbeKind, SearchArena,
};
pub use route_model::{
    DetailedRouter, EventLog, MetricsRecorder, NopObserver, OccupancyView, RouteError, RouteEvent,
    RouteObserver, RouteResult, RouterStats, Routing, SlotIndex,
};
pub use route_proto::{Json, RouteOutcomeReport, PROTO_VERSION};
