//! Chip-scale feasibility analysis and static congestion estimation.
//!
//! The flat pass in [`crate::feasibility`] scans every grid cut and
//! floods every net at cell granularity — exact, but quadratic in the
//! floorplan. This module lifts the same sound lower-bound arguments to
//! the *tile* granularity the hierarchical router plans at, so a
//! chip-scale run can be certified unroutable (or a net certified
//! dead-on-arrival) before any per-tile budget is spent:
//!
//! * **F004 — tile-cut saturation**: the grid cut along each tile
//!   boundary, checked exactly like a flat density cut (all layers,
//!   pins of non-crossing nets excluded). Only `cols + rows - 2` cuts
//!   are examined instead of `width + height - 2`.
//! * **F005 — seam saturation**: a *bridge* of the tile graph is the
//!   only corridor between two regions; every net with pins on both
//!   sides must cross it, and distinct nets need distinct boundary cell
//!   pairs. More forced nets than usable pairs is a proof.
//! * **F006 — macro-walled tile region**: flood fill over the tile
//!   graph, where an edge is passable only if at least one facing cell
//!   pair on some layer is unblocked. A net whose pin tiles land in
//!   different components can never connect — at any routing effort.
//!
//! All three arguments are sound for *any* router (they count every
//! layer, not just the crossing layer the hierarchical flow assigns),
//! so a certificate here implies the flat fallback fails too. Each
//! lifts into the same [`InfeasibilityCertificate`] lattice as
//! F001–F003 and replays through the same machinery.
//!
//! Alongside the certificates, [`analyze_chip`] produces a
//! [`CongestionMap`] — the classic static pre-routing estimate: each
//! net's half-perimeter wirelength is spread uniformly over the tiles
//! of its pin bounding box, and compared against each tile's free slot
//! count — plus a per-net [`NetFeatures`] vector (congestion, pin
//! density, bounding-box area, crossing count) that the hierarchical
//! planner can consume for adaptive net ordering.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use route_geom::{Layer, Point, Rect};
use route_model::{Grid, NetId, Occupant, Problem};

use crate::diag::{sort_diagnostics, Diagnostic, GridSpan};
use crate::feasibility::{Context, CutAxis, InfeasibilityCertificate};

/// Fixed-point scale for the congestion and feature arithmetic: all
/// ratios are reported in units of `1 / SCALE`.
pub const FEATURE_SCALE: u64 = 256;

/// The outcome of [`analyze_chip`]: chip-scale certificates with their
/// diagnostics, the static congestion map, and the per-net features.
#[derive(Debug, Clone)]
pub struct ChipReport {
    certificates: Vec<InfeasibilityCertificate>,
    diagnostics: Vec<Diagnostic>,
    congestion: CongestionMap,
    features: Vec<NetFeatures>,
}

impl ChipReport {
    /// Whether no chip-scale infeasibility proof was found. As with the
    /// flat pass, a feasible verdict is not a routability guarantee.
    pub fn is_feasible(&self) -> bool {
        self.certificates.is_empty()
    }

    /// Every chip-scale infeasibility proof found (F004–F006).
    pub fn certificates(&self) -> &[InfeasibilityCertificate] {
        &self.certificates
    }

    /// The certificates rendered as diagnostics, stably ordered.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The static per-tile congestion estimate.
    pub fn congestion(&self) -> &CongestionMap {
        &self.congestion
    }

    /// Per-net feature vectors, indexed by net id.
    pub fn features(&self) -> &[NetFeatures] {
        &self.features
    }

    /// The nets certified unroutable by name: every net a
    /// [`WalledTileRegion`](InfeasibilityCertificate::WalledTileRegion)
    /// certificate seals in. Cut- and seam-saturation proofs condemn
    /// the instance, not a specific net, so they contribute nothing
    /// here.
    pub fn certified_nets(&self) -> BTreeSet<NetId> {
        self.certificates
            .iter()
            .filter_map(|c| match c {
                InfeasibilityCertificate::WalledTileRegion { net, .. } => Some(*net),
                _ => None,
            })
            .collect()
    }
}

/// The static per-tile congestion estimate: demand from net bounding
/// boxes spread over the tile grid, capacity from free slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionMap {
    tile: u32,
    cols: u32,
    rows: u32,
    /// Estimated wirelength demand per tile, row-major, scaled by
    /// [`FEATURE_SCALE`].
    demand: Vec<u64>,
    /// Free `(cell, layer)` slots per tile, row-major, unscaled.
    capacity: Vec<u64>,
}

impl CongestionMap {
    /// Tile side length the map was built at.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    fn index(&self, col: u32, row: u32) -> usize {
        (row * self.cols + col) as usize
    }

    /// Estimated demand routed through tile `(col, row)`, scaled by
    /// [`FEATURE_SCALE`].
    pub fn demand_at(&self, col: u32, row: u32) -> u64 {
        self.demand[self.index(col, row)]
    }

    /// Free `(cell, layer)` slots of tile `(col, row)`.
    pub fn capacity_at(&self, col: u32, row: u32) -> u64 {
        self.capacity[self.index(col, row)]
    }

    /// Estimated utilisation of tile `(col, row)` in percent: demand
    /// over capacity, saturating on fully blocked tiles.
    pub fn congestion_at(&self, col: u32, row: u32) -> u64 {
        let i = self.index(col, row);
        if self.capacity[i] == 0 {
            return if self.demand[i] == 0 { 0 } else { u64::MAX };
        }
        self.demand[i] * 100 / (FEATURE_SCALE * self.capacity[i])
    }

    /// The most congested tile and its utilisation percent (row-major
    /// first maximum).
    pub fn peak(&self) -> (u32, u32, u64) {
        let mut best = (0, 0, 0);
        for row in 0..self.rows {
            for col in 0..self.cols {
                let c = self.congestion_at(col, row);
                if c > best.2 {
                    best = (col, row, c);
                }
            }
        }
        best
    }
}

/// Static features of one net over the tile grid, all in fixed-point
/// units of [`FEATURE_SCALE`] where ratios are involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFeatures {
    /// The net the features describe.
    pub net: NetId,
    /// Peak estimated congestion (percent) over the tiles of the net's
    /// pin bounding box.
    pub congestion: u64,
    /// Pins per bounding-box cell, scaled by [`FEATURE_SCALE`].
    pub pin_density: u64,
    /// Pin bounding-box area in cells.
    pub bbox_area: u64,
    /// Tile boundaries the pin bounding box spans (a lower bound on the
    /// crossings the hierarchical plan must assign).
    pub crossings: u64,
}

/// Runs the chip-scale analysis at tile size `tile`: F004–F006
/// certificates, the congestion map, and the per-net features.
///
/// # Panics
///
/// Panics if `tile` is zero.
///
/// # Examples
///
/// A net split by a full-stack wall is caught at tile granularity
/// without a cell-level flood:
///
/// ```
/// use route_geom::{Point, Rect};
/// use route_model::{PinSide, ProblemBuilder};
///
/// let mut b = ProblemBuilder::switchbox(24, 8);
/// b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
/// b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
/// let problem = b.build().unwrap();
/// let report = route_analyze::analyze_chip(&problem, 8);
/// assert!(!report.is_feasible());
/// assert_eq!(report.certified_nets().len(), 1);
/// ```
pub fn analyze_chip(problem: &Problem, tile: u32) -> ChipReport {
    let chip = ChipContext::new(problem, tile);
    let flat = Context::new(problem);
    let mut certificates = Vec::new();

    // F004: the grid cut along every tile boundary, columns then rows.
    for boundary in 0..chip.cols.saturating_sub(1) {
        if let Some(cert) = chip.cut_certificate(&flat, CutAxis::Vertical, boundary) {
            certificates.push(cert);
        }
    }
    for boundary in 0..chip.rows.saturating_sub(1) {
        if let Some(cert) = chip.cut_certificate(&flat, CutAxis::Horizontal, boundary) {
            certificates.push(cert);
        }
    }

    // F005: every bridge of the tile graph, in normalized edge order.
    for (a, b) in chip.bridges() {
        if let Some(cert) = chip.seam_certificate(a, b) {
            certificates.push(cert);
        }
    }

    // F006: tile-graph reachability, one certificate per sealed net.
    for net in problem.nets() {
        if net.pins.len() < 2 {
            continue;
        }
        let reached = chip.flood(chip.tile_of(net.pins[0].at));
        let Some(&cut_off) = net.pins.iter().find(|p| !reached.contains(&chip.tile_of(p.at)))
        else {
            continue;
        };
        let island = chip.flood(chip.tile_of(cut_off.at));
        certificates.push(InfeasibilityCertificate::WalledTileRegion {
            tile,
            net: net.id,
            pin: cut_off,
            goal: net.pins[0],
            region: island.len(),
        });
    }

    let congestion = congestion_map(problem, tile);
    let features = features_from(problem, &congestion);
    let mut diagnostics: Vec<Diagnostic> =
        certificates.iter().map(|c| c.to_diagnostic(problem)).collect();
    sort_diagnostics(&mut diagnostics);
    ChipReport { certificates, diagnostics, congestion, features }
}

/// Builds the static congestion map alone (no certificate search).
///
/// # Panics
///
/// Panics if `tile` is zero.
pub fn congestion_map(problem: &Problem, tile: u32) -> CongestionMap {
    assert!(tile > 0, "tile size must be non-zero");
    let base = problem.base_grid();
    let cols = problem.width().div_ceil(tile);
    let rows = problem.height().div_ceil(tile);
    let mut demand = vec![0u64; (cols * rows) as usize];
    let mut capacity = vec![0u64; (cols * rows) as usize];

    let layers = problem.layers() as usize;
    for p in base.bounds().cells() {
        let (col, row) = (p.x as u32 / tile, p.y as u32 / tile);
        for layer in Layer::ALL.into_iter().take(layers) {
            if base.occupant(p, layer) != Occupant::Blocked {
                capacity[(row * cols + col) as usize] += 1;
            }
        }
    }

    // RUDY-style spread: each net's half-perimeter wirelength estimate
    // is distributed uniformly over the tiles its pin bounding box
    // touches.
    for net in problem.nets() {
        let Some(first) = net.pins.first() else { continue };
        let bbox =
            net.pins.iter().fold(Rect::cell(first.at), |acc, p| acc.union(&Rect::cell(p.at)));
        let (c0, r0) = (bbox.min().x as u32 / tile, bbox.min().y as u32 / tile);
        let (c1, r1) = (bbox.max().x as u32 / tile, bbox.max().y as u32 / tile);
        let hpwl = u64::from(bbox.width() + bbox.height());
        let spread = u64::from(c1 - c0 + 1) * u64::from(r1 - r0 + 1);
        let share = FEATURE_SCALE * hpwl / spread;
        for row in r0..=r1 {
            for col in c0..=c1 {
                demand[(row * cols + col) as usize] += share;
            }
        }
    }

    CongestionMap { tile, cols, rows, demand, capacity }
}

/// Computes the per-net feature vectors at tile size `tile`, indexed by
/// net id. This is the feature source the hierarchical planner's
/// adaptive ordering consumes.
///
/// # Panics
///
/// Panics if `tile` is zero.
pub fn net_features(problem: &Problem, tile: u32) -> Vec<NetFeatures> {
    features_from(problem, &congestion_map(problem, tile))
}

fn features_from(problem: &Problem, map: &CongestionMap) -> Vec<NetFeatures> {
    let tile = map.tile();
    problem
        .nets()
        .iter()
        .map(|net| {
            let Some(first) = net.pins.first() else {
                return NetFeatures {
                    net: net.id,
                    congestion: 0,
                    pin_density: 0,
                    bbox_area: 0,
                    crossings: 0,
                };
            };
            let bbox =
                net.pins.iter().fold(Rect::cell(first.at), |acc, p| acc.union(&Rect::cell(p.at)));
            let (c0, r0) = (bbox.min().x as u32 / tile, bbox.min().y as u32 / tile);
            let (c1, r1) = (bbox.max().x as u32 / tile, bbox.max().y as u32 / tile);
            let mut congestion = 0;
            for row in r0..=r1 {
                for col in c0..=c1 {
                    congestion = congestion.max(map.congestion_at(col, row));
                }
            }
            let bbox_area = bbox.area();
            NetFeatures {
                net: net.id,
                congestion,
                pin_density: FEATURE_SCALE * net.pins.len() as u64 / bbox_area.max(1),
                bbox_area,
                crossings: u64::from(c1 - c0) + u64::from(r1 - r0),
            }
        })
        .collect()
}

/// Re-derives a chip-scale certificate's witness; the dispatch target
/// of [`InfeasibilityCertificate::replay`] for F004–F006.
pub(crate) fn replay_chip(cert: &InfeasibilityCertificate, problem: &Problem) -> bool {
    match cert {
        InfeasibilityCertificate::TileCutSaturated {
            tile,
            axis,
            boundary,
            crossing,
            demand,
            capacity,
        } => {
            if *tile == 0 {
                return false;
            }
            let chip = ChipContext::new(problem, *tile);
            let limit = match axis {
                CutAxis::Vertical => chip.cols,
                CutAxis::Horizontal => chip.rows,
            };
            if *boundary + 1 >= limit {
                return false;
            }
            let index = ((*boundary + 1) * *tile) as i32 - 1;
            let Some(cut) = Context::new(problem).cut(*axis, index) else {
                return false;
            };
            cut.crossing == *crossing
                && *demand == crossing.len()
                && cut.capacity == *capacity
                && cut.crossing.len() > cut.capacity
        }
        InfeasibilityCertificate::SeamSaturated { tile, a, b, forced, demand, capacity } => {
            if *tile == 0 {
                return false;
            }
            let chip = ChipContext::new(problem, *tile);
            if !chip.in_range(*a) || !chip.in_range(*b) {
                return false;
            }
            let Some((derived_forced, derived_capacity)) = chip.seam_demand(*a, *b) else {
                return false;
            };
            derived_forced == *forced
                && *demand == forced.len()
                && derived_capacity == *capacity
                && forced.len() > derived_capacity
        }
        InfeasibilityCertificate::WalledTileRegion { tile, net, pin, goal, region } => {
            if *tile == 0 {
                return false;
            }
            let Some(pins) = problem.nets().get(net.index()).map(|n| n.pins.as_slice()) else {
                return false;
            };
            if !pins.contains(pin) || !pins.contains(goal) || pin == goal {
                return false;
            }
            let chip = ChipContext::new(problem, *tile);
            let island = chip.flood(chip.tile_of(pin.at));
            island.len() == *region && !island.contains(&chip.tile_of(goal.at))
        }
        _ => false,
    }
}

/// The grid span of the boundary segment between two adjacent tiles,
/// used when rendering F005 diagnostics. `None` on malformed witnesses.
pub(crate) fn seam_span(
    problem: &Problem,
    tile: u32,
    a: (u32, u32),
    b: (u32, u32),
) -> Option<GridSpan> {
    if tile == 0 {
        return None;
    }
    let chip = ChipContext::new(problem, tile);
    if !chip.in_range(a) || !chip.in_range(b) {
        return None;
    }
    let ra = chip.rect(a);
    let rb = chip.rect(b);
    if a.1 == b.1 {
        Some(GridSpan::area(Point::new(ra.max().x, ra.min().y), Point::new(rb.min().x, ra.max().y)))
    } else {
        Some(GridSpan::area(Point::new(ra.min().x, ra.max().y), Point::new(ra.max().x, rb.min().y)))
    }
}

/// Tile math over a problem, mirroring the hierarchical router's
/// `TileGrid` exactly (div-ceil tiling, ragged top/right tiles) — but
/// counting *every* layer across a boundary, because a feasibility
/// proof must bind the flat fallback too, not just the crossing layer
/// the hierarchical flow assigns.
struct ChipContext<'a> {
    problem: &'a Problem,
    base: Grid,
    tile: u32,
    cols: u32,
    rows: u32,
    /// Adjacency over passable seams, nodes row-major.
    adj: Vec<Vec<usize>>,
}

impl<'a> ChipContext<'a> {
    fn new(problem: &'a Problem, tile: u32) -> Self {
        assert!(tile > 0, "tile size must be non-zero");
        let mut chip = ChipContext {
            problem,
            base: problem.base_grid(),
            tile,
            cols: problem.width().div_ceil(tile),
            rows: problem.height().div_ceil(tile),
            adj: Vec::new(),
        };
        let mut adj = vec![Vec::new(); (chip.cols * chip.rows) as usize];
        for row in 0..chip.rows {
            for col in 0..chip.cols {
                let t = (col, row);
                if col + 1 < chip.cols && chip.passable(t, (col + 1, row)) {
                    adj[chip.node(t)].push(chip.node((col + 1, row)));
                    adj[chip.node((col + 1, row))].push(chip.node(t));
                }
                if row + 1 < chip.rows && chip.passable(t, (col, row + 1)) {
                    adj[chip.node(t)].push(chip.node((col, row + 1)));
                    adj[chip.node((col, row + 1))].push(chip.node(t));
                }
            }
        }
        chip.adj = adj;
        chip
    }

    fn in_range(&self, t: (u32, u32)) -> bool {
        t.0 < self.cols && t.1 < self.rows
    }

    fn tile_of(&self, p: Point) -> (u32, u32) {
        (p.x as u32 / self.tile, p.y as u32 / self.tile)
    }

    fn rect(&self, t: (u32, u32)) -> Rect {
        let x0 = (t.0 * self.tile) as i32;
        let y0 = (t.1 * self.tile) as i32;
        let w = self.tile.min(self.problem.width() - t.0 * self.tile);
        let h = self.tile.min(self.problem.height() - t.1 * self.tile);
        Rect::with_size(Point::new(x0, y0), w, h)
    }

    /// The facing cell pairs across the boundary between two adjacent
    /// tiles (`a` normalized lower/left).
    fn seam_pairs(&self, a: (u32, u32), b: (u32, u32)) -> Vec<(Point, Point)> {
        let ra = self.rect(a);
        let rb = self.rect(b);
        if a.1 == b.1 {
            let (xa, xb) = (ra.max().x, rb.min().x);
            (ra.min().y..=ra.max().y).map(|y| (Point::new(xa, y), Point::new(xb, y))).collect()
        } else {
            let (ya, yb) = (ra.max().y, rb.min().y);
            (ra.min().x..=ra.max().x).map(|x| (Point::new(x, ya), Point::new(x, yb))).collect()
        }
    }

    /// Whether any net could cross between `a` and `b`: some facing
    /// pair is unblocked on some layer. Pins do not close a seam — a
    /// pin slot is passable to its owner.
    fn passable(&self, a: (u32, u32), b: (u32, u32)) -> bool {
        self.seam_pairs(a, b).iter().any(|&(pa, pb)| {
            Layer::ALL.into_iter().any(|layer| {
                self.base.occupant(pa, layer) != Occupant::Blocked
                    && self.base.occupant(pb, layer) != Occupant::Blocked
            })
        })
    }

    fn node(&self, t: (u32, u32)) -> usize {
        (t.1 * self.cols + t.0) as usize
    }

    fn tile_at(&self, node: usize) -> (u32, u32) {
        (node as u32 % self.cols, node as u32 / self.cols)
    }

    /// Tiles reachable from `start` through passable seams.
    fn flood(&self, start: (u32, u32)) -> HashSet<(u32, u32)> {
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([self.node(start)]);
        while let Some(n) = queue.pop_front() {
            for &m in &self.adj[n] {
                if seen.insert(self.tile_at(m)) {
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// The bridges of the tile graph, normalized `(a, b)` with `a` the
    /// lower/left tile, in ascending order. Iterative Tarjan lowlink.
    fn bridges(&self) -> Vec<((u32, u32), (u32, u32))> {
        let n = self.adj.len();
        let mut disc = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut timer = 1u32;
        let mut out: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if visited[root] {
                continue;
            }
            // Stack frames: (node, parent, next-neighbour index).
            let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
            visited[root] = true;
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            while let Some(frame) = stack.last_mut() {
                let (u, parent) = (frame.0, frame.1);
                if frame.2 < self.adj[u].len() {
                    let v = self.adj[u][frame.2];
                    frame.2 += 1;
                    if v == parent {
                        continue;
                    }
                    if visited[v] {
                        low[u] = low[u].min(disc[v]);
                    } else {
                        visited[v] = true;
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        stack.push((v, u, 0));
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p] = low[p].min(low[u]);
                        if low[u] > disc[p] {
                            out.push((p.min(u), p.max(u)));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.into_iter().map(|(a, b)| (self.tile_at(a), self.tile_at(b))).collect()
    }

    /// The nets forced through the seam `(a, b)` — their pin tiles are
    /// separated by its removal — and the crossing capacity left to
    /// them. `None` when the seam is not separating or forces no net.
    fn seam_demand(&self, a: (u32, u32), b: (u32, u32)) -> Option<(Vec<NetId>, usize)> {
        let side_a = self.half_flood(a, b)?;
        let side_b = self.half_flood(b, a)?;
        let forced: Vec<NetId> = self
            .problem
            .nets()
            .iter()
            .filter(|net| {
                let mut in_a = false;
                let mut in_b = false;
                for pin in &net.pins {
                    let t = self.tile_of(pin.at);
                    in_a |= side_a.contains(&t);
                    in_b |= side_b.contains(&t);
                }
                in_a && in_b
            })
            .map(|net| net.id)
            .collect();
        if forced.is_empty() {
            return None;
        }
        // Capacity: pairs on the seam usable by a forced net — both
        // cells unblocked on the layer and owned by no other net's pin.
        let forced_set: HashSet<NetId> = forced.iter().copied().collect();
        let pin_owner: HashMap<(Point, Layer), NetId> = self
            .problem
            .nets()
            .iter()
            .flat_map(|n| n.pins.iter().map(move |p| ((p.at, p.layer), n.id)))
            .collect();
        let mut capacity = 0usize;
        for (pa, pb) in self.seam_pairs(a, b) {
            for layer in Layer::ALL {
                let usable = [pa, pb].iter().all(|&p| {
                    self.base.occupant(p, layer) != Occupant::Blocked
                        && pin_owner.get(&(p, layer)).is_none_or(|owner| forced_set.contains(owner))
                });
                if usable {
                    capacity += 1;
                }
            }
        }
        Some((forced, capacity))
    }

    /// Flood from `a` with the seam `(a, b)` removed; `None` when `b`
    /// is still reachable (the seam is not a bridge).
    fn half_flood(&self, a: (u32, u32), b: (u32, u32)) -> Option<HashSet<(u32, u32)>> {
        let (na, nb) = (self.node(a), self.node(b));
        let mut seen = HashSet::from([a]);
        let mut queue = VecDeque::from([na]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if (u == na && v == nb) || (u == nb && v == na) {
                    continue;
                }
                if seen.insert(self.tile_at(v)) {
                    if v == nb {
                        return None;
                    }
                    queue.push_back(v);
                }
            }
        }
        Some(seen)
    }

    /// F004 check for one tile boundary: the flat density argument on
    /// the grid cut the boundary induces.
    fn cut_certificate(
        &self,
        flat: &Context<'_>,
        axis: CutAxis,
        boundary: u32,
    ) -> Option<InfeasibilityCertificate> {
        let index = ((boundary + 1) * self.tile) as i32 - 1;
        let cut = flat.cut(axis, index)?;
        (cut.crossing.len() > cut.capacity).then_some(InfeasibilityCertificate::TileCutSaturated {
            tile: self.tile,
            axis,
            boundary,
            demand: cut.crossing.len(),
            crossing: cut.crossing,
            capacity: cut.capacity,
        })
    }

    /// F005 check for one bridge seam.
    fn seam_certificate(&self, a: (u32, u32), b: (u32, u32)) -> Option<InfeasibilityCertificate> {
        let (forced, capacity) = self.seam_demand(a, b)?;
        (forced.len() > capacity).then_some(InfeasibilityCertificate::SeamSaturated {
            tile: self.tile,
            a,
            b,
            demand: forced.len(),
            forced,
            capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder};

    /// A 24x8 board split into three 8-wide tiles by two walls, each
    /// leaving `gap` rows open on both layers.
    fn walled(gap: i32, nets: u32) -> Problem {
        let mut b = ProblemBuilder::switchbox(24, 8);
        for x in [7, 8, 15, 16] {
            for y in gap..8 {
                b.obstacle(Point::new(x, y));
            }
        }
        for i in 0..nets {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i % 8).pin_side(PinSide::Right, i % 8);
        }
        b.build().unwrap()
    }

    #[test]
    fn roomy_chips_are_feasible() {
        let report = analyze_chip(&walled(8, 4), 8);
        assert!(report.is_feasible(), "{:?}", report.certificates());
        assert!(report.diagnostics().is_empty());
    }

    #[test]
    fn saturated_tile_cut_yields_f004_that_replays() {
        // 2 open rows x 2 layers = 4 pairs per boundary, 5 crossing nets.
        let p = walled(2, 5);
        let report = analyze_chip(&p, 8);
        let f004: Vec<_> = report
            .certificates()
            .iter()
            .filter(|c| matches!(c, InfeasibilityCertificate::TileCutSaturated { .. }))
            .collect();
        assert_eq!(f004.len(), 2, "both walls saturate: {:?}", report.certificates());
        match f004[0] {
            InfeasibilityCertificate::TileCutSaturated {
                tile,
                axis,
                boundary,
                demand,
                capacity,
                ..
            } => {
                assert_eq!((*tile, *axis, *boundary), (8, CutAxis::Vertical, 0));
                assert_eq!((*demand, *capacity), (5, 4));
            }
            _ => unreachable!(),
        }
        for c in report.certificates() {
            assert!(c.replay(&p), "must replay: {c:?}");
        }
        // The same witness is a lie about the unchoked board.
        assert!(!f004[0].replay(&walled(8, 5)));
    }

    #[test]
    fn walled_tile_region_yields_f006_that_replays() {
        // Fully sealed centre column: the right bank is a separate
        // tile-graph component.
        let p = walled(0, 2);
        let report = analyze_chip(&p, 8);
        let f006: Vec<_> = report
            .certificates()
            .iter()
            .filter(|c| matches!(c, InfeasibilityCertificate::WalledTileRegion { .. }))
            .collect();
        assert_eq!(f006.len(), 2, "{:?}", report.certificates());
        match f006[0] {
            InfeasibilityCertificate::WalledTileRegion { tile, net, region, .. } => {
                assert_eq!(*tile, 8);
                assert_eq!(*net, NetId(0));
                assert_eq!(*region, 1, "the right bank is one tile");
            }
            _ => unreachable!(),
        }
        for c in report.certificates() {
            assert!(c.replay(&p));
        }
        assert_eq!(report.certified_nets().len(), 2);
        // Tampered witnesses must not replay.
        if let InfeasibilityCertificate::WalledTileRegion { tile, net, pin, goal, region } = f006[0]
        {
            let forged = InfeasibilityCertificate::WalledTileRegion {
                tile: *tile,
                net: *net,
                pin: *pin,
                goal: *goal,
                region: region + 1,
            };
            assert!(!forged.replay(&p));
        }
    }

    #[test]
    fn bridge_seam_with_forced_overflow_yields_f005_that_replays() {
        // A 24x16 board, tile 8: wall the x = 7/8 boundary fully except
        // in the bottom tile row, where one pair stays open on M1 only;
        // three nets must all cross there.
        let mut b = ProblemBuilder::switchbox(24, 16);
        for x in [7, 8] {
            for y in 1..16 {
                b.obstacle(Point::new(x, y));
            }
            b.obstacle_on(Point::new(x, 0), Layer::M2);
        }
        for i in 0..3u32 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        let p = b.build().unwrap();
        let report = analyze_chip(&p, 8);
        let f005: Vec<_> = report
            .certificates()
            .iter()
            .filter(|c| matches!(c, InfeasibilityCertificate::SeamSaturated { .. }))
            .collect();
        assert_eq!(f005.len(), 1, "{:?}", report.certificates());
        match f005[0] {
            InfeasibilityCertificate::SeamSaturated { a, b, demand, capacity, forced, .. } => {
                assert_eq!((*a, *b), ((0, 0), (1, 0)));
                assert_eq!(*demand, 3);
                assert_eq!(*capacity, 1, "one open pair on M1");
                assert_eq!(forced.len(), 3);
            }
            _ => unreachable!(),
        }
        for c in report.certificates() {
            assert!(c.replay(&p), "must replay: {c:?}");
        }
    }

    #[test]
    fn open_grids_yield_no_seam_certificates() {
        // A 2x2 open tile grid has cycles: no bridges at all.
        let mut b = ProblemBuilder::switchbox(16, 16);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        assert!(ChipContext::new(&p, 8).bridges().is_empty());
        // A 3x1 corridor is all bridges, but roomy seams never certify.
        let p = walled(8, 4);
        let ctx = ChipContext::new(&p, 8);
        assert_eq!(ctx.bridges().len(), 2);
        for (a, b) in ctx.bridges() {
            assert!(ctx.seam_certificate(a, b).is_none());
        }
    }

    #[test]
    fn congestion_map_spreads_demand_over_the_bbox() {
        let mut b = ProblemBuilder::switchbox(32, 8);
        b.net("long").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("local").pin_at(Point::new(1, 1), Layer::M1).pin_at(Point::new(2, 1), Layer::M1);
        let p = b.build().unwrap();
        let map = congestion_map(&p, 8);
        assert_eq!((map.cols(), map.rows()), (4, 1));
        // The long net spreads over all four tiles; the local net only
        // loads the first.
        assert!(map.demand_at(0, 0) > map.demand_at(1, 0));
        assert_eq!(map.demand_at(1, 0), map.demand_at(2, 0));
        assert_eq!(map.capacity_at(0, 0), 8 * 8 * 2);
        let (pc, pr, _) = map.peak();
        assert_eq!((pc, pr), (0, 0));
    }

    #[test]
    fn net_features_reflect_geometry() {
        let mut b = ProblemBuilder::switchbox(32, 32);
        b.net("wide").pin_side(PinSide::Left, 16).pin_side(PinSide::Right, 16);
        b.net("dense")
            .pin_at(Point::new(1, 1), Layer::M1)
            .pin_at(Point::new(2, 1), Layer::M1)
            .pin_at(Point::new(1, 2), Layer::M1);
        let p = b.build().unwrap();
        let f = net_features(&p, 8);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].net, NetId(0));
        assert_eq!(f[0].crossings, 3, "the wide net spans all four tile columns");
        assert_eq!(f[1].crossings, 0);
        assert!(f[1].pin_density > f[0].pin_density);
        assert!(f[0].bbox_area > f[1].bbox_area);
    }

    #[test]
    fn degenerate_single_tile_chip_is_trivially_feasible() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let report = analyze_chip(&p, 16);
        assert!(report.is_feasible());
        assert_eq!((report.congestion().cols(), report.congestion().rows()), (1, 1));
    }
}
