//! Pre-route feasibility analysis over a [`Problem`].
//!
//! Three sound lower-bound arguments run against the blockage map —
//! before any router spends its modification budget:
//!
//! * **Channel density** (after Deutsch): a net with pins on both sides
//!   of the cut between columns `x` and `x + 1` must occupy the cell
//!   pair `(x, y, l)`/`(x + 1, y, l)` for some row `y` and layer `l`,
//!   and distinct crossing nets need distinct pairs. If more nets cross
//!   than unblocked pairs exist, no routing exists. Rows are checked
//!   symmetrically.
//! * **Pin reachability**: flood fill from each net's first pin over
//!   the cells that net may legally occupy; a pin in a different
//!   component can never be connected.
//! * **Terminal access**: the degenerate case — a pin of a multi-pin
//!   net with no admissible neighbouring slot at all is walled in.
//!
//! Each failed check emits an [`InfeasibilityCertificate`] carrying its
//! witness (the saturated cut or the walled-off component), and every
//! certificate is machine-checkable: [`InfeasibilityCertificate::replay`]
//! re-derives the witness from the problem alone, so downstream
//! consumers (the batch engine, the fuzz oracle) can trust — and audit —
//! the claim.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use route_geom::{Layer, Point};
use route_model::{Grid, NetId, Occupant, Pin, Problem};

use crate::diag::{sort_diagnostics, Diagnostic, GridSpan, Severity};

/// Which family of cuts a density certificate refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutAxis {
    /// The cut between columns `index` and `index + 1`.
    Vertical,
    /// The cut between rows `index` and `index + 1`.
    Horizontal,
}

impl fmt::Display for CutAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CutAxis::Vertical => "columns",
            CutAxis::Horizontal => "rows",
        })
    }
}

/// A machine-checkable proof that a problem admits no complete routing.
///
/// Each variant carries the witness that makes the claim auditable;
/// [`replay`](InfeasibilityCertificate::replay) re-derives it from the
/// problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfeasibilityCertificate {
    /// More nets must cross a grid cut than it has unblocked cell pairs.
    DensityOverflow {
        /// Whether the cut separates columns or rows.
        axis: CutAxis,
        /// The cut sits between `index` and `index + 1` on `axis`.
        index: i32,
        /// Nets forced across the cut (pins strictly on both sides).
        crossing: Vec<NetId>,
        /// Number of crossing nets (`crossing.len()`).
        demand: usize,
        /// Unblocked `(row-or-column, layer)` cell pairs usable by a
        /// crossing net.
        capacity: usize,
    },
    /// A pin cannot reach another pin of its net by any legal path.
    UnreachablePin {
        /// The fragmented net.
        net: NetId,
        /// The pin that is cut off.
        pin: Pin,
        /// A pin of the same net outside `pin`'s component.
        goal: Pin,
        /// Size in slots of the component flooded from `pin` — the
        /// walled-off region that witnesses the separation.
        component: usize,
    },
    /// A pin of a multi-pin net has no admissible neighbouring slot.
    WalledPin {
        /// The net that can never be completed.
        net: NetId,
        /// The pin with zero escape routes.
        pin: Pin,
    },
    /// More nets must cross a tile-boundary cut than it has unblocked
    /// cell pairs — the chip-scale lift of [`DensityOverflow`]
    /// (emitted by [`analyze_chip`](crate::chip::analyze_chip)).
    ///
    /// [`DensityOverflow`]: InfeasibilityCertificate::DensityOverflow
    TileCutSaturated {
        /// Tile side length the analysis ran at.
        tile: u32,
        /// Whether the cut separates tile columns or tile rows.
        axis: CutAxis,
        /// The cut runs along the boundary after tile column/row
        /// `boundary` (the grid cut between cells
        /// `(boundary + 1) * tile - 1` and `(boundary + 1) * tile`).
        boundary: u32,
        /// Nets forced across the cut (pins strictly on both sides).
        crossing: Vec<NetId>,
        /// Number of crossing nets (`crossing.len()`).
        demand: usize,
        /// Unblocked cell pairs on the cut usable by a crossing net.
        capacity: usize,
    },
    /// A single seam — a bridge of the tile graph — must carry more
    /// forced nets than it has crossing slots (emitted by
    /// [`analyze_chip`](crate::chip::analyze_chip)).
    SeamSaturated {
        /// Tile side length the analysis ran at.
        tile: u32,
        /// Lower/left tile of the seam, as `(col, row)`.
        a: (u32, u32),
        /// Upper/right tile of the seam, as `(col, row)`.
        b: (u32, u32),
        /// Nets forced through the seam: removing it separates their
        /// pin tiles in the tile graph.
        forced: Vec<NetId>,
        /// Number of forced nets (`forced.len()`).
        demand: usize,
        /// Boundary cell pairs on the seam usable by a forced net.
        capacity: usize,
    },
    /// A pin's tile sits in a macro-walled region of the tile graph
    /// that excludes another pin of the net (emitted by
    /// [`analyze_chip`](crate::chip::analyze_chip)).
    WalledTileRegion {
        /// Tile side length the analysis ran at.
        tile: u32,
        /// The net that can never be completed.
        net: NetId,
        /// The pin sealed inside the walled region.
        pin: Pin,
        /// A pin of the same net outside the region.
        goal: Pin,
        /// Number of tiles in the region flooded from `pin`'s tile.
        region: usize,
    },
}

impl InfeasibilityCertificate {
    /// Re-derives the certificate's witness from the problem, returning
    /// `true` only if the infeasibility claim still holds exactly as
    /// stated. A sound analyzer's certificates always replay; the fuzz
    /// oracle calls this on every one it sees.
    pub fn replay(&self, problem: &Problem) -> bool {
        let ctx = Context::new(problem);
        match self {
            InfeasibilityCertificate::DensityOverflow {
                axis,
                index,
                crossing,
                demand,
                capacity,
            } => {
                let Some(cut) = ctx.cut(*axis, *index) else {
                    return false;
                };
                cut.crossing == *crossing
                    && *demand == crossing.len()
                    && cut.capacity == *capacity
                    && cut.crossing.len() > cut.capacity
            }
            InfeasibilityCertificate::UnreachablePin { net, pin, goal, component } => {
                let Some(pins) = ctx.pins_of(*net) else { return false };
                if !pins.contains(pin) || !pins.contains(goal) || pin == goal {
                    return false;
                }
                let flood = ctx.flood(*net, *pin);
                flood.len() == *component && !flood.contains(&(goal.at, goal.layer))
            }
            InfeasibilityCertificate::WalledPin { net, pin } => {
                let Some(pins) = ctx.pins_of(*net) else { return false };
                pins.len() >= 2 && pins.contains(pin) && ctx.flood(*net, *pin).len() == 1
            }
            InfeasibilityCertificate::TileCutSaturated { .. }
            | InfeasibilityCertificate::SeamSaturated { .. }
            | InfeasibilityCertificate::WalledTileRegion { .. } => {
                crate::chip::replay_chip(self, problem)
            }
        }
    }

    /// One-line summary, suitable as a router error reason.
    pub fn summary(&self) -> String {
        match self {
            InfeasibilityCertificate::DensityOverflow { axis, index, demand, capacity, .. } => {
                format!(
                    "density overflow at the cut between {axis} {index} and {}: \
                     {demand} crossing nets, {capacity} free cell pairs",
                    index + 1
                )
            }
            InfeasibilityCertificate::UnreachablePin { net, pin, goal, component } => {
                format!(
                    "pin {} on {} of net {net} is sealed in a {component}-slot region \
                     that excludes its pin {} on {}",
                    pin.at, pin.layer, goal.at, goal.layer
                )
            }
            InfeasibilityCertificate::WalledPin { net, pin } => {
                format!(
                    "pin {} on {} of net {net} has no admissible neighbouring slot",
                    pin.at, pin.layer
                )
            }
            InfeasibilityCertificate::TileCutSaturated {
                tile,
                axis,
                boundary,
                demand,
                capacity,
                ..
            } => {
                format!(
                    "tile-boundary cut saturated after tile {} {boundary} \
                     (tile size {tile}): {demand} crossing nets, {capacity} free cell pairs",
                    match axis {
                        CutAxis::Vertical => "column",
                        CutAxis::Horizontal => "row",
                    }
                )
            }
            InfeasibilityCertificate::SeamSaturated { tile, a, b, demand, capacity, .. } => {
                format!(
                    "seam between tiles ({}, {}) and ({}, {}) (tile size {tile}) is the \
                     only tile-graph link for {demand} nets but has {capacity} crossing slots",
                    a.0, a.1, b.0, b.1
                )
            }
            InfeasibilityCertificate::WalledTileRegion { tile, net, pin, goal, region } => {
                format!(
                    "pin {} on {} of net {net} is sealed in a {region}-tile walled region \
                     (tile size {tile}) that excludes its pin {} on {}",
                    pin.at, pin.layer, goal.at, goal.layer
                )
            }
        }
    }

    /// Renders the certificate as an error [`Diagnostic`].
    pub fn to_diagnostic(&self, problem: &Problem) -> Diagnostic {
        let bounds = problem.base_grid().bounds();
        match self {
            InfeasibilityCertificate::DensityOverflow { axis, index, crossing, .. } => {
                let span = match axis {
                    CutAxis::Vertical => GridSpan::area(
                        Point::new(*index, bounds.min().y),
                        Point::new(index + 1, bounds.max().y),
                    ),
                    CutAxis::Horizontal => GridSpan::area(
                        Point::new(bounds.min().x, *index),
                        Point::new(bounds.max().x, index + 1),
                    ),
                };
                Diagnostic {
                    severity: Severity::Error,
                    code: "F001",
                    rule: "density-overflow",
                    message: self.summary(),
                    span: Some(span),
                    net: crossing.first().copied(),
                    hint: Some(
                        "widen the channel, add a layer, or move pins off the saturated cut"
                            .to_string(),
                    ),
                }
            }
            InfeasibilityCertificate::UnreachablePin { net, pin, .. } => Diagnostic {
                severity: Severity::Error,
                code: "F002",
                rule: "unreachable-pin",
                message: self.summary(),
                span: Some(GridSpan::cell(pin.at, pin.layer)),
                net: Some(*net),
                hint: Some("remove an obstacle on the separating wall".to_string()),
            },
            InfeasibilityCertificate::WalledPin { net, pin } => Diagnostic {
                severity: Severity::Error,
                code: "F003",
                rule: "walled-pin",
                message: self.summary(),
                span: Some(GridSpan::cell(pin.at, pin.layer)),
                net: Some(*net),
                hint: Some("free at least one slot adjacent to the pin".to_string()),
            },
            InfeasibilityCertificate::TileCutSaturated {
                tile, axis, boundary, crossing, ..
            } => {
                let index = ((*boundary + 1) * *tile) as i32 - 1;
                let span = match axis {
                    CutAxis::Vertical => GridSpan::area(
                        Point::new(index, bounds.min().y),
                        Point::new(index + 1, bounds.max().y),
                    ),
                    CutAxis::Horizontal => GridSpan::area(
                        Point::new(bounds.min().x, index),
                        Point::new(bounds.max().x, index + 1),
                    ),
                };
                Diagnostic {
                    severity: Severity::Error,
                    code: "F004",
                    rule: "tile-cut-saturated",
                    message: self.summary(),
                    span: Some(span),
                    net: crossing.first().copied(),
                    hint: Some(
                        "raise the tile boundary's capacity: clear blockages on the cut \
                         or re-floorplan the macros straddling it"
                            .to_string(),
                    ),
                }
            }
            InfeasibilityCertificate::SeamSaturated { tile, a, b, forced, .. } => Diagnostic {
                severity: Severity::Error,
                code: "F005",
                rule: "seam-saturated",
                message: self.summary(),
                span: crate::chip::seam_span(problem, *tile, *a, *b),
                net: forced.first().copied(),
                hint: Some(
                    "the seam is a bridge of the tile graph: widen it or open a second \
                     corridor between the regions it joins"
                        .to_string(),
                ),
            },
            InfeasibilityCertificate::WalledTileRegion { net, pin, .. } => Diagnostic {
                severity: Severity::Error,
                code: "F006",
                rule: "walled-tile-region",
                message: self.summary(),
                span: Some(GridSpan::cell(pin.at, pin.layer)),
                net: Some(*net),
                hint: Some(
                    "open a corridor through the macro wall enclosing the pin's tiles".to_string(),
                ),
            },
        }
    }
}

/// The outcome of [`analyze_problem`]: all certificates found, plus
/// their rendered diagnostics in stable order.
#[derive(Debug, Clone, Default)]
pub struct FeasibilityReport {
    certificates: Vec<InfeasibilityCertificate>,
    diagnostics: Vec<Diagnostic>,
}

impl FeasibilityReport {
    /// Whether no infeasibility proof was found. A feasible verdict is
    /// *not* a routability guarantee — the checks are lower bounds.
    pub fn is_feasible(&self) -> bool {
        self.certificates.is_empty()
    }

    /// Every infeasibility proof found.
    pub fn certificates(&self) -> &[InfeasibilityCertificate] {
        &self.certificates
    }

    /// The certificates rendered as diagnostics, stably ordered.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

/// Runs the full pre-route feasibility analysis.
///
/// # Examples
///
/// A two-track channel asked to carry three crossing nets:
///
/// ```
/// use route_model::{PinSide, ProblemBuilder};
///
/// let mut b = ProblemBuilder::switchbox(6, 3);
/// for (i, name) in ["a", "b", "c"].iter().enumerate() {
///     b.net(*name)
///         .pin_side(PinSide::Left, i as u32)
///         .pin_side(PinSide::Right, 2 - i as u32);
/// }
/// let problem = b.build().unwrap();
/// let report = route_analyze::analyze_problem(&problem);
/// assert!(report.is_feasible()); // 3 rows x 2 layers: room to spare
/// ```
pub fn analyze_problem(problem: &Problem) -> FeasibilityReport {
    let ctx = Context::new(problem);
    let mut certificates = Vec::new();

    // Density cuts, columns then rows, in coordinate order.
    let bounds = ctx.base.bounds();
    for x in bounds.min().x..bounds.max().x {
        if let Some(cert) = ctx.density_certificate(CutAxis::Vertical, x) {
            certificates.push(cert);
        }
    }
    for y in bounds.min().y..bounds.max().y {
        if let Some(cert) = ctx.density_certificate(CutAxis::Horizontal, y) {
            certificates.push(cert);
        }
    }

    // Reachability, one certificate per fragmented net, in net order.
    for net in problem.nets() {
        if net.pins.len() < 2 {
            continue;
        }
        let reached = ctx.flood(net.id, net.pins[0]);
        let Some(&cut_off) = net.pins.iter().find(|p| !reached.contains(&(p.at, p.layer))) else {
            continue;
        };
        if reached.len() == 1 {
            certificates
                .push(InfeasibilityCertificate::WalledPin { net: net.id, pin: net.pins[0] });
            continue;
        }
        let island = ctx.flood(net.id, cut_off);
        certificates.push(if island.len() == 1 {
            InfeasibilityCertificate::WalledPin { net: net.id, pin: cut_off }
        } else {
            InfeasibilityCertificate::UnreachablePin {
                net: net.id,
                pin: cut_off,
                goal: net.pins[0],
                component: island.len(),
            }
        });
    }

    let mut diagnostics: Vec<Diagnostic> =
        certificates.iter().map(|c| c.to_diagnostic(problem)).collect();
    sort_diagnostics(&mut diagnostics);
    FeasibilityReport { certificates, diagnostics }
}

/// Precomputed problem state shared by the checks (and reused by the
/// chip-scale pass in [`crate::chip`]).
pub(crate) struct Context<'a> {
    problem: &'a Problem,
    base: Grid,
    pin_owner: HashMap<(Point, Layer), NetId>,
}

/// One analysed cut: the nets forced across it and the cell pairs left.
pub(crate) struct Cut {
    pub(crate) crossing: Vec<NetId>,
    pub(crate) capacity: usize,
}

impl<'a> Context<'a> {
    pub(crate) fn new(problem: &'a Problem) -> Self {
        let base = problem.base_grid();
        let mut pin_owner = HashMap::new();
        for net in problem.nets() {
            for pin in &net.pins {
                pin_owner.insert((pin.at, pin.layer), net.id);
            }
        }
        Context { problem, base, pin_owner }
    }

    fn pins_of(&self, net: NetId) -> Option<&[Pin]> {
        self.problem.nets().get(net.index()).map(|n| n.pins.as_slice())
    }

    /// Whether `net` may legally occupy `(p, layer)`: in bounds, not
    /// blocked in the base grid, and not another net's pin.
    fn admits(&self, net: NetId, p: Point, layer: Layer) -> bool {
        self.base.in_bounds(p)
            && self.base.occupant(p, layer) != Occupant::Blocked
            && self.pin_owner.get(&(p, layer)).is_none_or(|&owner| owner == net)
    }

    /// Analyzes one cut; `None` if no net crosses it.
    pub(crate) fn cut(&self, axis: CutAxis, index: i32) -> Option<Cut> {
        let bounds = self.base.bounds();
        let in_range = match axis {
            CutAxis::Vertical => index >= bounds.min().x && index < bounds.max().x,
            CutAxis::Horizontal => index >= bounds.min().y && index < bounds.max().y,
        };
        if !in_range {
            return None;
        }
        let coord = |pin: &Pin| match axis {
            CutAxis::Vertical => pin.at.x,
            CutAxis::Horizontal => pin.at.y,
        };
        let crossing: Vec<NetId> = self
            .problem
            .nets()
            .iter()
            .filter(|n| {
                let lo = n.pins.iter().map(coord).min().unwrap_or(index + 1);
                let hi = n.pins.iter().map(coord).max().unwrap_or(index);
                lo <= index && hi > index
            })
            .map(|n| n.id)
            .collect();
        if crossing.is_empty() {
            return None;
        }
        let crossing_set: HashSet<NetId> = crossing.iter().copied().collect();
        // A crossing net must own a pair of facing cells somewhere along
        // the cut. Pairs blocked in the base grid — or claimed by the pin
        // of a net that does not cross — are unusable by every crossing
        // net, so they do not count.
        let (ortho_lo, ortho_hi) = match axis {
            CutAxis::Vertical => (bounds.min().y, bounds.max().y),
            CutAxis::Horizontal => (bounds.min().x, bounds.max().x),
        };
        let mut capacity = 0usize;
        for ortho in ortho_lo..=ortho_hi {
            let (a, b) = match axis {
                CutAxis::Vertical => (Point::new(index, ortho), Point::new(index + 1, ortho)),
                CutAxis::Horizontal => (Point::new(ortho, index), Point::new(ortho, index + 1)),
            };
            for layer in Layer::ALL {
                let usable = [a, b].iter().all(|&p| {
                    self.base.occupant(p, layer) != Occupant::Blocked
                        && self
                            .pin_owner
                            .get(&(p, layer))
                            .is_none_or(|owner| crossing_set.contains(owner))
                });
                if usable {
                    capacity += 1;
                }
            }
        }
        Some(Cut { crossing, capacity })
    }

    fn density_certificate(&self, axis: CutAxis, index: i32) -> Option<InfeasibilityCertificate> {
        let cut = self.cut(axis, index)?;
        (cut.crossing.len() > cut.capacity).then_some(InfeasibilityCertificate::DensityOverflow {
            axis,
            index,
            demand: cut.crossing.len(),
            crossing: cut.crossing,
            capacity: cut.capacity,
        })
    }

    /// Floods the slots `net` may occupy, starting from `pin`. Moves:
    /// the four same-layer neighbours, plus a layer change to any
    /// adjacent admissible layer (a via occupies both endpoints, and
    /// the current slot is admissible by construction).
    fn flood(&self, net: NetId, pin: Pin) -> HashSet<(Point, Layer)> {
        let start = (pin.at, pin.layer);
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some((p, layer)) = queue.pop_front() {
            for n in p.neighbors() {
                if self.admits(net, n, layer) && seen.insert((n, layer)) {
                    queue.push_back((n, layer));
                }
            }
            for adj in layer.adjacent() {
                if self.admits(net, p, adj) && seen.insert((p, adj)) {
                    queue.push_back((p, adj));
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder};

    /// `n` nets straight across a `width x height` switchbox.
    fn straight_across(width: u32, height: u32, n: u32) -> Problem {
        let mut b = ProblemBuilder::switchbox(width, height);
        for i in 0..n {
            b.net(format!("n{i}"))
                .pin_side(PinSide::Left, i % height)
                .pin_side(PinSide::Right, i % height);
        }
        b.build().unwrap()
    }

    #[test]
    fn roomy_problems_are_feasible() {
        let report = analyze_problem(&straight_across(8, 6, 4));
        assert!(report.is_feasible());
        assert!(report.diagnostics().is_empty());
    }

    /// Four straight-across nets, with column 2 choked down to one open
    /// row by a near-full-height wall: every vertical cut through the
    /// wall offers 2 cell pairs to 4 crossing nets.
    fn choked(wall_rows: i32) -> Problem {
        let mut b = ProblemBuilder::switchbox(6, 4);
        for y in 0..wall_rows {
            b.obstacle(Point::new(2, y));
        }
        for i in 0..4u32 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn oversubscribed_cut_yields_density_certificate_that_replays() {
        let p = choked(3);
        let report = analyze_problem(&p);
        assert!(!report.is_feasible());
        let cert = &report.certificates()[0];
        match cert {
            InfeasibilityCertificate::DensityOverflow {
                axis,
                index,
                demand,
                capacity,
                crossing,
            } => {
                assert_eq!(*axis, CutAxis::Vertical);
                assert_eq!(*index, 1);
                assert_eq!(*demand, 4);
                assert_eq!(*capacity, 2, "one open row on two layers");
                assert_eq!(crossing.len(), 4);
            }
            other => panic!("expected density certificate, got {other:?}"),
        }
        assert!(cert.replay(&p), "witness must replay");
        // The same certificate is a lie about the unchoked problem.
        assert!(!cert.replay(&choked(0)));
    }

    #[test]
    fn walled_pin_yields_certificate_that_replays() {
        let mut b = ProblemBuilder::switchbox(7, 7);
        // Box in the interior pin at (3,3): ring of full-stack
        // obstacles, plus a cap on M2 so no via escapes upward.
        for p in [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (3, 4), (4, 4)] {
            b.obstacle(Point::new(p.0, p.1));
        }
        b.obstacle_on(Point::new(3, 3), Layer::M2);
        b.net("trapped").pin_at(Point::new(3, 3), Layer::M1).pin_side(PinSide::Left, 0);
        let p = b.build().unwrap();
        let report = analyze_problem(&p);
        let certs = report.certificates();
        assert!(
            certs.iter().any(|c| matches!(
                c,
                InfeasibilityCertificate::WalledPin { pin, .. } if pin.at == Point::new(3, 3)
            )),
            "{certs:?}"
        );
        for c in certs {
            assert!(c.replay(&p));
        }
    }

    #[test]
    fn walled_pin_on_m1_can_still_escape_through_a_via() {
        let mut b = ProblemBuilder::switchbox(7, 7);
        // Same box, but only on M1: the pin escapes upward through M2.
        for p in [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (3, 4), (4, 4)] {
            b.obstacle_on(Point::new(p.0, p.1), Layer::M1);
        }
        b.net("free").pin_at(Point::new(3, 3), Layer::M1).pin_side(PinSide::Left, 0);
        let p = b.build().unwrap();
        assert!(analyze_problem(&p).is_feasible());
    }

    #[test]
    fn separating_wall_yields_unreachable_pin_with_exact_component() {
        let mut b = ProblemBuilder::switchbox(5, 4);
        // A full-height, full-stack wall at x = 2.
        for y in 0..4 {
            b.obstacle(Point::new(2, y));
        }
        b.net("split").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let report = analyze_problem(&p);
        let cert = report
            .certificates()
            .iter()
            .find(|c| matches!(c, InfeasibilityCertificate::UnreachablePin { .. }))
            .expect("unreachable-pin certificate");
        match cert {
            InfeasibilityCertificate::UnreachablePin { component, .. } => {
                // The right bank: 2 columns x 4 rows x 2 layers.
                assert_eq!(*component, 16);
            }
            _ => unreachable!(),
        }
        assert!(cert.replay(&p));
        // Tampered witnesses must not replay.
        if let InfeasibilityCertificate::UnreachablePin { net, pin, goal, component } = cert {
            let forged = InfeasibilityCertificate::UnreachablePin {
                net: *net,
                pin: *pin,
                goal: *goal,
                component: component + 1,
            };
            assert!(!forged.replay(&p));
        }
    }

    #[test]
    fn pins_of_non_crossing_nets_reduce_cut_capacity() {
        let mut b = ProblemBuilder::switchbox(4, 2);
        for i in 0..2u32 {
            b.net(format!("x{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        // A vertical local net whose pins sit on cut column 1: it never
        // crosses the cut, so its pin slots are dead capacity there.
        b.net("local").pin_at(Point::new(1, 0), Layer::M1).pin_at(Point::new(1, 1), Layer::M1);
        let p = b.build().unwrap();
        let ctx = Context::new(&p);
        let cut = ctx.cut(CutAxis::Vertical, 1).unwrap();
        assert_eq!(cut.crossing.len(), 2);
        // 2 rows x 2 enabled layers = 4 raw pairs; the local's pins at
        // (1, 0) and (1, 1) on M1 kill the two M1 pairs.
        assert_eq!(cut.capacity, 2);
    }

    #[test]
    fn single_pin_nets_are_never_fragmented() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("solo").pin_at(Point::new(1, 1), Layer::M1);
        let p = b.build().unwrap();
        assert!(analyze_problem(&p).is_feasible());
    }
}
