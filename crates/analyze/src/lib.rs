//! Static analysis for the routing stack: pre-route feasibility
//! certificates, whole-database lints, and a shared diagnostics engine.
//!
//! Rip-up routers can burn their entire modification budget discovering
//! that a problem was never routable. This crate answers cheaply and
//! *soundly*, before any router runs — and audits whatever a router
//! leaves behind afterwards:
//!
//! * [`analyze_problem`] runs the **feasibility pass** over a
//!   [`Problem`](route_model::Problem): channel-density lower bounds on
//!   every grid cut, flood-fill pin reachability over the blockage map,
//!   and terminal-access checks. Each failure yields an
//!   [`InfeasibilityCertificate`] whose witness (the saturated cut, the
//!   walled-off component) is machine-checkable via
//!   [`InfeasibilityCertificate::replay`].
//! * [`lint_db`] runs the **lint pass** over a routed
//!   [`RouteDb`](route_model::RouteDb): shorts, blocked cells, dangling
//!   vias, connectivity, grid consistency, plus stacked-via, adjacency
//!   and dead-wire style rules — one [rule registry](rules) that
//!   `route_verify` also delegates to.
//!
//! Both passes report through the compiler-grade [`Diagnostic`] type
//! (severity, stable rule code, grid span, fix hint, deterministic
//! order) with [text](render_text) and [JSON](render_json) renderers.
//!
//! # Examples
//!
//! Prove a problem infeasible before routing:
//!
//! ```
//! use route_geom::Point;
//! use route_model::{PinSide, ProblemBuilder};
//!
//! let mut b = ProblemBuilder::switchbox(5, 4);
//! for y in 0..4 {
//!     b.obstacle(Point::new(2, y)); // a full wall across the box
//! }
//! b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
//! let problem = b.build().unwrap();
//!
//! let report = route_analyze::analyze_problem(&problem);
//! assert!(!report.is_feasible());
//! // Every certificate carries a witness that replays on demand.
//! assert!(report.certificates().iter().all(|c| c.replay(&problem)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod diag;
pub mod feasibility;
pub mod lint;

pub use chip::{
    analyze_chip, congestion_map, net_features, ChipReport, CongestionMap, NetFeatures,
    FEATURE_SCALE,
};
pub use diag::{render_json, render_text, sort_diagnostics, Diagnostic, GridSpan, Severity};
pub use feasibility::{analyze_problem, CutAxis, FeasibilityReport, InfeasibilityCertificate};
pub use lint::{
    error_rules, lint_db, lint_db_with, lint_salvage, lint_salvage_chip, rules, LintFinding,
    LintReport, LintRule,
};
