//! The diagnostics engine shared by both analysis passes.
//!
//! Every rule — feasibility certificate or database lint — reports
//! through one [`Diagnostic`] type modelled on compiler output: a
//! severity, a stable rule code, the grid span it anchors to, a
//! human-readable message and an optional fix hint. Diagnostics order
//! deterministically ([`sort_diagnostics`]) and render as text
//! ([`render_text`]) or JSON ([`render_json`]).

use std::fmt;

use route_geom::{Layer, Point};
use route_model::NetId;

/// How serious a diagnostic is.
///
/// Errors make a problem unroutable or a database illegal; warnings
/// flag suspect but legal constructs; notes carry context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The instance is provably broken: infeasible or rule-violating.
    Error,
    /// Legal but suspect: likely waste or fragility worth a look.
    Warning,
    /// Informational context attached to other diagnostics.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// The grid region a diagnostic points at: an inclusive point range,
/// optionally pinned to a single layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GridSpan {
    /// Lower-left corner of the span.
    pub from: Point,
    /// Upper-right corner of the span (inclusive; equal to `from` for a
    /// single cell).
    pub to: Point,
    /// Layer the span lives on, or `None` when it covers all layers.
    pub layer: Option<Layer>,
}

impl GridSpan {
    /// A single-cell span on one layer.
    pub fn cell(at: Point, layer: Layer) -> Self {
        GridSpan { from: at, to: at, layer: Some(layer) }
    }

    /// A single-column/row/area span covering every layer.
    pub fn area(from: Point, to: Point) -> Self {
        GridSpan { from, to, layer: None }
    }

    /// A single point across all layers.
    pub fn point(at: Point) -> Self {
        GridSpan { from: at, to: at, layer: None }
    }
}

impl fmt::Display for GridSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.from == self.to {
            write!(f, "{}", self.from)?;
        } else {
            write!(f, "{}..{}", self.from, self.to)?;
        }
        if let Some(layer) = self.layer {
            write!(f, " on {layer}")?;
        }
        Ok(())
    }
}

/// One finding from an analysis pass, in compiler style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable rule code (`F001`, `L003`, ...).
    pub code: &'static str,
    /// Stable kebab-case rule name (`density-overflow`, ...).
    pub rule: &'static str,
    /// Human-readable, instance-specific description.
    pub message: String,
    /// Where on the grid the finding anchors, if anywhere.
    pub span: Option<GridSpan>,
    /// The net chiefly involved, if one is.
    pub net: Option<NetId>,
    /// A suggested fix, when one is mechanical enough to state.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// The key diagnostics sort by: severity first (errors lead), then
    /// rule code, then grid position, then net, then message — total
    /// and deterministic, independent of discovery order.
    fn sort_key(&self) -> impl Ord + '_ {
        (self.severity, self.code, self.span, self.net.map(|n| n.0), &self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}/{}]: {}", self.severity, self.code, self.rule, self.message)?;
        if let Some(span) = &self.span {
            write!(f, "\n  --> {span}")?;
        }
        if let Some(hint) = &self.hint {
            write!(f, "\n  = hint: {hint}")?;
        }
        Ok(())
    }
}

/// Sorts diagnostics into their stable reporting order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Renders diagnostics as compiler-style text, one block per finding,
/// ending with a one-line summary count. Empty input renders empty.
///
/// # Examples
///
/// ```
/// use route_analyze::{render_text, Diagnostic, Severity};
///
/// let d = Diagnostic {
///     severity: Severity::Warning,
///     code: "L006",
///     rule: "stacked-via",
///     message: "demo".into(),
///     span: None,
///     net: None,
///     hint: None,
/// };
/// let text = render_text(&[d]);
/// assert!(text.starts_with("warning[L006/stacked-via]: demo"));
/// assert!(text.ends_with("1 warning\n"));
/// ```
pub fn render_text(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!("{errors} error{}", plural(errors)));
    }
    if warnings > 0 {
        parts.push(format!("{warnings} warning{}", plural(warnings)));
    }
    if parts.is_empty() {
        parts.push(format!("{} note{}", diags.len(), plural(diags.len())));
    }
    out.push_str(&parts.join(", "));
    out.push('\n');
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders diagnostics as a JSON array (one object per diagnostic),
/// with `null` for absent span/net/hint. The schema is pinned by the
/// CLI's golden tests.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"severity\": \"{}\", \"code\": \"{}\", \"rule\": \"{}\", \"message\": {}",
            d.severity,
            d.code,
            d.rule,
            json_string(&d.message)
        ));
        match &d.span {
            Some(s) => {
                out.push_str(&format!(
                    ", \"span\": {{\"from\": [{}, {}], \"to\": [{}, {}], \"layer\": {}}}",
                    s.from.x,
                    s.from.y,
                    s.to.x,
                    s.to.y,
                    s.layer.map_or("null".to_string(), |l| format!("\"{l}\""))
                ));
            }
            None => out.push_str(", \"span\": null"),
        }
        match d.net {
            Some(n) => out.push_str(&format!(", \"net\": {}", n.0)),
            None => out.push_str(", \"net\": null"),
        }
        match &d.hint {
            Some(h) => out.push_str(&format!(", \"hint\": {}", json_string(h))),
            None => out.push_str(", \"hint\": null"),
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Escapes a string for embedding in JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity, code: &'static str, at: Point, msg: &str) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            rule: "rule",
            message: msg.into(),
            span: Some(GridSpan::cell(at, Layer::M1)),
            net: None,
            hint: None,
        }
    }

    #[test]
    fn ordering_puts_errors_first_then_code_then_position() {
        let mut diags = vec![
            diag(Severity::Warning, "L006", Point::new(0, 0), "w"),
            diag(Severity::Error, "L005", Point::new(9, 9), "e2"),
            diag(Severity::Error, "L001", Point::new(3, 1), "e1b"),
            diag(Severity::Error, "L001", Point::new(2, 1), "e1a"),
        ];
        sort_diagnostics(&mut diags);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, ["e1a", "e1b", "e2", "w"]);
    }

    #[test]
    fn text_rendering_includes_span_hint_and_counts() {
        let mut d = diag(Severity::Error, "F001", Point::new(4, 2), "cut saturated");
        d.hint = Some("drop a net".into());
        let text =
            render_text(&[d.clone(), diag(Severity::Warning, "L008", Point::new(1, 1), "x")]);
        assert!(text.contains("error[F001/rule]: cut saturated"), "{text}");
        assert!(text.contains("--> (4, 2) on M1"), "{text}");
        assert!(text.contains("= hint: drop a net"), "{text}");
        assert!(text.ends_with("1 error, 1 warning\n"), "{text}");
    }

    #[test]
    fn empty_renderings() {
        assert_eq!(render_text(&[]), "");
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let mut d = diag(Severity::Warning, "L007", Point::new(1, 2), "say \"hi\"");
        d.net = Some(NetId(3));
        let json = render_json(&[d]);
        assert!(json.contains("\"message\": \"say \\\"hi\\\"\""), "{json}");
        assert!(json.contains("\"span\": {\"from\": [1, 2], \"to\": [1, 2], \"layer\": \"M1\"}"));
        assert!(json.contains("\"net\": 3"), "{json}");
        assert!(json.contains("\"hint\": null"), "{json}");
    }

    #[test]
    fn span_display_forms() {
        assert_eq!(GridSpan::cell(Point::new(1, 2), Layer::M2).to_string(), "(1, 2) on M2");
        assert_eq!(
            GridSpan::area(Point::new(0, 0), Point::new(3, 4)).to_string(),
            "(0, 0)..(3, 4)"
        );
        assert_eq!(GridSpan::point(Point::new(5, 6)).to_string(), "(5, 6)");
    }
}
