//! Whole-database lint analysis over a routed [`RouteDb`].
//!
//! Every DRC and consistency check in the workspace lives here, as one
//! entry in a [rule registry](rules): occupancy is recomputed from pins
//! and traces, then each rule audits one property of the database.
//! `route_verify` delegates to this registry (keeping its historical
//! [`Violation`]-shaped API), and the CLI renders the same findings as
//! compiler-style diagnostics.
//!
//! Error-severity rules (`L001`–`L005`) make a database illegal;
//! warning-severity rules (`L006`–`L008`) flag legal but suspect
//! constructs — stacked vias, foreign vias in adjacent cells, and
//! wiring in components that touch no pin.
//!
//! [`Violation`]: https://docs.rs/route-verify

use std::collections::{HashMap, HashSet, VecDeque};

use route_geom::{Layer, Point};
use route_model::{Grid, NetId, Occupant, Problem, RouteDb, SlotIndex, Step};

use crate::diag::{sort_diagnostics, Diagnostic, GridSpan, Severity};

/// One concrete lint hit, with the witness data its rule collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintFinding {
    /// Two nets occupy the same `(cell, layer)` slot (`L001`).
    Short {
        /// First net, in net order.
        a: NetId,
        /// Second net.
        b: NetId,
        /// The contested cell.
        at: Point,
        /// The contested layer.
        layer: Layer,
    },
    /// Wiring on a blocked or out-of-grid cell (`L002`).
    BlockedCell {
        /// The offending net.
        net: NetId,
        /// The illegal cell.
        at: Point,
        /// The illegal layer.
        layer: Layer,
    },
    /// A layer change without a consistent via, or a via marker no
    /// trace backs (`L003`).
    DanglingVia {
        /// The net whose via is inconsistent.
        net: NetId,
        /// The via location.
        at: Point,
    },
    /// A net's pins split across multiple components (`L004`).
    Disconnected {
        /// The fragmented net.
        net: NetId,
        /// Number of components containing at least one pin.
        components: usize,
    },
    /// The live grid disagrees with recomputed occupancy (`L005`).
    GridMismatch {
        /// The inconsistent cell.
        at: Point,
        /// The inconsistent layer.
        layer: Layer,
    },
    /// Vias on both layer pairs of the same point (`L006`).
    StackedVia {
        /// The net stacking its vias.
        net: NetId,
        /// The shared via point.
        at: Point,
    },
    /// Vias of different nets in Manhattan-adjacent cells on the same
    /// layer pair (`L007`).
    AdjacentVias {
        /// Net owning the via at `at`.
        a: NetId,
        /// Net owning the via at `other`.
        b: NetId,
        /// First via point (the smaller coordinate).
        at: Point,
        /// Second via point.
        other: Point,
        /// Lower layer of the shared via pair.
        lower: Layer,
    },
    /// A connected component of a net's wiring that contains no pin
    /// (`L008`).
    DeadWire {
        /// The net owning the floating wiring.
        net: NetId,
        /// Representative slot of the component (minimum position).
        at: Point,
        /// Layer of the representative slot.
        layer: Layer,
        /// Number of slots in the floating component.
        cells: usize,
    },
    /// A pin of a partially wired net left with zero incident wiring —
    /// the signature a pruned stitch anchor leaves behind (`L009`).
    AnchorOrphan {
        /// The net owning the orphaned pin.
        net: NetId,
        /// The orphaned pin cell.
        at: Point,
        /// The orphaned pin layer.
        layer: Layer,
    },
}

impl LintFinding {
    /// The registry rule that produced this finding.
    pub fn rule(&self) -> &'static LintRule {
        &rules()[self.rule_index()]
    }

    fn rule_index(&self) -> usize {
        match self {
            LintFinding::Short { .. } => 0,
            LintFinding::BlockedCell { .. } => 1,
            LintFinding::DanglingVia { .. } => 2,
            LintFinding::Disconnected { .. } => 3,
            LintFinding::GridMismatch { .. } => 4,
            LintFinding::StackedVia { .. } => 5,
            LintFinding::AdjacentVias { .. } => 6,
            LintFinding::DeadWire { .. } => 7,
            LintFinding::AnchorOrphan { .. } => 8,
        }
    }

    /// Stable ordering key: rule, then position, then nets.
    fn sort_key(&self) -> (usize, i32, i32, usize, u32) {
        let (at, layer, net) = match *self {
            LintFinding::Short { at, layer, a, .. } => (at, layer.index(), a.0),
            LintFinding::BlockedCell { at, layer, net } => (at, layer.index(), net.0),
            LintFinding::DanglingVia { at, net } => (at, 0, net.0),
            LintFinding::Disconnected { net, .. } => (Point::new(0, 0), 0, net.0),
            LintFinding::GridMismatch { at, layer } => (at, layer.index(), 0),
            LintFinding::StackedVia { at, net } => (at, 0, net.0),
            LintFinding::AdjacentVias { at, lower, a, .. } => (at, lower.index(), a.0),
            LintFinding::DeadWire { at, layer, net, .. } => (at, layer.index(), net.0),
            LintFinding::AnchorOrphan { at, layer, net } => (at, layer.index(), net.0),
        };
        (self.rule_index(), at.y, at.x, layer, net)
    }

    /// Renders the finding as a [`Diagnostic`] under its rule's code.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let rule = self.rule();
        let (message, span, net, hint) = match self {
            LintFinding::Short { a, b, at, layer } => (
                format!("nets {a} and {b} both occupy {at} on {layer}"),
                Some(GridSpan::cell(*at, *layer)),
                Some(*a),
                Some("rip up one of the nets and reroute around the contested cell".to_string()),
            ),
            LintFinding::BlockedCell { net, at, layer } => (
                format!("net {net} wires through the blocked cell {at} on {layer}"),
                Some(GridSpan::cell(*at, *layer)),
                Some(*net),
                Some("reroute around the obstacle".to_string()),
            ),
            LintFinding::DanglingVia { net, at } => (
                format!("net {net} has an inconsistent via at {at}"),
                Some(GridSpan::point(*at)),
                Some(*net),
                Some(
                    "a via needs both layers owned by its net and a matching grid marker"
                        .to_string(),
                ),
            ),
            LintFinding::Disconnected { net, components } => (
                format!("net {net} is split into {components} pin components"),
                None,
                Some(*net),
                Some("route the missing connections or report the net as failed".to_string()),
            ),
            LintFinding::GridMismatch { at, layer } => (
                format!("live grid disagrees with trace occupancy at {at} on {layer}"),
                Some(GridSpan::cell(*at, *layer)),
                None,
                Some("commit and rip-up must keep the grid in sync with traces".to_string()),
            ),
            LintFinding::StackedVia { net, at } => (
                format!("net {net} stacks vias on both layer pairs at {at}"),
                Some(GridSpan::point(*at)),
                Some(*net),
                Some("prefer stepping the layer change across two columns".to_string()),
            ),
            LintFinding::AdjacentVias { a, b, at, other, lower } => (
                format!(
                    "vias of nets {a} and {b} sit in adjacent cells {at} and {other} on the \
                     {lower} pair"
                ),
                Some(GridSpan::area(*at, *other)),
                Some(*a),
                Some("adjacent foreign vias violate spacing on most processes".to_string()),
            ),
            LintFinding::DeadWire { net, at, layer, cells } => (
                format!("net {net} owns a floating {cells}-slot component touching no pin"),
                Some(GridSpan::cell(*at, *layer)),
                Some(*net),
                Some("rip up the dead wiring to reclaim capacity".to_string()),
            ),
            LintFinding::AnchorOrphan { net, at, layer } => (
                format!("net {net} leaves its pin at {at} on {layer} with no incident wiring"),
                Some(GridSpan::cell(*at, *layer)),
                Some(*net),
                Some(
                    "a prune that strands an anchor pin should take the whole stub or none"
                        .to_string(),
                ),
            ),
        };
        Diagnostic {
            severity: rule.severity,
            code: rule.code,
            rule: rule.name,
            message,
            span,
            net,
            hint,
        }
    }
}

/// One entry in the lint registry.
pub struct LintRule {
    /// Stable machine-readable code (`L001`...).
    pub code: &'static str,
    /// Stable kebab-case name.
    pub name: &'static str,
    /// Severity of every finding this rule emits.
    pub severity: Severity,
    /// One-line description for rule catalogs.
    pub description: &'static str,
    run: fn(&LintContext) -> Vec<LintFinding>,
}

/// The full lint registry, in rule-code order.
pub fn rules() -> &'static [LintRule] {
    static RULES: [LintRule; 9] = [
        LintRule {
            code: "L001",
            name: "short-circuit",
            severity: Severity::Error,
            description: "two nets occupy the same cell and layer",
            run: lint_shorts,
        },
        LintRule {
            code: "L002",
            name: "blocked-cell",
            severity: Severity::Error,
            description: "wiring on an obstacle, outside the region, or off the grid",
            run: lint_blocked,
        },
        LintRule {
            code: "L003",
            name: "dangling-via",
            severity: Severity::Error,
            description: "layer change without a consistent, grid-backed via",
            run: lint_vias,
        },
        LintRule {
            code: "L004",
            name: "disconnected-net",
            severity: Severity::Error,
            description: "a net's pins are not all in one connected component",
            run: lint_connectivity,
        },
        LintRule {
            code: "L005",
            name: "grid-mismatch",
            severity: Severity::Error,
            description: "live occupancy grid disagrees with the traces",
            run: lint_grid,
        },
        LintRule {
            code: "L006",
            name: "stacked-via",
            severity: Severity::Warning,
            description: "vias on both layer pairs of one point",
            run: lint_stacked,
        },
        LintRule {
            code: "L007",
            name: "via-adjacency",
            severity: Severity::Warning,
            description: "vias of different nets in adjacent cells",
            run: lint_adjacent,
        },
        LintRule {
            code: "L008",
            name: "dead-wire",
            severity: Severity::Warning,
            description: "wiring in a component that touches no pin",
            run: lint_dead,
        },
        LintRule {
            code: "L009",
            name: "seam-anchor-orphan",
            severity: Severity::Warning,
            description: "a pin of a partially wired net has zero incident wiring",
            run: lint_anchors,
        },
    ];
    &RULES
}

/// The error-severity prefix of the registry (`L001`–`L005`): exactly
/// the historical `route_verify` checks. Legality-only callers (the
/// verifier, the fuzz DRC oracle) select these.
pub fn error_rules() -> &'static [LintRule] {
    let all = rules();
    let split = all.iter().position(|r| r.severity != Severity::Error).unwrap_or(all.len());
    &all[..split]
}

/// The outcome of [`lint_db`]: all findings, stably ordered, plus their
/// rendered diagnostics.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    findings: Vec<LintFinding>,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether no error-severity rule fired.
    pub fn is_legal(&self) -> bool {
        self.findings.iter().all(|f| f.rule().severity != Severity::Error)
    }

    /// Every finding, ordered by rule then position.
    pub fn findings(&self) -> &[LintFinding] {
        &self.findings
    }

    /// The findings rendered as diagnostics, stably ordered.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

/// Runs every registry rule over a database.
///
/// # Examples
///
/// ```
/// use route_model::{PinSide, ProblemBuilder, RouteDb};
///
/// let mut b = ProblemBuilder::switchbox(5, 4);
/// b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
/// let problem = b.build().unwrap();
/// let report = route_analyze::lint_db(&problem, &RouteDb::new(&problem));
/// // Nothing routed yet: the only finding is the disconnected net.
/// assert!(!report.is_clean());
/// assert_eq!(report.findings().len(), 1);
/// ```
pub fn lint_db(problem: &Problem, db: &RouteDb) -> LintReport {
    lint_db_with(problem, db, rules())
}

/// Runs a subset of rules — callers that only care about legality can
/// pass the error-severity slice.
pub fn lint_db_with(problem: &Problem, db: &RouteDb, selected: &[LintRule]) -> LintReport {
    let ctx = LintContext::new(problem, db);
    let mut findings: Vec<LintFinding> = Vec::new();
    for rule in selected {
        findings.extend((rule.run)(&ctx));
    }
    findings.sort_by_key(LintFinding::sort_key);
    let mut diagnostics: Vec<Diagnostic> =
        findings.iter().map(LintFinding::to_diagnostic).collect();
    sort_diagnostics(&mut diagnostics);
    LintReport { findings, diagnostics }
}

/// Lints a *partial* routing salvaged from a failed or interrupted run.
///
/// Every error-severity rule runs, but [`LintFinding::Disconnected`]
/// (`L004`) findings on nets the salvager already declared failed are
/// excused: a salvage is expected to be incomplete, never illegal. A
/// disconnected finding on a net **not** in `declared_failed` survives
/// into the report — it means the salvage claims a net it did not
/// actually connect, which is exactly the lie the fuzz oracle hunts.
///
/// # Examples
///
/// ```
/// use route_model::{PinSide, ProblemBuilder, RouteDb};
///
/// let mut b = ProblemBuilder::switchbox(5, 4);
/// b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
/// let problem = b.build().unwrap();
/// let net = problem.nets()[0].id;
/// let empty = RouteDb::new(&problem);
/// // An empty database is a legal salvage iff the net is declared failed.
/// assert!(route_analyze::lint_salvage(&problem, &empty, &[net]).is_clean());
/// assert!(!route_analyze::lint_salvage(&problem, &empty, &[]).is_legal());
/// ```
pub fn lint_salvage(problem: &Problem, db: &RouteDb, declared_failed: &[NetId]) -> LintReport {
    let full = lint_db_with(problem, db, error_rules());
    let findings: Vec<LintFinding> = full
        .findings
        .iter()
        .filter(|f| match f {
            LintFinding::Disconnected { net, .. } => !declared_failed.contains(net),
            _ => true,
        })
        .cloned()
        .collect();
    let mut diagnostics: Vec<Diagnostic> =
        findings.iter().map(LintFinding::to_diagnostic).collect();
    sort_diagnostics(&mut diagnostics);
    LintReport { findings, diagnostics }
}

/// Chip-aware salvage lint for hierarchical (tiled) results.
///
/// Runs everything [`lint_salvage`] runs, plus the two warning rules a
/// seam stitch can trip — dead wire (`L008`) and anchor orphans
/// (`L009`) — *without* excusing the seam bands: an `L009` on a
/// declared-failed net is forgiven only when the pin sits outside every
/// band of half-width `band` around a tile boundary of pitch `tile`.
/// An anchor the seam prune stranded inside a band is exactly the
/// artifact this report exists to surface; it stays a warning, so
/// [`LintReport::is_legal`] is unaffected.
pub fn lint_salvage_chip(
    problem: &Problem,
    db: &RouteDb,
    declared_failed: &[NetId],
    tile: u32,
    band: u32,
) -> LintReport {
    let near = |v: i32, extent: u32| {
        if tile == 0 || v < 0 {
            return false;
        }
        let v = v as u32;
        (1..extent.div_ceil(tile)).any(|k| {
            let boundary = k * tile;
            v + band >= boundary && v < boundary + band
        })
    };
    let in_band = |p: Point| near(p.x, problem.width()) || near(p.y, problem.height());
    let full = lint_db_with(problem, db, rules());
    let findings: Vec<LintFinding> = full
        .findings
        .iter()
        .filter(|f| match f {
            LintFinding::Disconnected { net, .. } => !declared_failed.contains(net),
            LintFinding::AnchorOrphan { net, at, .. } => {
                !declared_failed.contains(net) || in_band(*at)
            }
            LintFinding::StackedVia { .. } | LintFinding::AdjacentVias { .. } => false,
            _ => true,
        })
        .cloned()
        .collect();
    let mut diagnostics: Vec<Diagnostic> =
        findings.iter().map(LintFinding::to_diagnostic).collect();
    sort_diagnostics(&mut diagnostics);
    LintReport { findings, diagnostics }
}

/// One occupied slot: a grid cell on one layer.
type Slot = (Point, Layer);

/// One connected component of a net's occupancy: its slots and
/// whether any of them is a pin.
type Component = (Vec<Slot>, bool);

/// Occupancy and connectivity recomputed once, shared by all rules.
struct LintContext<'a> {
    problem: &'a Problem,
    db: &'a RouteDb,
    base: Grid,
    /// Recomputed slot ownership: pins plus every trace step, with the
    /// owning nets in net order.
    occupancy: HashMap<(Point, Layer), Vec<NetId>>,
    /// Vias required by layer changes in live traces, per net.
    required_vias: HashMap<NetId, HashSet<(Point, Layer)>>,
    /// Per net: each connected component of its occupancy.
    components: Vec<Vec<Component>>,
}

impl<'a> LintContext<'a> {
    fn new(problem: &'a Problem, db: &'a RouteDb) -> Self {
        let base = problem.base_grid();
        let mut occupancy: HashMap<(Point, Layer), Vec<NetId>> = HashMap::new();
        let mut required_vias: HashMap<NetId, HashSet<(Point, Layer)>> = HashMap::new();
        for net in problem.nets() {
            let mut slots: HashSet<(Point, Layer)> = HashSet::new();
            for pin in &net.pins {
                slots.insert((pin.at, pin.layer));
            }
            for (_, trace) in db.traces(net.id) {
                for step in trace.steps() {
                    slots.insert((step.at, step.layer));
                }
                required_vias.entry(net.id).or_default().extend(trace.via_points());
            }
            for slot in slots {
                occupancy.entry(slot).or_default().push(net.id);
            }
        }
        let components =
            problem.nets().iter().map(|n| net_components(db, n.id, &required_vias)).collect();
        LintContext { problem, db, base, occupancy, required_vias, components }
    }

    /// All required vias as `(point, lower layer, net)`, sorted.
    fn sorted_vias(&self) -> Vec<(Point, Layer, NetId)> {
        let mut vias: Vec<(Point, Layer, NetId)> = self
            .required_vias
            .iter()
            .flat_map(|(&net, vias)| vias.iter().map(move |&(p, l)| (p, l, net)))
            .collect();
        vias.sort_unstable();
        vias
    }
}

/// Splits `net`'s occupancy into connected components, flagging the
/// ones that contain a pin. Movement follows same-layer adjacency plus
/// layer changes where a via is required by a trace or marked on the
/// grid.
fn net_components(
    db: &RouteDb,
    net: NetId,
    required_vias: &HashMap<NetId, HashSet<Slot>>,
) -> Vec<Component> {
    let slots: HashSet<(Point, Layer)> =
        db.net_slots(net).into_iter().map(|s| (s.at, s.layer)).collect();
    let pins: HashSet<(Point, Layer)> = db.pins(net).iter().map(|p| (p.at, p.layer)).collect();
    let vias = required_vias.get(&net);
    let has_via = |p: Point, lower: Layer| {
        vias.is_some_and(|v| v.contains(&(p, lower)))
            || db.grid().via_between(p, lower) == Some(net)
    };

    let mut seeds: Vec<(Point, Layer)> = slots.iter().copied().collect();
    seeds.sort_unstable();
    let mut seen: HashSet<(Point, Layer)> = HashSet::new();
    let mut components = Vec::new();
    for seed in seeds {
        if seen.contains(&seed) {
            continue;
        }
        let mut member = vec![seed];
        let mut queue = VecDeque::from([seed]);
        seen.insert(seed);
        while let Some((p, layer)) = queue.pop_front() {
            for n in p.neighbors() {
                let key = (n, layer);
                if slots.contains(&key) && seen.insert(key) {
                    member.push(key);
                    queue.push_back(key);
                }
            }
            for adj in layer.adjacent() {
                if let Some(lower) = layer.via_pair_with(adj) {
                    if has_via(p, lower) {
                        let key = (p, adj);
                        if slots.contains(&key) && seen.insert(key) {
                            member.push(key);
                            queue.push_back(key);
                        }
                    }
                }
            }
        }
        member.sort_unstable();
        let has_pin = member.iter().any(|s| pins.contains(s));
        components.push((member, has_pin));
    }
    components
}

fn lint_shorts(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (&(at, layer), owners) in &ctx.occupancy {
        if owners.len() > 1 {
            out.push(LintFinding::Short { a: owners[0], b: owners[1], at, layer });
        }
    }
    out
}

fn lint_blocked(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (&(at, layer), owners) in &ctx.occupancy {
        if !ctx.base.in_bounds(at) || ctx.base.occupant(at, layer) == Occupant::Blocked {
            for &net in owners {
                out.push(LintFinding::BlockedCell { net, at, layer });
            }
        }
    }
    out
}

fn lint_vias(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    // Every required via must connect both slots of its layer pair for
    // its net, and the grid must record it for that net.
    for (&net, vias) in &ctx.required_vias {
        for &(at, lower) in vias {
            let Some(upper) = lower.above() else {
                out.push(LintFinding::DanglingVia { net, at });
                continue;
            };
            let both_layers = [lower, upper]
                .iter()
                .all(|&l| ctx.occupancy.get(&(at, l)).is_some_and(|o| o.contains(&net)));
            let grid_agrees =
                ctx.db.grid().in_bounds(at) && ctx.db.grid().via_between(at, lower) == Some(net);
            if !both_layers || !grid_agrees {
                out.push(LintFinding::DanglingVia { net, at });
            }
        }
    }
    // ...and conversely every grid marker must be backed by a trace.
    for p in ctx.base.bounds().cells() {
        for lower in [Layer::M1, Layer::M2] {
            if let Some(net) = ctx.db.grid().via_between(p, lower) {
                let backed =
                    ctx.required_vias.get(&net).is_some_and(|vias| vias.contains(&(p, lower)));
                if !backed {
                    out.push(LintFinding::DanglingVia { net, at: p });
                }
            }
        }
    }
    out
}

fn lint_connectivity(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for net in ctx.problem.nets() {
        let pinned = ctx.components[net.id.index()].iter().filter(|(_, has_pin)| *has_pin).count();
        if pinned > 1 {
            out.push(LintFinding::Disconnected { net: net.id, components: pinned });
        }
    }
    out
}

fn lint_grid(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for p in ctx.base.bounds().cells() {
        for layer in Layer::ALL {
            if ctx.base.occupant(p, layer) == Occupant::Blocked {
                continue;
            }
            let expected = ctx.occupancy.get(&(p, layer)).and_then(|o| o.first().copied());
            let actual = ctx.db.grid().occupant(p, layer).net();
            let actual_free = ctx.db.grid().occupant(p, layer).is_free();
            let matches = match expected {
                Some(net) => actual == Some(net),
                None => actual_free,
            };
            if !matches {
                out.push(LintFinding::GridMismatch { at: p, layer });
            }
        }
    }
    out
}

fn lint_stacked(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (&net, vias) in &ctx.required_vias {
        for &(at, lower) in vias {
            // Report once per point, from the lower pair.
            if lower == Layer::M1 && vias.contains(&(at, Layer::M2)) {
                out.push(LintFinding::StackedVia { net, at });
            }
        }
    }
    out
}

fn lint_adjacent(ctx: &LintContext) -> Vec<LintFinding> {
    let vias = ctx.sorted_vias();
    // Spatial index over via sites: inserting in sorted order keeps each
    // slot's owner list in net order, so findings come out in the same
    // order the old per-slot hash map produced.
    let mut by_slot: SlotIndex<NetId> = SlotIndex::new(ctx.base.width(), ctx.base.height());
    for &(p, l, net) in &vias {
        by_slot.insert(Step { at: p, layer: l }, net);
    }
    let mut out = Vec::new();
    for &(p, lower, net) in &vias {
        for n in p.neighbors() {
            // Visit each unordered pair once, from its smaller point.
            if n < p {
                continue;
            }
            for &other in by_slot.at(n, lower) {
                if other != net {
                    out.push(LintFinding::AdjacentVias {
                        a: net,
                        b: other,
                        at: p,
                        other: n,
                        lower,
                    });
                }
            }
        }
    }
    out
}

fn lint_anchors(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for net in ctx.problem.nets() {
        // Only nets that carry wiring somewhere: a fully unrouted net is
        // L004's business, not an orphaned anchor.
        if net.pins.len() < 2 || ctx.db.traces(net.id).next().is_none() {
            continue;
        }
        for pin in &net.pins {
            let slot = (pin.at, pin.layer);
            let orphaned = ctx.components[net.id.index()]
                .iter()
                .find(|(member, _)| member.binary_search(&slot).is_ok())
                .is_some_and(|(member, _)| member.len() == 1);
            if orphaned {
                out.push(LintFinding::AnchorOrphan { net: net.id, at: pin.at, layer: pin.layer });
            }
        }
    }
    out
}

fn lint_dead(ctx: &LintContext) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for net in ctx.problem.nets() {
        for (member, has_pin) in &ctx.components[net.id.index()] {
            if !has_pin {
                let &(at, layer) = member.first().expect("components are non-empty");
                out.push(LintFinding::DeadWire { net: net.id, at, layer, cells: member.len() });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, Step, Trace};

    fn two_pin_problem() -> Problem {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.build().unwrap()
    }

    fn m1_row(y: i32, x0: i32, x1: i32) -> Trace {
        Trace::from_steps((x0..=x1).map(|x| Step::new(Point::new(x, y), Layer::M1)).collect())
            .unwrap()
    }

    #[test]
    fn registry_is_stable() {
        let codes: Vec<&str> = rules().iter().map(|r| r.code).collect();
        assert_eq!(codes, ["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009"]);
        let unique: HashSet<&str> = rules().iter().map(|r| r.name).collect();
        assert_eq!(unique.len(), rules().len(), "rule names must be unique");
    }

    #[test]
    fn clean_routing_has_no_findings() {
        let p = two_pin_problem();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 4)).unwrap();
        let report = lint_db(&p, &db);
        assert!(report.is_clean(), "{:?}", report.findings());
        assert!(report.is_legal());
    }

    #[test]
    fn unrouted_net_is_disconnected_only() {
        let p = two_pin_problem();
        let report = lint_db(&p, &RouteDb::new(&p));
        assert_eq!(
            report.findings(),
            &[LintFinding::Disconnected { net: NetId(0), components: 2 }]
        );
        assert!(!report.is_legal());
    }

    #[test]
    fn dead_wire_is_a_warning_not_an_error() {
        let p = two_pin_problem();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 4)).unwrap();
        // A second trace nowhere near the pins: floating wiring.
        db.commit(p.nets()[0].id, m1_row(3, 1, 2)).unwrap();
        let report = lint_db(&p, &db);
        assert_eq!(
            report.findings(),
            &[LintFinding::DeadWire {
                net: NetId(0),
                at: Point::new(1, 3),
                layer: Layer::M1,
                cells: 2
            }]
        );
        assert!(report.is_legal(), "dead wire alone keeps the db legal");
        assert!(!report.is_clean());
    }

    #[test]
    fn stacked_via_warns_on_three_layer_problems() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.layers(3);
        b.net("a").pin_at(Point::new(0, 0), Layer::M1).pin_at(Point::new(0, 3), Layer::M3);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        let steps = vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(0, 0), Layer::M2),
            Step::new(Point::new(0, 0), Layer::M3),
            Step::new(Point::new(0, 1), Layer::M3),
            Step::new(Point::new(0, 2), Layer::M3),
            Step::new(Point::new(0, 3), Layer::M3),
        ];
        db.commit(p.nets()[0].id, Trace::from_steps(steps).unwrap()).unwrap();
        let report = lint_db(&p, &db);
        assert_eq!(
            report.findings(),
            &[LintFinding::StackedVia { net: NetId(0), at: Point::new(0, 0) }]
        );
        let diag = &report.diagnostics()[0];
        assert_eq!(diag.code, "L006");
        assert_eq!(diag.severity, Severity::Warning);
    }

    #[test]
    fn adjacent_foreign_vias_warn_once_per_pair() {
        let mut b = ProblemBuilder::switchbox(6, 4);
        b.net("a").pin_at(Point::new(0, 0), Layer::M1).pin_at(Point::new(1, 2), Layer::M2);
        b.net("b").pin_at(Point::new(2, 0), Layer::M1).pin_at(Point::new(2, 3), Layer::M2);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        db.commit(
            p.nets()[0].id,
            Trace::from_steps(vec![
                Step::new(Point::new(0, 0), Layer::M1),
                Step::new(Point::new(1, 0), Layer::M1),
                Step::new(Point::new(1, 0), Layer::M2),
                Step::new(Point::new(1, 1), Layer::M2),
                Step::new(Point::new(1, 2), Layer::M2),
            ])
            .unwrap(),
        )
        .unwrap();
        db.commit(
            p.nets()[1].id,
            Trace::from_steps(vec![
                Step::new(Point::new(2, 0), Layer::M1),
                Step::new(Point::new(2, 0), Layer::M2),
                Step::new(Point::new(2, 1), Layer::M2),
                Step::new(Point::new(2, 2), Layer::M2),
                Step::new(Point::new(2, 3), Layer::M2),
            ])
            .unwrap(),
        )
        .unwrap();
        let report = lint_db(&p, &db);
        let adjacent: Vec<&LintFinding> = report
            .findings()
            .iter()
            .filter(|f| matches!(f, LintFinding::AdjacentVias { .. }))
            .collect();
        assert_eq!(
            adjacent,
            [&LintFinding::AdjacentVias {
                a: NetId(0),
                b: NetId(1),
                at: Point::new(1, 0),
                other: Point::new(2, 0),
                lower: Layer::M1,
            }]
        );
    }

    #[test]
    fn orphaned_anchor_pin_warns_but_unrouted_net_does_not() {
        let p = two_pin_problem();
        // Wiring that reaches the left pin but strands the right one.
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 2)).unwrap();
        let report = lint_db(&p, &db);
        let orphans: Vec<&LintFinding> = report
            .findings()
            .iter()
            .filter(|f| matches!(f, LintFinding::AnchorOrphan { .. }))
            .collect();
        assert_eq!(
            orphans,
            [&LintFinding::AnchorOrphan { net: NetId(0), at: Point::new(4, 1), layer: Layer::M1 }]
        );
        assert_eq!(orphans[0].rule().code, "L009");
        assert_eq!(orphans[0].rule().severity, Severity::Warning);
        // A net with no wiring at all is L004's business only.
        let empty = lint_db(&p, &RouteDb::new(&p));
        assert!(empty.findings().iter().all(|f| !matches!(f, LintFinding::AnchorOrphan { .. })));
    }

    #[test]
    fn salvage_chip_excuses_orphans_outside_the_seam_band_only() {
        // A 10-wide box at tile 5, band 1: the seam band is x in {4, 5}.
        let mut b = ProblemBuilder::switchbox(10, 4);
        b.net("in").pin_at(Point::new(5, 1), Layer::M1).pin_at(Point::new(5, 3), Layer::M1);
        b.net("out").pin_at(Point::new(0, 1), Layer::M1).pin_at(Point::new(2, 3), Layer::M1);
        let p = b.build().unwrap();
        let (inband, outside) = (p.nets()[0].id, p.nets()[1].id);
        let mut db = RouteDb::new(&p);
        // Each net gets one stub that strands its second pin.
        db.commit(
            inband,
            Trace::from_steps(vec![
                Step::new(Point::new(5, 1), Layer::M1),
                Step::new(Point::new(6, 1), Layer::M1),
            ])
            .unwrap(),
        )
        .unwrap();
        db.commit(
            outside,
            Trace::from_steps(vec![
                Step::new(Point::new(0, 1), Layer::M1),
                Step::new(Point::new(1, 1), Layer::M1),
            ])
            .unwrap(),
        )
        .unwrap();
        let failed = [inband, outside];
        // Plain salvage is clean: both nets are declared failed.
        assert!(lint_salvage(&p, &db, &failed).is_clean());
        // Chip-aware salvage keeps the in-band orphan as a warning.
        let report = lint_salvage_chip(&p, &db, &failed, 5, 1);
        assert!(report.is_legal());
        let orphans: Vec<&LintFinding> = report
            .findings()
            .iter()
            .filter(|f| matches!(f, LintFinding::AnchorOrphan { .. }))
            .collect();
        assert_eq!(
            orphans,
            [&LintFinding::AnchorOrphan { net: inband, at: Point::new(5, 3), layer: Layer::M1 }]
        );
        // An undeclared orphan survives regardless of position.
        let undeclared = lint_salvage_chip(&p, &db, &[inband], 5, 1);
        assert!(undeclared
            .findings()
            .iter()
            .any(|f| matches!(f, LintFinding::AnchorOrphan { net, .. } if *net == outside)));
    }

    #[test]
    fn rule_subset_runs_only_selected_rules() {
        let p = two_pin_problem();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 4)).unwrap();
        db.commit(p.nets()[0].id, m1_row(3, 1, 2)).unwrap();
        // Errors only: the dead wire warning is not consulted.
        let errors_only = lint_db_with(&p, &db, &rules()[..5]);
        assert!(errors_only.is_clean());
    }

    #[test]
    fn findings_order_is_stable() {
        let p = two_pin_problem();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(3, 3, 4)).unwrap();
        db.commit(p.nets()[0].id, m1_row(3, 0, 1)).unwrap();
        let report = lint_db(&p, &db);
        // One disconnected finding, two dead wires left-to-right, then
        // both stranded pins as anchor orphans.
        let kinds: Vec<usize> = report.findings().iter().map(|f| f.rule_index()).collect();
        assert_eq!(kinds, [3, 7, 7, 8, 8]);
        match (&report.findings()[1], &report.findings()[2]) {
            (LintFinding::DeadWire { at: a, .. }, LintFinding::DeadWire { at: b, .. }) => {
                assert!(a < b)
            }
            other => panic!("expected two ordered DeadWire findings, got {other:?}"),
        }
    }
}
