//! Property-based tests of the optimization passes: on arbitrary routed
//! instances the passes never worsen the objective, never break
//! legality, and reach a fixpoint.

use proptest::prelude::*;

use mighty::{MightyRouter, RouterConfig};
use route_benchdata::gen::SwitchboxGen;
use route_opt::{cleanup, minimize_vias, OptimizeConfig};
use route_verify::verify;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cleanup_never_worsens_and_stays_legal(
        side in 8u32..20,
        nets in 2u32..12,
        seed in 0u64..1000,
    ) {
        let nets = nets.min(side);
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let complete_before = out.is_complete();
        let mut db = out.into_db();
        let before = db.stats().weighted_cost(3);

        let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
        let report = verify(&problem, &db);
        prop_assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "cleanup broke legality: {report}"
        );
        if complete_before {
            // Complete stays complete, and the cost never rises.
            prop_assert!(report.is_clean(), "cleanup disconnected a net: {report}");
            prop_assert!(db.stats().weighted_cost(3) <= before);
        }
        prop_assert_eq!(stats.after, db.stats());

        // A second run finds nothing more (fixpoint).
        let settled = db.stats();
        let again = cleanup(&problem, &mut db, &OptimizeConfig::default());
        prop_assert_eq!(again.improved, 0);
        prop_assert_eq!(db.stats(), settled);
    }

    /// The via-focused pass guarantees its *weighted objective* never
    /// rises (a +1-via, -17-wire trade is a legitimate improvement at
    /// via weight 16, so the raw via count alone is not an invariant).
    #[test]
    fn via_minimisation_never_worsens_its_objective(
        side in 8u32..20,
        nets in 2u32..12,
        seed in 0u64..1000,
    ) {
        let nets = nets.min(side);
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let complete_before = out.is_complete();
        let mut db = out.into_db();
        let before = db.stats().weighted_cost(16);

        minimize_vias(&problem, &mut db);
        let report = verify(&problem, &db);
        prop_assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "via pass broke legality: {report}"
        );
        if complete_before {
            prop_assert!(db.stats().weighted_cost(16) <= before);
        }
    }
}
