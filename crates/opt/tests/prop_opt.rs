//! Property-style tests of the optimization passes: on arbitrary routed
//! instances the passes never worsen the objective, never break
//! legality, and reach a fixpoint. Instances come from the deterministic
//! `route_benchdata` generator so the crate builds with zero registry
//! access.

use mighty::{MightyRouter, RouterConfig};
use route_benchdata::gen::SwitchboxGen;
use route_benchdata::rng::SplitMix64;
use route_opt::{cleanup, minimize_vias, OptimizeConfig};
use route_verify::verify;

fn instances(seed: u64, cases: usize) -> Vec<SwitchboxGen> {
    let mut rng = SplitMix64::new(seed);
    (0..cases)
        .map(|_| {
            let side = rng.range(8, 20) as u32;
            let nets = (rng.range(2, 12) as u32).min(side);
            SwitchboxGen { width: side, height: side, nets, seed: rng.below(1000) }
        })
        .collect()
}

#[test]
fn cleanup_never_worsens_and_stays_legal() {
    for cfg in instances(0x0901, 24) {
        let problem = cfg.build();
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let complete_before = out.is_complete();
        let mut db = out.into_db();
        let before = db.stats().weighted_cost(3);

        let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
        let report = verify(&problem, &db);
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "cleanup broke legality: {report}"
        );
        if complete_before {
            // Complete stays complete, and the cost never rises.
            assert!(report.is_clean(), "cleanup disconnected a net: {report}");
            assert!(db.stats().weighted_cost(3) <= before);
        }
        assert_eq!(stats.after, db.stats());

        // A second run finds nothing more (fixpoint).
        let settled = db.stats();
        let again = cleanup(&problem, &mut db, &OptimizeConfig::default());
        assert_eq!(again.improved, 0);
        assert_eq!(db.stats(), settled);
    }
}

/// The via-focused pass guarantees its *weighted objective* never
/// rises (a +1-via, -17-wire trade is a legitimate improvement at
/// via weight 16, so the raw via count alone is not an invariant).
#[test]
fn via_minimisation_never_worsens_its_objective() {
    for cfg in instances(0x0902, 24) {
        let problem = cfg.build();
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let complete_before = out.is_complete();
        let mut db = out.into_db();
        let before = db.stats().weighted_cost(16);

        minimize_vias(&problem, &mut db);
        let report = verify(&problem, &db);
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "via pass broke legality: {report}"
        );
        if complete_before {
            assert!(db.stats().weighted_cost(16) <= before);
        }
    }
}
