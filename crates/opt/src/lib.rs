//! Post-routing optimization passes.
//!
//! A completed routing is rarely minimal: rip-up and reroute leaves
//! detours behind (a pushed net keeps its detour even after the
//! pressure that caused it is gone), and sequential routing locks in
//! whatever order-dependent paths it found first. This crate improves a
//! finished [`RouteDb`] by **selective
//! re-routing**: each net in turn is lifted and re-routed through the
//! now-final wiring of all other nets, and the new path is kept only if
//! it improves the weighted objective. The pass repeats until a
//! fixpoint (or the pass budget) is reached.
//!
//! Two convenience entry points share the machinery:
//!
//! * [`cleanup`] — minimise wirelength with the standard via weight;
//! * [`minimize_vias`] — weight vias heavily, trading wirelength for
//!   via count (the classic via-minimisation post-pass).
//!
//! The pass never makes things worse: a candidate that fails to route
//! or fails to improve is rolled back exactly.
//!
//! # Examples
//!
//! ```
//! use route_benchdata::gen::SwitchboxGen;
//! use mighty::{MightyRouter, RouterConfig};
//! use route_opt::{cleanup, OptimizeConfig};
//! use route_verify::verify;
//!
//! let problem = SwitchboxGen { width: 12, height: 10, nets: 8, seed: 3 }.build();
//! let outcome = MightyRouter::new(RouterConfig::default()).route(&problem);
//! let mut db = outcome.into_db();
//!
//! let before = db.stats();
//! let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
//! assert!(db.stats().wirelength <= before.wirelength);
//! assert!(stats.passes >= 1);
//! assert!(verify(&problem, &db).is_clean());
//! ```

#![warn(missing_docs)]

use route_maze::sequential::connect_net_seeded;
use route_maze::CostModel;
#[cfg(test)]
use route_model::Step;
use route_model::{NetId, Problem, RouteDb, RouteStats, Trace};

/// Configuration of the re-routing passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeConfig {
    /// Path-search cost weights used for the replacement routes.
    pub cost: CostModel,
    /// Weight of one via against one wire cell in the accept/reject
    /// objective.
    pub via_weight: u64,
    /// Maximum number of full passes over the nets.
    pub max_passes: u32,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig { cost: CostModel::default(), via_weight: 3, max_passes: 4 }
    }
}

impl OptimizeConfig {
    /// A configuration that minimises vias first and wirelength second.
    pub fn via_focused() -> Self {
        OptimizeConfig {
            cost: CostModel { via: 16, ..CostModel::default() },
            via_weight: 16,
            max_passes: 4,
        }
    }
}

/// Outcome of an optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Database statistics before the first pass.
    pub before: RouteStats,
    /// Database statistics after the last pass.
    pub after: RouteStats,
    /// Number of accepted (improving) net re-routes across all passes.
    pub improved: usize,
    /// Passes executed (at least 1).
    pub passes: u32,
}

impl PassStats {
    /// Weighted objective saved by the run.
    pub fn saved(&self, via_weight: u64) -> u64 {
        self.before.weighted_cost(via_weight).saturating_sub(self.after.weighted_cost(via_weight))
    }
}

/// Weighted cost of one net's current wiring.
fn net_cost(db: &RouteDb, net: NetId, via_weight: u64) -> u64 {
    let wire = db.slot_count(net).saturating_sub(db.pins(net).len()) as u64;
    wire + via_weight * db.via_count(net) as u64
}

/// Re-routes one net from scratch through the current database with the
/// hard search. On failure nothing stays committed (partial commits are
/// rolled back here).
fn reroute_net(db: &mut RouteDb, net: NetId, cost: CostModel) -> Option<()> {
    match connect_net_seeded(db, net, cost, Vec::new()) {
        Ok(_) => Some(()),
        Err((ids, _)) => {
            for id in ids {
                db.rip_up(id);
            }
            None
        }
    }
}

/// Runs improving re-route passes over the nets of `problem` until no
/// net improves or the pass budget is exhausted.
///
/// Nets that are incomplete in `db` are re-routed opportunistically: if
/// the fresh route cannot connect them either, their previous partial
/// wiring is restored unchanged. The database is never left worse than
/// it was — every rejected candidate is rolled back exactly.
pub fn optimize(problem: &Problem, db: &mut RouteDb, cfg: &OptimizeConfig) -> PassStats {
    let before = db.stats();
    let mut improved_total = 0usize;
    let mut passes = 0u32;
    while passes < cfg.max_passes {
        passes += 1;
        let mut improved_this_pass = 0usize;

        // Most expensive nets first: they have the most slack to give.
        let mut order: Vec<NetId> = problem.nets().iter().map(|n| n.id).collect();
        order.sort_by_key(|&id| std::cmp::Reverse(net_cost(db, id, cfg.via_weight)));

        for net in order {
            let old_cost = net_cost(db, net, cfg.via_weight);
            if old_cost == 0 {
                continue; // nothing to improve (or pin-only net)
            }
            let was_complete = db.is_net_connected(net);
            let old_traces = db.rip_up_net(net);
            if old_traces.is_empty() {
                continue;
            }
            let restore = |db: &mut RouteDb, traces: Vec<Trace>| {
                for t in traces {
                    db.commit(net, t).expect("restoring previous wiring succeeds");
                }
            };
            match reroute_net(db, net, cfg.cost) {
                Some(()) => {
                    let new_cost = net_cost(db, net, cfg.via_weight);
                    // A re-route that completes a previously broken net
                    // is always an improvement; otherwise it must win on
                    // the weighted objective.
                    if !was_complete || new_cost < old_cost {
                        improved_this_pass += 1;
                    } else {
                        db.rip_up_net(net);
                        restore(db, old_traces);
                    }
                }
                None => restore(db, old_traces),
            }
        }
        improved_total += improved_this_pass;
        if improved_this_pass == 0 {
            break;
        }
    }
    PassStats { before, after: db.stats(), improved: improved_total, passes }
}

/// Wirelength-focused cleanup with the given configuration's weights.
///
/// Equivalent to [`optimize`]; provided as the conventional entry point.
pub fn cleanup(problem: &Problem, db: &mut RouteDb, cfg: &OptimizeConfig) -> PassStats {
    optimize(problem, db, cfg)
}

/// Via-minimisation pass: re-routes with heavily weighted vias.
pub fn minimize_vias(problem: &Problem, db: &mut RouteDb) -> PassStats {
    optimize(problem, db, &OptimizeConfig::via_focused())
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::{Layer, Point};
    use route_model::{PinSide, ProblemBuilder};
    use route_verify::verify;

    /// A net routed with a gratuitous detour that cleanup must remove.
    fn detoured_db() -> (Problem, RouteDb) {
        let mut b = ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let problem = b.build().expect("valid");
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        // Staircase detour: along row 1 to x=3, up to row 4, across, back down.
        let mut steps = Vec::new();
        for x in 0..=3 {
            steps.push(Step::new(Point::new(x, 1), Layer::M1));
        }
        steps.push(Step::new(Point::new(3, 1), Layer::M2));
        for y in 2..=4 {
            steps.push(Step::new(Point::new(3, y), Layer::M2));
        }
        steps.push(Step::new(Point::new(3, 4), Layer::M1));
        steps.push(Step::new(Point::new(4, 4), Layer::M1));
        steps.push(Step::new(Point::new(4, 4), Layer::M2));
        for y in (1..=3).rev() {
            steps.push(Step::new(Point::new(4, y), Layer::M2));
        }
        steps.push(Step::new(Point::new(4, 1), Layer::M1));
        for x in 5..8 {
            steps.push(Step::new(Point::new(x, 1), Layer::M1));
        }
        db.commit(net, Trace::from_steps(steps).expect("contiguous")).expect("commits");
        (problem, db)
    }

    #[test]
    fn cleanup_straightens_detours() {
        let (problem, mut db) = detoured_db();
        let before = db.stats();
        let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
        let after = db.stats();
        assert!(after.wirelength < before.wirelength, "{before:?} -> {after:?}");
        assert_eq!(after.vias, 0, "straight path needs no vias");
        assert_eq!(stats.improved, 1);
        assert!(stats.saved(3) > 0);
        assert!(verify(&problem, &db).is_clean());
    }

    #[test]
    fn optimize_is_idempotent_at_fixpoint() {
        let (problem, mut db) = detoured_db();
        cleanup(&problem, &mut db, &OptimizeConfig::default());
        let settled = db.stats();
        let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
        assert_eq!(db.stats(), settled);
        assert_eq!(stats.improved, 0);
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn incomplete_nets_left_alone() {
        let mut b = ProblemBuilder::switchbox(6, 6);
        b.net("open").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let problem = b.build().expect("valid");
        let mut db = RouteDb::new(&problem);
        // No wiring at all: nothing to do, nothing to break.
        let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
        assert_eq!(stats.improved, 0);
        assert_eq!(db.stats().wirelength, 0);
    }

    #[test]
    fn via_minimisation_trades_wire_for_vias() {
        // A net whose shortest path uses vias but which has a via-free
        // (longer, wrong-way) alternative.
        let mut b = ProblemBuilder::switchbox(4, 8);
        b.net("v").pin_at(Point::new(1, 0), Layer::M1).pin_at(Point::new(1, 7), Layer::M1);
        let problem = b.build().expect("valid");
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        // Default routing vias up to M2 for the vertical run.
        let mut steps = vec![Step::new(Point::new(1, 0), Layer::M1)];
        steps.push(Step::new(Point::new(1, 0), Layer::M2));
        steps.extend((1..=7).map(|y| Step::new(Point::new(1, y), Layer::M2)));
        steps.push(Step::new(Point::new(1, 7), Layer::M1));
        db.commit(net, Trace::from_steps(steps).expect("contiguous")).expect("commits");
        assert_eq!(db.stats().vias, 2);

        let stats = minimize_vias(&problem, &mut db);
        assert_eq!(db.stats().vias, 0, "{stats:?}");
        assert!(verify(&problem, &db).is_clean());
    }

    #[test]
    fn never_worse_on_routed_instances() {
        use mighty::{MightyRouter, RouterConfig};
        use route_benchdata::gen::SwitchboxGen;
        for seed in 0..6 {
            let problem = SwitchboxGen { width: 12, height: 12, nets: 12, seed }.build();
            let out = MightyRouter::new(RouterConfig::default()).route(&problem);
            let mut db = out.into_db();
            let before = db.stats().weighted_cost(3);
            cleanup(&problem, &mut db, &OptimizeConfig::default());
            let after = db.stats().weighted_cost(3);
            assert!(after <= before, "seed {seed}: {before} -> {after}");
            let report = verify(&problem, &db);
            assert!(report.is_clean() || report.is_legal_but_incomplete(), "seed {seed}: {report}");
        }
    }
}
