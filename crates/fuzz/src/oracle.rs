//! Cross-router correctness oracles.
//!
//! Every fuzz instance is routed through the whole
//! [`DetailedRouter`](route_model::DetailedRouter) roster and judged by
//! two independent oracles:
//!
//! 1. **DRC / claim oracle** — the [`route_verify::verify`] report,
//!    which recomputes occupancy from scratch, must contain no
//!    shorts/obstacle/via/grid violations for *any* successful result,
//!    and the router's claimed failed-net set must equal the set of nets
//!    the verifier finds disconnected. A router that claims a net is
//!    routed while its pins are not electrically connected is lying.
//! 2. **Differential oracle** — the rip-up router is compared against
//!    the sequential Lee baseline: any instance the no-modification
//!    baseline completes, the strictly-more-capable rip-up router must
//!    complete too. On top of that, observed runs must be inert
//!    (bit-identical databases with and without an observer) and the
//!    event stream must balance against the claimed outcome — the
//!    observer-consistency contract established by the observability
//!    layer.
//! 3. **Infeasibility soundness oracle** — the static analyzer
//!    ([`route_analyze::analyze_problem`]) runs on every instance. Each
//!    [`InfeasibilityCertificate`](route_analyze::InfeasibilityCertificate)
//!    it emits must replay (its witness must re-derive), and no router
//!    may ever *complete* an instance carrying a certificate: a proof
//!    of infeasibility coexisting with a complete routing means the
//!    analyzer is unsound, which is strictly worse than being weak.
//! 4. **Chip-stitch oracle** — every instance is also routed through
//!    the hierarchical chip flow (`route_global`) with small tiles: the
//!    stitched database must be DRC-clean, its failed set must match
//!    recomputed connectivity, its seam rip-up stats must equal the
//!    strong-ripup events the observer actually saw, and it must never
//!    lose an instance the flat rip-up router completes.

use std::collections::BTreeSet;
use std::fmt;

use mighty::{RecoveryPath, RetryPolicy, RouterConfig, SupervisedOutcome, Supervisor};
use route_model::{NetId, Problem, RouteError, RouteEvent, RouteResult};
use route_verify::{verify, Violation};

/// Classification of an oracle violation — the vocabulary the shrinker
/// preserves while minimizing a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// A successful result contains shorts, obstacle overlaps, bad vias
    /// or grid/trace mismatches.
    Drc,
    /// The claimed failed-net set disagrees with recomputed
    /// connectivity (includes "claimed complete but disconnected").
    ClaimMismatch,
    /// The sequential baseline completed an instance the rip-up router
    /// did not.
    CompletionRegression,
    /// Attaching an observer changed the result (checksum, failed set,
    /// or success/error status).
    ObservationDivergence,
    /// The observer event stream does not balance against the claimed
    /// outcome.
    EventInconsistency,
    /// A router panicked, or a core router returned an unexpected
    /// structured error.
    RouterError,
    /// The static analyzer issued an infeasibility certificate that
    /// does not replay, or one that coexists with a completed route.
    Infeasibility,
    /// A supervised run salvaged a partial database that violates the
    /// lint registry, claims completion, or is nondeterministic.
    Salvage,
    /// The grid's packed occupancy bit plane disagrees with its cell
    /// array — the two representations desynchronized.
    OccupancyDesync,
    /// The rip-up router produced different wiring under the bucket
    /// and binary-heap frontiers; they are defined to pop identically.
    FrontierDivergence,
    /// The hierarchical chip flow (tile planning, per-tile detail,
    /// seam stitching) produced an illegal database, lied about its
    /// failed nets or its rip-up accounting, lost to the flat router,
    /// or panicked.
    ChipStitch,
    /// The chip-scale analyzer issued a certificate (F004–F006) that
    /// does not replay, or one that coexists with a verifier-complete
    /// route — flat or hierarchical.
    ChipAnalysis,
    /// The supervised chip flow (per-tile retry/fallback/salvage)
    /// produced an illegal database, lied about its failed nets, kept
    /// inconsistent recovery counters, was nondeterministic across
    /// worker counts, or panicked.
    ChipSalvage,
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OracleKind::Drc => "drc",
            OracleKind::ClaimMismatch => "claim-mismatch",
            OracleKind::CompletionRegression => "completion-regression",
            OracleKind::ObservationDivergence => "observation-divergence",
            OracleKind::EventInconsistency => "event-inconsistency",
            OracleKind::RouterError => "router-error",
            OracleKind::Infeasibility => "infeasibility",
            OracleKind::Salvage => "salvage",
            OracleKind::OccupancyDesync => "occupancy-desync",
            OracleKind::FrontierDivergence => "frontier-divergence",
            OracleKind::ChipStitch => "chip-stitch",
            OracleKind::ChipAnalysis => "chip-analysis",
            OracleKind::ChipSalvage => "chip-salvage",
        };
        f.write_str(name)
    }
}

/// One concrete oracle violation on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// What class of invariant broke.
    pub kind: OracleKind,
    /// The router that produced the offending result.
    pub router: String,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.router, self.detail)
    }
}

/// Everything the oracles need about one router's runs on one instance.
#[derive(Debug, Clone)]
pub struct RouterRun {
    /// Router name ([`DetailedRouter::name`]).
    ///
    /// [`DetailedRouter::name`]: route_model::DetailedRouter::name
    pub name: String,
    /// Result of the unobserved run.
    pub plain: RouteResult,
    /// Result of the observed (event-logged) run.
    pub observed: RouteResult,
    /// Event stream of the observed run.
    pub events: Vec<RouteEvent>,
}

/// All runs of one instance through the roster.
#[derive(Debug, Clone)]
pub struct InstanceRuns {
    /// The rip-up/reroute router (system under test).
    pub ripup: RouterRun,
    /// The sequential Lee baseline (differential reference).
    pub lee: RouterRun,
    /// Remaining roster results (channel adapters, switchbox sweep),
    /// unobserved: `(router name, result)`.
    pub extras: Vec<(String, RouteResult)>,
    /// The rip-up router re-run with the binary-heap frontier (the
    /// default is the bucket queue); `None` under fault injection.
    /// Both frontiers are defined to pop identically, so this must
    /// match `ripup.plain` bit for bit.
    pub ripup_heap: Option<RouteResult>,
}

/// Applies every oracle to one instance, returning all violations found
/// (empty = the instance passes).
pub fn check_instance(problem: &Problem, runs: &InstanceRuns) -> Vec<OracleViolation> {
    let mut out = Vec::new();

    for run in [&runs.ripup, &runs.lee] {
        check_core_result(problem, &run.name, &run.plain, &mut out);
        check_observation(run, &mut out);
        if let Ok(routing) = &run.observed {
            check_events(problem, &run.name, &run.events, &routing.failed, &mut out);
        }
    }
    for (name, result) in &runs.extras {
        check_extra_result(problem, name, result, &mut out);
    }

    // Differential completion: the no-modification baseline must never
    // beat the rip-up router on an instance.
    if let (Ok(ripup), Ok(lee)) = (&runs.ripup.plain, &runs.lee.plain) {
        if lee.is_complete() && !ripup.is_complete() {
            out.push(OracleViolation {
                kind: OracleKind::CompletionRegression,
                router: runs.ripup.name.clone(),
                detail: format!(
                    "sequential baseline completed all {} nets but rip-up failed {:?}",
                    problem.nets().len(),
                    ripup.failed
                ),
            });
        }
    }

    check_frontier_parity(runs, &mut out);
    check_infeasibility(problem, runs, &mut out);
    check_salvage(problem, &mut out);
    check_chip_stitch(problem, runs, &mut out);
    check_chip_analysis(problem, runs, &mut out);
    check_chip_salvage(problem, &mut out);
    out
}

/// Supervised-chip oracle: the hierarchical flow under a starved router
/// budget and per-tile supervision (retry + salvage, no fallback so
/// salvage actually fires) must stay honest — DRC-clean database, a
/// failed set matching recomputed connectivity, recovery counters that
/// add up, and a bit-identical result at any worker count.
fn check_chip_salvage(problem: &Problem, out: &mut Vec<OracleViolation>) {
    let Ok(starved) = RouterConfig::builder().max_attempts(1).max_events(8).build() else {
        return;
    };
    let sup =
        route_global::ChipSupervision { retries: 1, fallback: false, seed: 0x5eed, fault: None };
    let mut broken = |kind: OracleKind, detail: String| {
        out.push(OracleViolation { kind, router: "supervised-chip".to_string(), detail });
    };
    let route = |jobs: usize| {
        let cfg = route_global::GlobalConfig {
            tile: 8,
            router: starved,
            jobs,
            fallback: false,
            ..route_global::GlobalConfig::default()
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            route_global::route_hierarchical_supervised(problem, &cfg, &sup, None)
        }))
    };
    let outcome = match route(1) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            broken(OracleKind::ChipSalvage, format!("supervised chip flow panicked: {message}"));
            return;
        }
    };

    // DRC + claim honesty: salvaged tiles put real partial metal in the
    // database, and every unconnected net must still be declared.
    let report = verify(problem, outcome.db());
    let mut disconnected: BTreeSet<NetId> = BTreeSet::new();
    let mut drc: Vec<String> = Vec::new();
    for v in report.violations() {
        match v {
            Violation::Disconnected { net, .. } => {
                disconnected.insert(*net);
            }
            other => drc.push(other.to_string()),
        }
    }
    if !drc.is_empty() {
        broken(
            OracleKind::ChipSalvage,
            format!(
                "supervised database breaks DRC: {} violation(s), first: {}",
                drc.len(),
                drc[0]
            ),
        );
    }
    let claimed: BTreeSet<NetId> = outcome.failed().iter().copied().collect();
    if claimed != disconnected {
        broken(
            OracleKind::ChipSalvage,
            format!(
                "claimed failed nets {:?} but verifier finds {:?} disconnected",
                claimed.iter().map(|n| n.0).collect::<Vec<_>>(),
                disconnected.iter().map(|n| n.0).collect::<Vec<_>>()
            ),
        );
    }

    // Counter consistency: every recovered tile is a routed tile, and
    // no tile takes more than one recovery path.
    let chip = outcome.chip_stats();
    let recovered = chip.tiles_retried + chip.tiles_fell_back + chip.tiles_salvaged;
    if recovered > chip.tiles_routed {
        broken(
            OracleKind::ChipSalvage,
            format!(
                "{} recovered tiles exceed {} routed tiles ({:?})",
                recovered, chip.tiles_routed, chip
            ),
        );
    }

    // Worker-count determinism: the supervised recovery chain is seeded
    // per tile, so jobs must be checksum-inert like the plain flow.
    if let Ok(two) = route(2) {
        if outcome.db().checksum() != two.db().checksum()
            || outcome.failed() != two.failed()
            || outcome.chip_stats() != two.chip_stats()
        {
            broken(
                OracleKind::ChipSalvage,
                format!(
                    "supervised chip flow is jobs-dependent: checksum {:016x} vs {:016x}, \
                     failed {:?} vs {:?}",
                    outcome.db().checksum(),
                    two.db().checksum(),
                    outcome.failed(),
                    two.failed()
                ),
            );
        }
    }
}

/// Hierarchical-flow oracle: every instance is also routed through the
/// chip-scale pipeline (small tiles force real crossings and seams even
/// at fuzz scale). The stitched database must be DRC-clean, the failed
/// set must match recomputed connectivity, the claimed seam rip-up
/// count must equal the strong-ripup events actually observed, and —
/// since the flow ends in the same flat incremental router — an
/// instance the flat rip-up router completes must complete
/// hierarchically too.
fn check_chip_stitch(problem: &Problem, runs: &InstanceRuns, out: &mut Vec<OracleViolation>) {
    let cfg = route_global::GlobalConfig { tile: 8, ..route_global::GlobalConfig::default() };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut log = route_model::EventLog::new();
        let outcome = route_global::route_hierarchical_observed(problem, &cfg, &mut log);
        (outcome, log)
    }));
    let mut broken = |kind: OracleKind, detail: String| {
        out.push(OracleViolation { kind, router: "hierarchical".to_string(), detail });
    };
    let (outcome, log) = match run {
        Ok(pair) => pair,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            broken(OracleKind::ChipStitch, format!("hierarchical flow panicked: {message}"));
            return;
        }
    };

    // DRC + claim honesty, against recomputed occupancy.
    let report = verify(problem, outcome.db());
    let mut disconnected: BTreeSet<NetId> = BTreeSet::new();
    let mut drc: Vec<String> = Vec::new();
    for v in report.violations() {
        match v {
            Violation::Disconnected { net, .. } => {
                disconnected.insert(*net);
            }
            other => drc.push(other.to_string()),
        }
    }
    if !drc.is_empty() {
        broken(
            OracleKind::ChipStitch,
            format!("stitched database breaks DRC: {} violation(s), first: {}", drc.len(), drc[0]),
        );
    }
    let claimed: BTreeSet<NetId> = outcome.failed().iter().copied().collect();
    if claimed != disconnected {
        broken(
            OracleKind::ChipStitch,
            format!(
                "claimed failed nets {:?} but verifier finds {:?} disconnected",
                claimed.iter().map(|n| n.0).collect::<Vec<_>>(),
                disconnected.iter().map(|n| n.0).collect::<Vec<_>>()
            ),
        );
    }

    // Rip-up accounting honesty: the stats must equal the events.
    let observed_rips = log.count_kind("strong_ripup");
    if outcome.chip_stats().seam_ripups != observed_rips {
        broken(
            OracleKind::ChipStitch,
            format!(
                "stats claim {} seam rip-ups but the observer saw {observed_rips}",
                outcome.chip_stats().seam_ripups
            ),
        );
    }

    // Differential completion: the flow falls back to the same flat
    // incremental router, so it must never lose nets the flat router
    // connects from scratch.
    if let Ok(flat) = &runs.ripup.plain {
        if flat.is_complete() && !outcome.is_complete() {
            broken(
                OracleKind::ChipStitch,
                format!(
                    "flat rip-up completed all {} nets but the hierarchical flow failed {:?}",
                    problem.nets().len(),
                    outcome.failed()
                ),
            );
        }
    }
}

/// Chip-analysis soundness oracle: every certificate issued by the
/// chip-scale pass (F004 tile-cut, F005 seam, F006 walled region) must
/// replay against the instance, and since each one proves at least one
/// net unroutable by *any* router, no certificate may coexist with a
/// verifier-complete result — from the flat routers or from the
/// hierarchical flow itself.
fn check_chip_analysis(problem: &Problem, runs: &InstanceRuns, out: &mut Vec<OracleViolation>) {
    let report = route_analyze::analyze_chip(problem, 8);
    let certificates = report.certificates();
    if certificates.is_empty() {
        return;
    }
    for cert in certificates {
        if !cert.replay(problem) {
            out.push(OracleViolation {
                kind: OracleKind::ChipAnalysis,
                router: "chip-analyzer".to_string(),
                detail: format!("chip certificate does not replay: {}", cert.summary()),
            });
        }
    }
    let proof = certificates[0].summary();
    let completed = |name: &str, result: &RouteResult, out: &mut Vec<OracleViolation>| {
        if let Ok(routing) = result {
            if routing.is_complete() {
                out.push(OracleViolation {
                    kind: OracleKind::ChipAnalysis,
                    router: name.to_string(),
                    detail: format!("completed a chip-certified-infeasible instance ({proof})"),
                });
            }
        }
    };
    for run in [&runs.ripup, &runs.lee] {
        completed(&run.name, &run.plain, out);
        completed(&run.name, &run.observed, out);
    }
    for (name, result) in &runs.extras {
        completed(name, result, out);
    }
    // The certificate is a claim about the instance, not about any one
    // router, so the hierarchical flow must agree with it too.
    let cfg = route_global::GlobalConfig { tile: 8, ..route_global::GlobalConfig::default() };
    let hier = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        route_global::route_hierarchical(problem, &cfg)
    }));
    if let Ok(outcome) = hier {
        if outcome.is_complete() {
            out.push(OracleViolation {
                kind: OracleKind::ChipAnalysis,
                router: "hierarchical".to_string(),
                detail: format!("completed a chip-certified-infeasible instance ({proof})"),
            });
        }
    }
}

/// Frontier equivalence oracle: the bucket-queue and binary-heap
/// frontiers pop in the same order by construction, so the rip-up
/// router must produce bit-identical wiring (and the same failed set)
/// under either one.
fn check_frontier_parity(runs: &InstanceRuns, out: &mut Vec<OracleViolation>) {
    let Some(heap) = &runs.ripup_heap else { return };
    let mut diverged = |detail: String| {
        out.push(OracleViolation {
            kind: OracleKind::FrontierDivergence,
            router: runs.ripup.name.clone(),
            detail,
        });
    };
    match (&runs.ripup.plain, heap) {
        (Ok(buckets), Ok(heap)) => {
            if buckets.db.checksum() != heap.db.checksum() {
                diverged(format!(
                    "bucket checksum {:016x} != heap checksum {:016x}",
                    buckets.db.checksum(),
                    heap.db.checksum()
                ));
            } else if buckets.failed != heap.failed {
                diverged(format!(
                    "bucket failed set {:?} != heap {:?}",
                    buckets.failed, heap.failed
                ));
            }
        }
        (Err(_), Err(_)) => {}
        (buckets, heap) => diverged(format!(
            "bucket run {} but heap run {}",
            if buckets.is_ok() { "succeeded" } else { "errored" },
            if heap.is_ok() { "succeeded" } else { "errored" }
        )),
    }
}

/// Salvage soundness oracle: a budget-starved supervised run — harsh
/// enough that most nontrivial instances end in salvage — must only
/// ever salvage partial databases that pass the lint registry, honestly
/// declare their unconnected nets, and route deterministically.
fn check_salvage(problem: &Problem, out: &mut Vec<OracleViolation>) {
    let Ok(starved) = RouterConfig::builder().max_attempts(1).max_events(8).build() else {
        return;
    };
    let sup = Supervisor::new(starved, RetryPolicy::with_retries(1));
    let outcome = sup.route_supervised(problem, 0, None);
    check_salvage_outcome(problem, &outcome, out);

    // Determinism: the whole recovery chain (escalation, order
    // perturbation, snapshot choice) must replay identically.
    let again = sup.route_supervised(problem, 0, None);
    let key = |o: &SupervisedOutcome| {
        let checksum = match &o.result {
            Some(Ok(routing)) => routing.db.checksum(),
            _ => 0,
        };
        (o.path.encode(), o.attempts, checksum)
    };
    if key(&outcome) != key(&again) {
        out.push(OracleViolation {
            kind: OracleKind::Salvage,
            router: "supervisor".to_string(),
            detail: format!(
                "supervised run is nondeterministic: {:?} then {:?}",
                key(&outcome),
                key(&again)
            ),
        });
    }
}

/// The per-outcome half of the salvage oracle, split out so tests can
/// feed it doctored outcomes.
pub(crate) fn check_salvage_outcome(
    problem: &Problem,
    outcome: &SupervisedOutcome,
    out: &mut Vec<OracleViolation>,
) {
    if outcome.path != RecoveryPath::Salvaged {
        return;
    }
    let mut salvage_violation = |detail: String| {
        out.push(OracleViolation {
            kind: OracleKind::Salvage,
            router: "supervisor".to_string(),
            detail,
        });
    };
    if outcome.status() == mighty::InstanceStatus::Complete {
        salvage_violation("a salvaged outcome reports status complete".to_string());
    }
    let routing = match &outcome.result {
        Some(Ok(routing)) => routing,
        other => {
            salvage_violation(format!("salvaged outcome carries no routing: {other:?}"));
            return;
        }
    };
    // Without a deadline in play, the only honest salvage is an
    // incomplete one: an empty failed set is a completion claim.
    if routing.failed.is_empty() {
        salvage_violation(
            "salvage declares no failed nets — that is a completion claim".to_string(),
        );
    }
    let lint = route_analyze::lint_salvage(problem, &routing.db, &routing.failed);
    if !lint.is_legal() {
        let first = lint
            .diagnostics()
            .first()
            .map(|d| d.message.clone())
            .unwrap_or_else(|| "unknown finding".to_string());
        salvage_violation(format!(
            "salvaged database violates the lint registry ({} finding(s), first: {first})",
            lint.findings().len()
        ));
    }
    if let Some(info) = &outcome.salvage {
        let declared = info.connected + routing.failed.len();
        if declared != problem.nets().len() {
            salvage_violation(format!(
                "salvage accounting is inconsistent: {} connected + {} failed != {} nets",
                info.connected,
                routing.failed.len(),
                problem.nets().len()
            ));
        }
        if !info.lint.is_legal() {
            salvage_violation("salvage shipped with an illegal lint report attached".to_string());
        }
    } else {
        salvage_violation("salvaged outcome is missing its salvage info".to_string());
    }
}

/// Infeasibility soundness: every certificate the analyzer emits must
/// replay, and none may coexist with a completed route on the instance.
fn check_infeasibility(problem: &Problem, runs: &InstanceRuns, out: &mut Vec<OracleViolation>) {
    let feasibility = route_analyze::analyze_problem(problem);
    let certificates = feasibility.certificates();
    if certificates.is_empty() {
        return;
    }
    for cert in certificates {
        if !cert.replay(problem) {
            out.push(OracleViolation {
                kind: OracleKind::Infeasibility,
                router: "analyzer".to_string(),
                detail: format!("certificate does not replay: {}", cert.summary()),
            });
        }
    }
    let proof = certificates[0].summary();
    let completed = |name: &str, result: &RouteResult, out: &mut Vec<OracleViolation>| {
        if let Ok(routing) = result {
            if routing.is_complete() {
                out.push(OracleViolation {
                    kind: OracleKind::Infeasibility,
                    router: name.to_string(),
                    detail: format!("completed a provably-infeasible instance ({proof})"),
                });
            }
        }
    };
    for run in [&runs.ripup, &runs.lee] {
        completed(&run.name, &run.plain, out);
        completed(&run.name, &run.observed, out);
    }
    for (name, result) in &runs.extras {
        completed(name, result, out);
    }
}

/// DRC/claim checks for a core (differential-pair) router: any error at
/// all is a violation — these routers handle every grid problem.
fn check_core_result(
    problem: &Problem,
    name: &str,
    result: &RouteResult,
    out: &mut Vec<OracleViolation>,
) {
    match result {
        Ok(routing) => check_routing(problem, name, routing, out),
        Err(e) => out.push(OracleViolation {
            kind: OracleKind::RouterError,
            router: name.to_string(),
            detail: format!("core router errored: {e}"),
        }),
    }
}

/// DRC/claim checks for a baseline adapter: structured rejections
/// (unsupported shape, budget, cycles) are legitimate; panics are not.
fn check_extra_result(
    problem: &Problem,
    name: &str,
    result: &RouteResult,
    out: &mut Vec<OracleViolation>,
) {
    match result {
        Ok(routing) => check_routing(problem, name, routing, out),
        Err(RouteError::Panicked { message }) => out.push(OracleViolation {
            kind: OracleKind::RouterError,
            router: name.to_string(),
            detail: format!("panicked: {message}"),
        }),
        Err(_) => {}
    }
}

/// Verifies a successful routing: no DRC violations, and the claimed
/// failed set must equal the recomputed disconnected set.
fn check_routing(
    problem: &Problem,
    name: &str,
    routing: &route_model::Routing,
    out: &mut Vec<OracleViolation>,
) {
    if !routing.db.grid().debug_validate_bits() {
        out.push(OracleViolation {
            kind: OracleKind::OccupancyDesync,
            router: name.to_string(),
            detail: "occupancy bit plane disagrees with the cell array".to_string(),
        });
    }
    let report = verify(problem, &routing.db);
    let mut disconnected: BTreeSet<NetId> = BTreeSet::new();
    let mut drc: Vec<String> = Vec::new();
    for v in report.violations() {
        match v {
            Violation::Disconnected { net, .. } => {
                disconnected.insert(*net);
            }
            other => drc.push(other.to_string()),
        }
    }
    if !drc.is_empty() {
        out.push(OracleViolation {
            kind: OracleKind::Drc,
            router: name.to_string(),
            detail: format!("{} rule violation(s), first: {}", drc.len(), drc[0]),
        });
    }
    let claimed: BTreeSet<NetId> = routing.failed.iter().copied().collect();
    if claimed != disconnected {
        out.push(OracleViolation {
            kind: OracleKind::ClaimMismatch,
            router: name.to_string(),
            detail: format!(
                "claimed failed nets {:?} but verifier finds {:?} disconnected",
                claimed.iter().map(|n| n.0).collect::<Vec<_>>(),
                disconnected.iter().map(|n| n.0).collect::<Vec<_>>()
            ),
        });
    }
}

/// Observation inertness: the observed and unobserved runs must agree
/// bit for bit.
fn check_observation(run: &RouterRun, out: &mut Vec<OracleViolation>) {
    let mut diverged = |detail: String| {
        out.push(OracleViolation {
            kind: OracleKind::ObservationDivergence,
            router: run.name.clone(),
            detail,
        });
    };
    match (&run.plain, &run.observed) {
        (Ok(plain), Ok(observed)) => {
            if plain.db.checksum() != observed.db.checksum() {
                diverged(format!(
                    "observed checksum {:016x} != unobserved {:016x}",
                    observed.db.checksum(),
                    plain.db.checksum()
                ));
            } else if plain.failed != observed.failed {
                diverged(format!(
                    "observed failed set {:?} != unobserved {:?}",
                    observed.failed, plain.failed
                ));
            }
        }
        (Err(_), Err(_)) => {}
        (plain, observed) => diverged(format!(
            "unobserved run {} but observed run {}",
            if plain.is_ok() { "succeeded" } else { "errored" },
            if observed.is_ok() { "succeeded" } else { "errored" }
        )),
    }
}

/// Event-stream/claim consistency (the observability-layer contract):
/// every net is scheduled, schedules balance against terminal events,
/// and terminal failure events match the claimed failed list.
fn check_events(
    problem: &Problem,
    name: &str,
    events: &[RouteEvent],
    claimed_failed: &[NetId],
    out: &mut Vec<OracleViolation>,
) {
    let mut broken = |detail: String| {
        out.push(OracleViolation {
            kind: OracleKind::EventInconsistency,
            router: name.to_string(),
            detail,
        });
    };
    // Per-net accounting. A rip-up router may schedule the same net
    // many times (stuck attempts re-enqueue without a terminal event,
    // ripped victims get re-routed and re-committed) and a best-state
    // rollback can make the final failed claim smaller than the failure
    // events seen along the way — so the sound invariants are the
    // inequalities, not the naive one-terminal-per-net balance.
    let mut scheduled: std::collections::BTreeMap<NetId, u64> = std::collections::BTreeMap::new();
    let mut terminals: std::collections::BTreeMap<NetId, u64> = std::collections::BTreeMap::new();
    let mut stray = false;
    for ev in events {
        match *ev {
            RouteEvent::NetScheduled { net } => *scheduled.entry(net).or_default() += 1,
            RouteEvent::NetCommitted { net } | RouteEvent::NetFailed { net } => {
                *terminals.entry(net).or_default() += 1;
                stray |= !scheduled.contains_key(&net);
            }
            RouteEvent::SearchDone { net, .. }
            | RouteEvent::WeakModification { net, .. }
            | RouteEvent::StrongRipup { net, .. } => stray |= !scheduled.contains_key(&net),
            RouteEvent::PenaltyEscalation { .. } => {}
        }
    }
    if stray {
        broken("search or terminal event for a never-scheduled net".to_string());
    }
    // A router may legitimately skip nets that are trivially connected
    // before any wiring lands (adjacent pins), so scheduling fewer nets
    // than the problem holds is fine — scheduling more is not.
    if scheduled.len() > problem.nets().len() {
        broken(format!(
            "{} distinct nets scheduled, problem has only {}",
            scheduled.len(),
            problem.nets().len()
        ));
    }
    // Only a net the router actually attempted can end up failed.
    if let Some(net) = claimed_failed.iter().find(|n| !scheduled.contains_key(n)) {
        broken(format!("net {} claimed failed but never scheduled", net.0));
    }
    // Every terminal event concludes one scheduled attempt.
    for (net, count) in &terminals {
        let attempts = scheduled.get(net).copied().unwrap_or(0);
        if *count > attempts {
            broken(format!(
                "net {} has {count} terminal events for {attempts} schedule events",
                net.0
            ));
        }
    }
}

/// The distinct violation kinds in a finding, ascending.
pub fn kinds_of(violations: &[OracleViolation]) -> BTreeSet<OracleKind> {
    violations.iter().map(|v| v.kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::route_instance;
    use crate::fault::Fault;
    use crate::RouterSet;
    use route_benchdata::gen::SwitchboxGen;

    fn runs_for(problem: &Problem, fault: Option<Fault>) -> InstanceRuns {
        route_instance(problem, &RouterSet::standard(fault), 1)
    }

    #[test]
    fn honest_routers_pass_every_oracle() {
        let problem = SwitchboxGen { width: 10, height: 8, nets: 5, seed: 4 }.build();
        let runs = runs_for(&problem, None);
        let violations = check_instance(&problem, &runs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn hidden_failures_trip_the_claim_oracle() {
        // A switchbox the sequential baseline cannot finish, routed with
        // the failure-hiding fault: the claim oracle must fire for any
        // router that actually failed a net.
        let problem = SwitchboxGen { width: 12, height: 10, nets: 12, seed: 23 }.build();
        let runs = runs_for(&problem, Some(Fault::HideFailures));
        // The fault wraps only the rip-up router, which completes this
        // instance — so force the issue with a drop-trace fault instead.
        let _ = runs;
        let runs = runs_for(&problem, Some(Fault::DropTrace));
        let violations = check_instance(&problem, &runs);
        assert!(
            kinds_of(&violations).contains(&OracleKind::ClaimMismatch),
            "dropped trace must surface as a claim mismatch: {violations:?}"
        );
    }

    #[test]
    fn chip_stitch_oracle_exercises_real_tilings() {
        // Wider than the oracle's 8-cell tiles, so the hierarchical run
        // inside check_instance plans real crossings and seams.
        let problem = SwitchboxGen { width: 20, height: 16, nets: 8, seed: 2 }.build();
        let cfg = route_global::GlobalConfig { tile: 8, ..route_global::GlobalConfig::default() };
        let outcome = route_global::route_hierarchical(&problem, &cfg);
        assert!(outcome.stats().crossings > 0, "the oracle's tiling must not be vacuous");
        let runs = runs_for(&problem, None);
        let violations = check_instance(&problem, &runs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn dishonest_ripup_accounting_would_trip_the_chip_oracle() {
        // The accounting check compares ChipStats against the observed
        // event stream; feed it a mismatching count to prove it bites.
        let problem = SwitchboxGen { width: 20, height: 16, nets: 8, seed: 2 }.build();
        let cfg = route_global::GlobalConfig { tile: 8, ..route_global::GlobalConfig::default() };
        let mut log = route_model::EventLog::new();
        let outcome = route_global::route_hierarchical_observed(&problem, &cfg, &mut log);
        assert_eq!(
            outcome.chip_stats().seam_ripups,
            log.count_kind("strong_ripup"),
            "stats must agree with the forwarded event stream"
        );
    }

    #[test]
    fn infeasible_instances_pass_when_no_router_completes() {
        use route_geom::Point;
        use route_model::{PinSide, ProblemBuilder};
        let mut b = ProblemBuilder::switchbox(6, 5);
        for y in 0..5 {
            b.obstacle(Point::new(3, y));
        }
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let problem = b.build().unwrap();
        assert!(!route_analyze::analyze_problem(&problem).is_feasible());
        let runs = runs_for(&problem, None);
        let violations = check_instance(&problem, &runs);
        assert!(violations.is_empty(), "honest failure on an infeasible case: {violations:?}");
    }

    #[test]
    fn claiming_completion_on_an_infeasible_instance_trips_the_oracle() {
        use route_geom::Point;
        use route_model::{PinSide, ProblemBuilder, RouteDb, Routing};
        let mut b = ProblemBuilder::switchbox(6, 5);
        for y in 0..5 {
            b.obstacle(Point::new(3, y));
        }
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let problem = b.build().unwrap();
        let mut runs = runs_for(&problem, None);
        // Doctor the rip-up result into a lying "complete" claim.
        runs.ripup.plain = Ok(Routing { db: RouteDb::new(&problem), failed: Vec::new() });
        let violations = check_instance(&problem, &runs);
        let kinds = kinds_of(&violations);
        assert!(
            kinds.contains(&OracleKind::Infeasibility),
            "a completed route must never coexist with a certificate: {violations:?}"
        );
        // The independent claim oracle catches the same lie.
        assert!(kinds.contains(&OracleKind::ClaimMismatch));
    }

    #[test]
    fn starved_salvages_pass_the_salvage_oracle() {
        // Dense enough that a starved budget cannot finish: the salvage
        // oracle inside check_instance exercises a real salvage here.
        let problem = SwitchboxGen { width: 12, height: 10, nets: 12, seed: 23 }.build();
        let runs = runs_for(&problem, None);
        let violations = check_instance(&problem, &runs);
        assert!(
            !kinds_of(&violations).contains(&OracleKind::Salvage),
            "honest salvage flagged: {violations:?}"
        );
    }

    #[test]
    fn doctored_salvages_trip_the_salvage_oracle() {
        use mighty::{SalvageInfo, SupervisedOutcome};
        use route_model::{RouteDb, Routing};
        let problem = SwitchboxGen { width: 10, height: 8, nets: 5, seed: 4 }.build();

        // Lie 1: a salvage claiming every net connected (empty failed
        // set) over an empty database.
        let lying = SupervisedOutcome {
            path: mighty::RecoveryPath::Salvaged,
            attempts: 2,
            result: Some(Ok(Routing { db: RouteDb::new(&problem), failed: Vec::new() })),
            salvage: Some(SalvageInfo {
                connected: problem.nets().len(),
                terminal: "doctored".to_string(),
                lint: route_analyze::LintReport::default(),
            }),
        };
        let mut violations = Vec::new();
        super::check_salvage_outcome(&problem, &lying, &mut violations);
        assert!(violations.iter().any(|v| v.detail.contains("completion claim")), "{violations:?}");
        assert!(
            violations.iter().any(|v| v.detail.contains("lint registry")),
            "undeclared disconnections must fail the registry: {violations:?}"
        );

        // Lie 2: declaring only some of the unconnected nets failed.
        let nets: Vec<_> = problem.nets().iter().map(|n| n.id).collect();
        let partial_claim = SupervisedOutcome {
            path: mighty::RecoveryPath::Salvaged,
            attempts: 2,
            result: Some(Ok(Routing { db: RouteDb::new(&problem), failed: nets[1..].to_vec() })),
            salvage: Some(SalvageInfo {
                connected: 1,
                terminal: "doctored".to_string(),
                lint: route_analyze::LintReport::default(),
            }),
        };
        let mut violations = Vec::new();
        super::check_salvage_outcome(&problem, &partial_claim, &mut violations);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == OracleKind::Salvage && v.detail.contains("lint registry")),
            "an undeclared disconnected net must trip the oracle: {violations:?}"
        );
    }

    #[test]
    fn starved_supervised_chips_pass_the_chip_salvage_oracle() {
        // Dense enough that the starved per-tile budget forces retries
        // and salvages; the oracle checks honesty and jobs-inertness.
        let problem = SwitchboxGen { width: 20, height: 16, nets: 10, seed: 23 }.build();
        let mut violations = Vec::new();
        super::check_chip_salvage(&problem, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn kinds_are_ordered_and_printable() {
        let v = OracleViolation {
            kind: OracleKind::Drc,
            router: "mighty".to_string(),
            detail: "short".to_string(),
        };
        assert_eq!(v.to_string(), "[drc] mighty: short");
        assert!(OracleKind::Drc < OracleKind::RouterError);
    }
}
