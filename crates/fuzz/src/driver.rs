//! The fuzz driver: derives a replayable case from each seed, routes
//! every instance through the full [`DetailedRouter`] roster via the
//! parallel [`RouteEngine`], and applies the oracles.
//!
//! Determinism is the design axiom: the same seed range always produces
//! the same cases, routed the same way, judged by the same oracles —
//! regardless of worker count. Findings therefore replay anywhere.

use std::fmt;

use mighty::engine::{EngineConfig, ObserveMode, RouteEngine};
use mighty::{FrontierKind, MightyRouter, RouterConfig};
use route_benchdata::rng::SplitMix64;
use route_maze::LeeRouter;
use route_model::{DetailedRouter, Problem};

use crate::case::{CaseShape, FuzzCase};
use crate::fault::{Fault, FaultyRouter};
use crate::oracle::{check_instance, InstanceRuns, OracleViolation, RouterRun};
use crate::shrink::{shrink, ShrinkReport};

/// How many instances are built and batch-routed at a time. Bounds
/// memory while still giving the engine real batches to parallelize.
const WINDOW: usize = 32;

/// The roster of routers a fuzz instance is judged against.
pub struct RouterSet {
    ripup: Box<dyn DetailedRouter + Sync>,
    lee: Box<dyn DetailedRouter + Sync>,
    extras: Vec<Box<dyn DetailedRouter + Sync>>,
    /// The rip-up router with the binary-heap frontier, for the
    /// frontier-parity oracle. Skipped under fault injection so the
    /// parity oracle never double-reports an injected corruption.
    ripup_heap: Option<Box<dyn DetailedRouter + Sync>>,
}

impl RouterSet {
    /// The standard roster: the rip-up router (optionally wrapped in a
    /// deliberate [`Fault`] for mutation testing), the sequential Lee
    /// baseline, and every channel/switchbox adapter registered with
    /// the batch engine.
    pub fn standard(fault: Option<Fault>) -> Self {
        let mighty = MightyRouter::new(RouterConfig::default());
        let heap_cfg = RouterConfig { frontier: FrontierKind::Heap, ..RouterConfig::default() };
        let (ripup, ripup_heap): (Box<dyn DetailedRouter + Sync>, _) = match fault {
            Some(f) => (Box::new(FaultyRouter::new(mighty, f)), None),
            None => {
                let heap: Box<dyn DetailedRouter + Sync> = Box::new(MightyRouter::new(heap_cfg));
                (Box::new(mighty), Some(heap))
            }
        };
        RouterSet {
            ripup,
            ripup_heap,
            lee: Box::new(LeeRouter::default()),
            extras: vec![
                Box::new(route_channel::LeaRouter),
                Box::new(route_channel::DoglegRouter),
                Box::new(route_channel::GreedyRouter),
                Box::new(route_channel::YacrRouter::default()),
                Box::new(route_channel::SwboxRouter),
            ],
        }
    }
}

/// Configuration for one [`run_fuzz`] sweep.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// First seed, inclusive.
    pub start: u64,
    /// Last seed, exclusive.
    pub end: u64,
    /// Engine worker threads (`0` = one per hardware thread).
    pub jobs: usize,
    /// Minimize each finding to a smallest reproducing case.
    pub shrink: bool,
    /// Deliberate result corruption (mutation testing); `None` in
    /// normal operation.
    pub fault: Option<Fault>,
    /// Oracle-evaluation budget for each shrink.
    pub shrink_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { start: 0, end: 0, jobs: 0, shrink: false, fault: None, shrink_budget: 200 }
    }
}

/// One oracle failure, with its provenance and (optionally) its
/// minimized reproducer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The seed whose derived case failed.
    pub seed: u64,
    /// The full case as derived from the seed.
    pub case: FuzzCase,
    /// Everything the oracles flagged on the full case.
    pub violations: Vec<OracleViolation>,
    /// Shrinker output, when shrinking was requested.
    pub shrunk: Option<ShrinkReport>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed {}: {} -> {} violation(s)", self.seed, self.case, self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if let Some(shrunk) = &self.shrunk {
            writeln!(f, "  shrunk to: {} ({} oracle evals)", shrunk.case, shrunk.evaluations)?;
        }
        Ok(())
    }
}

/// Totals for one sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Seeds swept (== instances fuzzed).
    pub instances: usize,
    /// Instances the rip-up router claimed fully complete.
    pub complete: usize,
    /// Every oracle failure, in seed order.
    pub findings: Vec<Finding>,
}

impl FuzzOutcome {
    /// `true` when no oracle fired anywhere in the sweep.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Derives the fuzz case for a seed: the family and every dimension are
/// drawn from a SplitMix64 stream keyed on the seed, so the sweep walks
/// a fixed, replayable slice of the configuration space.
pub fn case_for_seed(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6675_7A7A);
    let shape = match rng.below(3) {
        0 => CaseShape::Switchbox {
            width: rng.range(6, 17) as u32,
            height: rng.range(6, 15) as u32,
            nets: rng.range(2, 11) as u32,
        },
        1 => CaseShape::Obstructed {
            width: rng.range(8, 17) as u32,
            height: rng.range(8, 15) as u32,
            nets: rng.range(2, 9) as u32,
            obstacle_pct: rng.range(5, 21) as u32,
        },
        _ => {
            // Feasibility margin: the generator seats up to three pins
            // per net on 2*width boundary slots, so cap nets at
            // width/2 (≤ 75% occupancy) and keep windows ≥ 3 columns.
            let width = rng.range(8, 25);
            let nets = rng.range(2, (width / 2).min(8) + 1);
            CaseShape::Channel {
                width: width as usize,
                nets: nets as u32,
                extra_pin_pct: rng.range(0, 31) as u32,
                window: rng.range(3, 7) as usize,
                tracks: (nets + rng.range(1, 4)) as usize,
            }
        }
    };
    FuzzCase::full(shape, seed)
}

/// Routes one batch of problems through the whole roster and assembles
/// per-instance [`InstanceRuns`] for the oracles.
///
/// The core routers each get two engine passes — unobserved and traced
/// — feeding the inertness and event-consistency oracles; the extras
/// run unobserved only.
pub fn run_batch(problems: &[Problem], routers: &RouterSet, jobs: usize) -> Vec<InstanceRuns> {
    let off = RouteEngine::new(EngineConfig { jobs, ..EngineConfig::default() });
    let traced = RouteEngine::new(EngineConfig {
        jobs,
        observe: ObserveMode::Trace,
        ..EngineConfig::default()
    });

    let mut core_runs: Vec<std::vec::IntoIter<RouterRun>> = Vec::new();
    for router in [routers.ripup.as_ref(), routers.lee.as_ref()] {
        let plain = off.route_batch(router, problems).results;
        let observed = traced.route_batch(router, problems);
        let events = observed.observation.map(|o| o.events).unwrap_or_default();
        let runs: Vec<RouterRun> = plain
            .into_iter()
            .zip(observed.results)
            .zip(events)
            .map(|((plain, observed), events)| RouterRun {
                name: router.name().to_string(),
                plain,
                observed,
                events,
            })
            .collect();
        core_runs.push(runs.into_iter());
    }
    let mut lee_runs = core_runs.pop().expect("lee runs");
    let mut ripup_runs = core_runs.pop().expect("ripup runs");

    let mut extra_runs: Vec<(String, std::vec::IntoIter<route_model::RouteResult>)> = routers
        .extras
        .iter()
        .map(|r| (r.name().to_string(), off.route_batch(r.as_ref(), problems).results.into_iter()))
        .collect();

    let mut heap_runs: Option<std::vec::IntoIter<route_model::RouteResult>> = routers
        .ripup_heap
        .as_ref()
        .map(|r| off.route_batch(r.as_ref(), problems).results.into_iter());

    (0..problems.len())
        .map(|_| InstanceRuns {
            ripup: ripup_runs.next().expect("one ripup run per instance"),
            lee: lee_runs.next().expect("one lee run per instance"),
            extras: extra_runs
                .iter_mut()
                .map(|(name, results)| {
                    (name.clone(), results.next().expect("one extra run per instance"))
                })
                .collect(),
            ripup_heap: heap_runs
                .as_mut()
                .map(|runs| runs.next().expect("one heap run per instance")),
        })
        .collect()
}

/// Routes a single instance through the roster (serial engine) — the
/// evaluation primitive shared by the shrinker and the oracle tests.
pub fn route_instance(problem: &Problem, routers: &RouterSet, jobs: usize) -> InstanceRuns {
    run_batch(std::slice::from_ref(problem), routers, jobs).pop().expect("one instance in, one out")
}

/// Evaluates one case end to end: build, route through the roster,
/// apply every oracle. The shrinker's fitness function. A case the
/// generator cannot realize (see [`FuzzCase::try_build`]) evaluates to
/// no violations — an unbuildable case reproduces nothing.
pub fn evaluate_case(case: &FuzzCase, routers: &RouterSet, jobs: usize) -> Vec<OracleViolation> {
    match case.try_build() {
        Some(problem) => check_instance(&problem, &route_instance(&problem, routers, jobs)),
        None => Vec::new(),
    }
}

/// Sweeps the configured seed range. Cases are derived per seed, routed
/// in engine batches of a fixed window, judged, and (optionally) shrunk.
/// Progress lines go through `report` (pass `|_| {}` to silence).
pub fn run_fuzz(config: &FuzzConfig, report: &mut dyn FnMut(&str)) -> FuzzOutcome {
    let routers = RouterSet::standard(config.fault);
    let mut outcome = FuzzOutcome::default();
    let seeds: Vec<u64> = (config.start..config.end).collect();

    for chunk in seeds.chunks(WINDOW.max(1)) {
        // Derived cases are feasible by construction, but try_build
        // keeps a generator assertion from ever killing a sweep.
        let mut meta: Vec<(u64, FuzzCase)> = Vec::with_capacity(chunk.len());
        let mut problems: Vec<Problem> = Vec::with_capacity(chunk.len());
        for &seed in chunk {
            let case = case_for_seed(seed);
            outcome.instances += 1;
            match case.try_build() {
                Some(problem) => {
                    meta.push((seed, case));
                    problems.push(problem);
                }
                None => report(&format!("seed {seed}: {case} is unbuildable, skipped")),
            }
        }
        let runs = run_batch(&problems, &routers, config.jobs);
        for (i, instance) in runs.iter().enumerate() {
            let (seed, case) = (meta[i].0, &meta[i].1);
            let problem = &problems[i];
            if let Ok(routing) = &instance.ripup.plain {
                if routing.is_complete() {
                    outcome.complete += 1;
                }
            }
            let violations = check_instance(problem, instance);
            if violations.is_empty() {
                continue;
            }
            report(&format!("seed {seed}: {} -> {} violation(s)", case, violations.len()));
            let shrunk = if config.shrink {
                let r = shrink(case, &violations, &routers, config.jobs, config.shrink_budget);
                report(&format!(
                    "  shrunk {} -> {} nets in {} evals",
                    case.net_count(),
                    r.case.net_count(),
                    r.evaluations
                ));
                Some(r)
            } else {
                None
            };
            outcome.findings.push(Finding { seed, case: case.clone(), violations, shrunk });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        for seed in 0..40 {
            assert_eq!(case_for_seed(seed), case_for_seed(seed));
        }
    }

    #[test]
    fn seed_stream_covers_every_family() {
        let mut families = std::collections::BTreeSet::new();
        for seed in 0..40 {
            families.insert(case_for_seed(seed).shape.family());
        }
        assert_eq!(families.len(), 3, "families seen: {families:?}");
    }

    #[test]
    fn clean_window_has_no_findings() {
        let config = FuzzConfig { start: 0, end: 12, jobs: 1, ..FuzzConfig::default() };
        let outcome = run_fuzz(&config, &mut |_| {});
        assert_eq!(outcome.instances, 12);
        assert!(outcome.is_clean(), "findings: {:?}", outcome.findings);
    }

    #[test]
    fn injected_fault_is_found_and_shrunk() {
        let config = FuzzConfig {
            start: 0,
            end: 8,
            jobs: 1,
            shrink: true,
            fault: Some(Fault::DropTrace),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&config, &mut |_| {});
        assert!(!outcome.is_clean(), "the injected fault must be caught");
        let finding = &outcome.findings[0];
        let shrunk = finding.shrunk.as_ref().expect("shrinking was requested");
        assert!(
            shrunk.case.net_count() <= 4,
            "minimal reproducer has {} nets: {}",
            shrunk.case.net_count(),
            shrunk.case
        );
        // Determinism: the same sweep finds the same minimal case.
        let again = run_fuzz(&config, &mut |_| {});
        assert_eq!(again.findings[0].shrunk.as_ref().unwrap().case, shrunk.case);
    }
}
