//! Finding minimization: delta-debugging over the net set, grid
//! halving, and pin re-seeding.
//!
//! The shrinker never trusts a mutation — every candidate case is
//! re-routed through the whole roster and must reproduce at least one
//! of the *original* violation kinds to be accepted. Each accepted
//! mutation strictly decreases `(net count, grid size)`
//! lexicographically, so shrinking always terminates; a configurable
//! oracle-evaluation budget bounds the worst case anyway.

use crate::case::{CaseShape, FuzzCase};
use crate::driver::{evaluate_case, RouterSet};
use crate::oracle::{kinds_of, OracleKind, OracleViolation};
use std::collections::BTreeSet;

/// Result of shrinking one finding.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The smallest case found that still reproduces.
    pub case: FuzzCase,
    /// The violations the minimal case triggers.
    pub violations: Vec<OracleViolation>,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Shrinks `case` to a minimal case still triggering at least one of
/// the violation kinds in `original`, spending at most `budget` oracle
/// evaluations.
pub fn shrink(
    case: &FuzzCase,
    original: &[OracleViolation],
    routers: &RouterSet,
    jobs: usize,
    budget: usize,
) -> ShrinkReport {
    let mut s = Shrinker { routers, jobs, budget, evaluations: 0, target: kinds_of(original) };
    let mut current = case.clone();
    let mut violations = original.to_vec();
    loop {
        let mut progressed = false;
        progressed |= s.drop_nets(&mut current, &mut violations);
        progressed |= s.halve_grid(&mut current, &mut violations);
        if !progressed || s.spent() {
            break;
        }
    }
    ShrinkReport { case: current, violations, evaluations: s.evaluations }
}

struct Shrinker<'a> {
    routers: &'a RouterSet,
    jobs: usize,
    budget: usize,
    evaluations: usize,
    target: BTreeSet<OracleKind>,
}

impl Shrinker<'_> {
    fn spent(&self) -> bool {
        self.evaluations >= self.budget
    }

    /// Evaluates a candidate; `Some(violations)` iff it reproduces one
    /// of the original violation kinds within budget.
    fn reproduces(&mut self, candidate: &FuzzCase) -> Option<Vec<OracleViolation>> {
        if self.spent() {
            return None;
        }
        self.evaluations += 1;
        let violations = evaluate_case(candidate, self.routers, self.jobs);
        if kinds_of(&violations).intersection(&self.target).next().is_some() {
            Some(violations)
        } else {
            None
        }
    }

    /// Delta-debugging over the kept-net list: tries dropping runs of
    /// nets with halving run lengths, greedily accepting any drop that
    /// still reproduces. Returns whether the case got smaller.
    fn drop_nets(&mut self, current: &mut FuzzCase, violations: &mut Vec<OracleViolation>) -> bool {
        let mut keep: Vec<u32> = match &current.keep {
            Some(keep) => keep.clone(),
            None => (0..current.shape.nets()).collect(),
        };
        let before = keep.len();
        let mut run = before.div_ceil(2);
        while run >= 1 && keep.len() > 1 && !self.spent() {
            let mut i = 0;
            while i < keep.len() && keep.len() > 1 && !self.spent() {
                let end = (i + run).min(keep.len());
                if end - i == keep.len() {
                    // Never drop everything.
                    i = end;
                    continue;
                }
                let mut trial_keep = keep.clone();
                trial_keep.drain(i..end);
                let trial = FuzzCase { keep: Some(trial_keep.clone()), ..current.clone() };
                if let Some(v) = self.reproduces(&trial) {
                    keep = trial_keep;
                    *current = trial;
                    *violations = v;
                    // Re-test the same position: it now holds new nets.
                } else {
                    i = end;
                }
            }
            if run == 1 {
                break;
            }
            run /= 2;
        }
        keep.len() < before
    }

    /// Tries halving the grid dimensions (re-seeding the pins when the
    /// same seed no longer reproduces at the smaller size). Net count
    /// and the kept subset are unchanged — `keep` indices stay valid
    /// because the generator's net count is part of the shape.
    fn halve_grid(
        &mut self,
        current: &mut FuzzCase,
        violations: &mut Vec<OracleViolation>,
    ) -> bool {
        let mut progressed = false;
        while let Some(smaller) = halved_shape(&current.shape) {
            if self.spent() {
                break;
            }
            // Same seed first, then a few derived pin re-seeds.
            let seeds = [current.seed, current.seed ^ 0x5EED_0001, current.seed ^ 0x5EED_0002];
            let mut accepted = false;
            for seed in seeds {
                let trial = FuzzCase { shape: smaller, seed, keep: current.keep.clone() };
                if let Some(v) = self.reproduces(&trial) {
                    *current = trial;
                    *violations = v;
                    progressed = true;
                    accepted = true;
                    break;
                }
            }
            if !accepted {
                break;
            }
        }
        progressed
    }
}

/// One halving step of a shape's grid, respecting generator minimums
/// and boundary pin capacity. `None` when the shape is already minimal.
fn halved_shape(shape: &CaseShape) -> Option<CaseShape> {
    /// Halve toward `min`, never below.
    fn halve(v: u32, min: u32) -> u32 {
        (v / 2).max(min)
    }
    match *shape {
        CaseShape::Switchbox { width, height, nets } => {
            let (w, h) = (halve(width, 6), halve(height, 6));
            // The boundary must still seat two pins per generated net.
            if (w, h) == (width, height) || 2 * h + 2 * (w - 2) < 2 * nets {
                None
            } else {
                Some(CaseShape::Switchbox { width: w, height: h, nets })
            }
        }
        CaseShape::Obstructed { width, height, nets, obstacle_pct } => {
            let (w, h) = (halve(width, 8), halve(height, 8));
            if (w, h) == (width, height) || 2 * h + 2 * (w - 2) < 2 * nets {
                None
            } else {
                Some(CaseShape::Obstructed { width: w, height: h, nets, obstacle_pct })
            }
        }
        CaseShape::Channel { width, nets, extra_pin_pct, window, tracks } => {
            // Keep the generator's feasibility margin: nets ≤ width/2.
            let w = (width / 2).max(8).max(2 * nets as usize);
            if w == width {
                None
            } else {
                Some(CaseShape::Channel { width: w, nets, extra_pin_pct, window, tracks })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::route_instance;
    use crate::fault::Fault;
    use crate::oracle::check_instance;

    #[test]
    fn shrinks_an_injected_fault_to_one_net() {
        let case = FuzzCase::full(CaseShape::Switchbox { width: 14, height: 12, nets: 8 }, 17);
        let routers = RouterSet::standard(Some(Fault::DropTrace));
        let problem = case.build();
        let violations = check_instance(&problem, &route_instance(&problem, &routers, 1));
        assert!(!violations.is_empty(), "the fault must fire on the full case");

        let report = shrink(&case, &violations, &routers, 1, 200);
        assert!(
            report.case.net_count() <= 2,
            "got {} nets: {}",
            report.case.net_count(),
            report.case
        );
        assert!(!report.violations.is_empty());
        assert!(report.evaluations <= 200);

        // The minimal case replays through text and still reproduces.
        let replayed = FuzzCase::parse(&report.case.write()).unwrap();
        let v = evaluate_case(&replayed, &routers, 1);
        assert!(kinds_of(&v).intersection(&kinds_of(&violations)).next().is_some());
    }

    #[test]
    fn shrink_is_deterministic() {
        let case = FuzzCase::full(CaseShape::Switchbox { width: 12, height: 10, nets: 6 }, 5);
        let routers = RouterSet::standard(Some(Fault::DropTrace));
        let violations = evaluate_case(&case, &routers, 1);
        assert!(!violations.is_empty());
        let a = shrink(&case, &violations, &routers, 1, 150);
        let b = shrink(&case, &violations, &routers, 1, 150);
        assert_eq!(a.case, b.case);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn grid_halving_respects_capacity() {
        // 10 nets need 20 boundary slots; a 6x6 box has exactly 20.
        let shape = CaseShape::Switchbox { width: 8, height: 8, nets: 10 };
        let halved = halved_shape(&shape);
        if let Some(CaseShape::Switchbox { width, height, nets }) = halved {
            assert!(2 * height + 2 * (width - 2) >= 2 * nets);
        }
        let minimal = CaseShape::Switchbox { width: 6, height: 6, nets: 2 };
        assert_eq!(halved_shape(&minimal), None);
    }
}
