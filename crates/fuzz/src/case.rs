//! Replayable fuzz cases: a generator configuration plus seed (and an
//! optional surviving-net subset left behind by the shrinker),
//! serialized in a small line-oriented text format.
//!
//! A case is *pure data* — rebuilding the [`Problem`] from an equal case
//! always yields a bit-identical instance, which is what makes fuzz
//! findings replayable across machines and sessions.

use std::error::Error;
use std::fmt;

use route_benchdata::gen::{ChannelGen, ObstructedGen, SwitchboxGen};
use route_model::{Problem, ProblemBuilder};

/// The generator family and shape of a fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseShape {
    /// A random switchbox ([`SwitchboxGen`]).
    Switchbox {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Number of two-pin nets.
        nets: u32,
    },
    /// A random switchbox with interior obstacles ([`ObstructedGen`]).
    Obstructed {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Number of two-pin nets.
        nets: u32,
        /// Obstacle coverage of the interior, percent.
        obstacle_pct: u32,
    },
    /// A random channel ([`ChannelGen`]) realized as a grid problem.
    Channel {
        /// Number of columns.
        width: usize,
        /// Number of nets.
        nets: u32,
        /// Multi-pin pressure, percent.
        extra_pin_pct: u32,
        /// Span window (0 = unbounded).
        window: usize,
        /// Track count of the realized grid.
        tracks: usize,
    },
}

impl CaseShape {
    /// Number of nets the generator will produce.
    pub fn nets(&self) -> u32 {
        match *self {
            CaseShape::Switchbox { nets, .. }
            | CaseShape::Obstructed { nets, .. }
            | CaseShape::Channel { nets, .. } => nets,
        }
    }

    /// The family keyword used in case files.
    pub fn family(&self) -> &'static str {
        match self {
            CaseShape::Switchbox { .. } => "switchbox",
            CaseShape::Obstructed { .. } => "obstructed",
            CaseShape::Channel { .. } => "channel",
        }
    }
}

/// A replayable fuzz case: shape, seed, and the net subset kept by the
/// shrinker (`None` = all generated nets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Generator family and dimensions.
    pub shape: CaseShape,
    /// RNG seed fed to the generator.
    pub seed: u64,
    /// Indices (0-based net ids) of the generated nets kept in the
    /// instance, ascending. `None` keeps every net.
    pub keep: Option<Vec<u32>>,
}

impl FuzzCase {
    /// A case covering every net of the generated instance.
    pub fn full(shape: CaseShape, seed: u64) -> Self {
        FuzzCase { shape, seed, keep: None }
    }

    /// Number of nets in the built instance.
    pub fn net_count(&self) -> usize {
        match &self.keep {
            Some(keep) => keep.len(),
            None => self.shape.nets() as usize,
        }
    }

    /// Generates the full instance (ignoring any `keep` subset).
    fn generate(&self) -> Problem {
        match self.shape {
            CaseShape::Switchbox { width, height, nets } => {
                SwitchboxGen { width, height, nets, seed: self.seed }.build()
            }
            CaseShape::Obstructed { width, height, nets, obstacle_pct } => {
                ObstructedGen { width, height, nets, obstacle_pct, seed: self.seed }.build()
            }
            CaseShape::Channel { width, nets, extra_pin_pct, window, tracks } => {
                ChannelGen { width, nets, extra_pin_pct, span_window: window, seed: self.seed }
                    .build()
                    .to_problem(tracks)
            }
        }
    }

    /// Builds the instance this case describes: the generated problem,
    /// restricted to the `keep` subset when one is present.
    pub fn build(&self) -> Problem {
        let full = self.generate();
        match &self.keep {
            None => full,
            Some(keep) => restrict(&full, keep),
        }
    }

    /// Panic-safe [`build`](Self::build): the workload generators
    /// assert on infeasible shapes (e.g. a channel too crowded to seat
    /// every pin), and hand-written case files can describe such
    /// shapes. Returns `None` instead of propagating the panic.
    pub fn try_build(&self) -> Option<Problem> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.build())).ok()
    }

    /// Serializes the case in the `fuzzcase v1` text format.
    pub fn write(&self) -> String {
        let mut out = String::from("fuzzcase v1\n");
        out.push_str(&format!("family {}\n", self.shape.family()));
        match self.shape {
            CaseShape::Switchbox { width, height, nets } => {
                out.push_str(&format!("width {width}\nheight {height}\nnets {nets}\n"));
            }
            CaseShape::Obstructed { width, height, nets, obstacle_pct } => {
                out.push_str(&format!(
                    "width {width}\nheight {height}\nnets {nets}\nobstacle-pct {obstacle_pct}\n"
                ));
            }
            CaseShape::Channel { width, nets, extra_pin_pct, window, tracks } => {
                out.push_str(&format!(
                    "width {width}\nnets {nets}\nextra-pin-pct {extra_pin_pct}\n\
                     window {window}\ntracks {tracks}\n"
                ));
            }
        }
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(keep) = &self.keep {
            let list: Vec<String> = keep.iter().map(u32::to_string).collect();
            out.push_str(&format!("keep {}\n", list.join(" ")));
        }
        out
    }

    /// Parses a case from the `fuzzcase v1` text format.
    ///
    /// # Errors
    ///
    /// Returns [`CaseParseError`] for a bad header, unknown keys,
    /// malformed numbers, missing fields, or an out-of-range `keep` list.
    pub fn parse(text: &str) -> Result<FuzzCase, CaseParseError> {
        let bad = |line: usize, message: String| CaseParseError { line, message };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some((_, "fuzzcase v1")) => {}
            Some((n, other)) => {
                return Err(bad(n, format!("expected `fuzzcase v1` header, found `{other}`")))
            }
            None => return Err(bad(1, "empty case file".to_string())),
        }
        let mut family = None;
        let mut fields: Vec<(usize, String, String)> = Vec::new();
        let mut keep: Option<Vec<u32>> = None;
        for (n, line) in lines {
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match key {
                "family" => family = Some((n, rest.to_string())),
                "keep" => {
                    let mut list = Vec::new();
                    for tok in rest.split_whitespace() {
                        list.push(
                            tok.parse::<u32>()
                                .map_err(|_| bad(n, format!("bad keep index `{tok}`")))?,
                        );
                    }
                    if !list.windows(2).all(|w| w[0] < w[1]) {
                        return Err(bad(n, "keep list must be strictly ascending".to_string()));
                    }
                    keep = Some(list);
                }
                _ => fields.push((n, key.to_string(), rest.to_string())),
            }
        }
        let (fline, family) =
            family.ok_or_else(|| bad(1, "case file has no `family` line".to_string()))?;
        let get = |name: &str| -> Result<Option<u64>, CaseParseError> {
            for (n, key, value) in &fields {
                if key == name {
                    return value
                        .parse::<u64>()
                        .map(Some)
                        .map_err(|_| bad(*n, format!("bad {name} value `{value}`")));
                }
            }
            Ok(None)
        };
        let need = |name: &str, v: Option<u64>| -> Result<u64, CaseParseError> {
            v.ok_or_else(|| bad(fline, format!("family `{family}` needs a `{name}` field")))
        };
        let width = get("width")?;
        let height = get("height")?;
        let nets = get("nets")?;
        let seed = get("seed")?.unwrap_or(0);
        let shape = match family.as_str() {
            "switchbox" => CaseShape::Switchbox {
                width: need("width", width)? as u32,
                height: need("height", height)? as u32,
                nets: need("nets", nets)? as u32,
            },
            "obstructed" => CaseShape::Obstructed {
                width: need("width", width)? as u32,
                height: need("height", height)? as u32,
                nets: need("nets", nets)? as u32,
                obstacle_pct: need("obstacle-pct", get("obstacle-pct")?)? as u32,
            },
            "channel" => CaseShape::Channel {
                width: need("width", width)? as usize,
                nets: need("nets", nets)? as u32,
                extra_pin_pct: get("extra-pin-pct")?.unwrap_or(0) as u32,
                window: get("window")?.unwrap_or(0) as usize,
                tracks: need("tracks", get("tracks")?)? as usize,
            },
            other => return Err(bad(fline, format!("unknown case family `{other}`"))),
        };
        if let Some(keep) = &keep {
            if keep.iter().any(|&i| i >= shape.nets()) {
                return Err(bad(
                    1,
                    format!("keep index out of range for {} generated nets", shape.nets()),
                ));
            }
        }
        Ok(FuzzCase { shape, seed, keep })
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            CaseShape::Switchbox { width, height, nets } => {
                write!(f, "switchbox {width}x{height} nets {nets}")?;
            }
            CaseShape::Obstructed { width, height, nets, obstacle_pct } => {
                write!(f, "obstructed {width}x{height} nets {nets} obstacles {obstacle_pct}%")?;
            }
            CaseShape::Channel { width, nets, tracks, .. } => {
                write!(f, "channel {width}w nets {nets} tracks {tracks}")?;
            }
        }
        write!(f, " seed {}", self.seed)?;
        if let Some(keep) = &self.keep {
            write!(f, " keep {}/{}", keep.len(), self.shape.nets())?;
        }
        Ok(())
    }
}

/// Error produced when parsing a case file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseParseError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for CaseParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for CaseParseError {}

/// Rebuilds `problem` keeping only the nets whose 0-based ids appear in
/// `keep` (geometry, obstacles and layer count are preserved).
pub fn restrict(problem: &Problem, keep: &[u32]) -> Problem {
    let mut b = match problem.region() {
        Some(region) => ProblemBuilder::region(region.clone()),
        None => ProblemBuilder::switchbox(problem.width(), problem.height()),
    };
    b.layers(problem.layers());
    for &(at, layer) in problem.obstacles() {
        match layer {
            Some(l) => b.obstacle_on(at, l),
            None => b.obstacle(at),
        };
    }
    for net in problem.nets() {
        if !keep.contains(&net.id.0) {
            continue;
        }
        let mut nb = b.net(net.name.clone());
        for pin in &net.pins {
            nb.pin_at(pin.at, pin.layer);
        }
    }
    b.build().expect("a net subset of a valid problem is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cases() -> Vec<FuzzCase> {
        vec![
            FuzzCase::full(CaseShape::Switchbox { width: 10, height: 8, nets: 5 }, 42),
            FuzzCase {
                shape: CaseShape::Obstructed { width: 12, height: 12, nets: 4, obstacle_pct: 10 },
                seed: 7,
                keep: Some(vec![0, 2]),
            },
            FuzzCase {
                shape: CaseShape::Channel {
                    width: 20,
                    nets: 8,
                    extra_pin_pct: 30,
                    window: 8,
                    tracks: 9,
                },
                seed: 3,
                keep: None,
            },
        ]
    }

    #[test]
    fn round_trips_through_text() {
        for case in sample_cases() {
            let text = case.write();
            let back = FuzzCase::parse(&text).unwrap();
            assert_eq!(back, case, "case text:\n{text}");
        }
    }

    #[test]
    fn build_is_deterministic() {
        for case in sample_cases() {
            let a = case.build();
            let b = case.build();
            assert_eq!(a.nets(), b.nets());
            assert_eq!(a.obstacles(), b.obstacles());
            assert_eq!(a.nets().len(), case.net_count());
        }
    }

    #[test]
    fn restrict_keeps_geometry_and_subset() {
        let case = FuzzCase::full(CaseShape::Switchbox { width: 10, height: 8, nets: 5 }, 42);
        let full = case.build();
        let sub = restrict(&full, &[1, 3]);
        assert_eq!(sub.width(), full.width());
        assert_eq!(sub.height(), full.height());
        assert_eq!(sub.nets().len(), 2);
        // Names and pins survive; ids are re-densified.
        assert_eq!(sub.nets()[0].name, full.nets()[1].name);
        assert_eq!(sub.nets()[0].pins, full.nets()[1].pins);
        assert_eq!(sub.nets()[1].pins, full.nets()[3].pins);
    }

    #[test]
    fn parse_rejects_malformed_cases() {
        assert!(FuzzCase::parse("").is_err());
        assert!(FuzzCase::parse("fuzzcase v2\n").is_err());
        assert!(FuzzCase::parse("fuzzcase v1\nfamily martian\nwidth 4\n").is_err());
        assert!(FuzzCase::parse("fuzzcase v1\nfamily switchbox\nwidth 4\n").is_err());
        assert!(FuzzCase::parse(
            "fuzzcase v1\nfamily switchbox\nwidth 8\nheight 8\nnets 2\nseed 0\nkeep 5\n"
        )
        .is_err());
        assert!(FuzzCase::parse(
            "fuzzcase v1\nfamily switchbox\nwidth 8\nheight 8\nnets 3\nseed 0\nkeep 2 1\n"
        )
        .is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a fuzz find\n\nfuzzcase v1\n# shape\nfamily switchbox\nwidth 8\n\
                    height 6\nnets 2\nseed 11\n";
        let case = FuzzCase::parse(text).unwrap();
        assert_eq!(case.shape, CaseShape::Switchbox { width: 8, height: 6, nets: 2 });
        assert_eq!(case.seed, 11);
        assert_eq!(case.keep, None);
    }
}
