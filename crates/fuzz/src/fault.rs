//! Deliberate bug injection for exercising the fuzz oracles.
//!
//! The whole point of a fuzzing subsystem is that it *would* catch a
//! router bug — a claim nobody should take on faith. [`FaultyRouter`]
//! wraps any [`DetailedRouter`] and corrupts its results in a controlled,
//! deterministic way, so the test suite (and the mutation check in CI)
//! can assert that every oracle actually fires and that the shrinker
//! reduces the find to a minimal reproducer.
//!
//! Faults are test instrumentation: the CLI only enables them through
//! the `VROUTE_FUZZ_FAULT` environment variable, never by default.

use route_model::{DetailedRouter, Problem, RouteObserver, RouteResult, Routing, TraceId};

/// A deliberate, deterministic corruption of routing results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Claim every net routed: the failed-net list is emptied while the
    /// wiring is left untouched. An instance with any genuinely failed
    /// net then verifies disconnected against a complete claim.
    HideFailures,
    /// Rip one committed trace of the last multi-pin net that has any,
    /// without adjusting the failed-net claim — the classic stale-
    /// occupancy bug where the database and the bookkeeping disagree.
    DropTrace,
}

impl Fault {
    /// Parses the CLI/env spelling of a fault.
    pub fn from_name(name: &str) -> Option<Fault> {
        match name {
            "hide-failures" => Some(Fault::HideFailures),
            "drop-trace" => Some(Fault::DropTrace),
            _ => None,
        }
    }

    /// The CLI/env spelling of the fault.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::HideFailures => "hide-failures",
            Fault::DropTrace => "drop-trace",
        }
    }

    /// Applies the corruption to a successful routing in place.
    fn corrupt(&self, routing: &mut Routing) {
        match self {
            Fault::HideFailures => routing.failed.clear(),
            Fault::DropTrace => {
                // Deterministic victim: the highest-id net with >= 2 pins
                // and at least one committed trace; drop its last trace.
                let n = routing.db.net_count();
                let victim: Option<(route_model::NetId, TraceId)> =
                    (0..n as u32).rev().map(route_model::NetId).find_map(|id| {
                        if routing.db.pins(id).len() < 2 {
                            return None;
                        }
                        routing.db.traces(id).map(|(tid, _)| (id, tid)).last()
                    });
                if let Some((_, tid)) = victim {
                    routing.db.rip_up(tid);
                }
            }
        }
    }
}

/// A [`DetailedRouter`] wrapper that runs the inner router and then
/// applies a [`Fault`] to every successful result. Errors pass through
/// unchanged; observation uses the inner router's observed path so the
/// corruption is identical on both entry points.
#[derive(Debug, Clone)]
pub struct FaultyRouter<R> {
    inner: R,
    fault: Fault,
}

impl<R> FaultyRouter<R> {
    /// Wraps `inner`, corrupting its results with `fault`.
    pub fn new(inner: R, fault: Fault) -> Self {
        FaultyRouter { inner, fault }
    }
}

impl<R: DetailedRouter> DetailedRouter for FaultyRouter<R> {
    fn name(&self) -> &str {
        // Keep the inner name: the fault must be invisible to the
        // oracles except through the corruption itself.
        self.inner.name()
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let mut result = self.inner.route(problem);
        if let Ok(routing) = &mut result {
            self.fault.corrupt(routing);
        }
        result
    }

    fn route_observed(&self, problem: &Problem, observer: &mut dyn RouteObserver) -> RouteResult {
        let mut result = self.inner.route_observed(problem, observer);
        if let Ok(routing) = &mut result {
            self.fault.corrupt(routing);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mighty::{MightyRouter, RouterConfig};
    use route_benchdata::gen::SwitchboxGen;
    use route_verify::verify;

    #[test]
    fn fault_names_round_trip() {
        for fault in [Fault::HideFailures, Fault::DropTrace] {
            assert_eq!(Fault::from_name(fault.name()), Some(fault));
        }
        assert_eq!(Fault::from_name("bogus"), None);
    }

    #[test]
    fn drop_trace_breaks_connectivity_without_touching_the_claim() {
        let problem = SwitchboxGen { width: 10, height: 8, nets: 5, seed: 4 }.build();
        let honest = MightyRouter::new(RouterConfig::default());
        let claimed = DetailedRouter::route(&honest, &problem).unwrap();
        assert!(claimed.is_complete());

        let faulty =
            FaultyRouter::new(MightyRouter::new(RouterConfig::default()), Fault::DropTrace);
        let routing = faulty.route(&problem).unwrap();
        assert!(routing.is_complete(), "the claim is preserved");
        let report = verify(&problem, &routing.db);
        assert!(!report.is_clean(), "the wiring is not: {report}");
        assert!(report.disconnected_nets() > 0);
    }

    #[test]
    fn fault_is_deterministic() {
        let problem = SwitchboxGen { width: 10, height: 8, nets: 5, seed: 4 }.build();
        let faulty =
            FaultyRouter::new(MightyRouter::new(RouterConfig::default()), Fault::DropTrace);
        let a = faulty.route(&problem).unwrap();
        let b = faulty.route(&problem).unwrap();
        assert_eq!(a.db.checksum(), b.db.checksum());
    }
}
