//! Differential fuzzing for the routing stack.
//!
//! The subsystem closes the loop the rest of the workspace leaves open:
//! the routers are tested against *each other* and against the
//! independent verifier, over an unbounded, replayable stream of
//! generated instances.
//!
//! * [`case`] — replayable [`FuzzCase`]s: generator family, dimensions
//!   and seed (plus the shrinker's surviving-net subset), with a text
//!   format for corpus files.
//! * [`driver`] — derives a case per seed, routes every instance
//!   through the full router roster via the parallel batch engine, and
//!   collects [`Finding`]s.
//! * [`oracle`] — the correctness oracles: DRC/claim verification of
//!   every successful result, the differential/observation checks
//!   between the rip-up router and the sequential baseline, and the
//!   infeasibility-soundness check that a static analyzer certificate
//!   never coexists with a completed route.
//! * [`mod@shrink`] — minimizes a finding by delta-debugging the net set,
//!   halving the grid, and re-seeding pins.
//! * [`fault`] — deliberate, deterministic result corruption proving
//!   the oracles and the shrinker actually work (mutation testing).
//!
//! # Examples
//!
//! Sweep a seed window and assert it is clean:
//!
//! ```
//! use route_fuzz::{run_fuzz, FuzzConfig};
//!
//! let config = FuzzConfig { start: 0, end: 4, jobs: 1, ..FuzzConfig::default() };
//! let outcome = run_fuzz(&config, &mut |_| {});
//! assert_eq!(outcome.instances, 4);
//! assert!(outcome.is_clean());
//! ```
//!
//! Replay a corpus case through the oracles:
//!
//! ```
//! use route_fuzz::{evaluate_case, FuzzCase, RouterSet};
//!
//! let case = FuzzCase::parse(
//!     "fuzzcase v1\nfamily switchbox\nwidth 8\nheight 6\nnets 2\nseed 11\n",
//! )
//! .unwrap();
//! let violations = evaluate_case(&case, &RouterSet::standard(None), 1);
//! assert!(violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod driver;
pub mod fault;
pub mod oracle;
pub mod shrink;

pub use case::{restrict, CaseParseError, CaseShape, FuzzCase};
pub use driver::{
    case_for_seed, evaluate_case, route_instance, run_batch, run_fuzz, Finding, FuzzConfig,
    FuzzOutcome, RouterSet,
};
pub use fault::{Fault, FaultyRouter};
pub use oracle::{check_instance, kinds_of, InstanceRuns, OracleKind, OracleViolation, RouterRun};
pub use shrink::{shrink, ShrinkReport};
