//! Benchmark corpus and deterministic workload generators.
//!
//! The original evaluation instances of 1980s detailed-routing papers —
//! Deutsch's difficult channel and Burstein's difficult switchbox — were
//! distributed in technical reports that are not available offline, so
//! this crate ships **class-equivalent reconstructions**: deterministic
//! instances with the same dimensions and difficulty structure (pin
//! density, constraint chains, multi-pin fractions), frozen by golden
//! tests so every experiment runs on identical data. See `DESIGN.md` for
//! the substitution rationale.
//!
//! Contents:
//!
//! * [`gen`] — seeded random generators for channels, switchboxes and
//!   obstructed regions (the experiment sweeps), driven by the
//!   dependency-free [`rng`] generator;
//! * [`deutsch_class`] / [`burstein_class`] — the frozen hard instances;
//! * [`suite`] — the named channel suite used by experiment T1;
//! * [`mod@format`] — a small text format for problems and channels, used by
//!   the examples and for external instance exchange.
//!
//! # Examples
//!
//! ```
//! use route_benchdata::{burstein_class, deutsch_class};
//!
//! let channel = deutsch_class();
//! assert!(channel.density() >= 15, "difficult channel is dense");
//! let switchbox = burstein_class();
//! assert_eq!(switchbox.width(), 23);
//! ```

#![warn(missing_docs)]

pub mod format;
pub mod gen;
pub mod rng;
pub mod suite;

mod hard;

pub use hard::{
    burstein_class, burstein_class_width, deutsch_class, terminal_dense_class, BURSTEIN_HEIGHT,
    BURSTEIN_WIDTH,
};
