//! A small line-oriented text format for routing instances.
//!
//! Switchbox problems:
//!
//! ```text
//! sb 8 6
//! obstacle 3 3
//! obstacle 4 4 M2
//! net clk 0 2 M1  7 5 M1
//! net d0  2 0 M2  2 5 M2
//! ```
//!
//! Irregular regions replace the `sb` header with one or more `region`
//! rectangles (`X Y WIDTH HEIGHT`, lower-left corner first); their union
//! is the routing area and everything outside it is blocked:
//!
//! ```text
//! region 0 0 12 4
//! region 0 0 4 12
//! net a 1 11 M2  11 1 M1
//! ```
//!
//! Channels:
//!
//! ```text
//! channel
//! top    1 2 0 3
//! bottom 0 1 3 2
//! ```
//!
//! Blank lines and `#` comments are ignored. The format exists for the
//! examples and for exchanging instances with external tools; it is not
//! a stable archival format.

use std::error::Error;
use std::fmt;

use route_channel::{ChannelSpec, SpecError};
use route_geom::{Layer, Point};
use route_model::{Problem, ProblemBuilder, ProblemError};

/// Error produced when parsing an instance file.
#[derive(Debug)]
pub enum ParseError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed problem failed validation.
    Problem(ProblemError),
    /// The parsed channel failed validation.
    Channel(SpecError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Problem(e) => write!(f, "invalid problem: {e}"),
            ParseError::Channel(e) => write!(f, "invalid channel: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Syntax { .. } => None,
            ParseError::Problem(e) => Some(e),
            ParseError::Channel(e) => Some(e),
        }
    }
}

impl From<ProblemError> for ParseError {
    fn from(e: ProblemError) -> Self {
        ParseError::Problem(e)
    }
}

impl From<SpecError> for ParseError {
    fn from(e: SpecError) -> Self {
        ParseError::Channel(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax { line, message: message.into() }
}

fn parse_layer(tok: &str, line: usize) -> Result<Layer, ParseError> {
    match tok {
        "M1" | "m1" => Ok(Layer::M1),
        "M2" | "m2" => Ok(Layer::M2),
        "M3" | "m3" => Ok(Layer::M3),
        other => Err(syntax(line, format!("unknown layer `{other}`"))),
    }
}

/// Parses a switchbox problem in the `sb` format.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines or if the assembled problem
/// fails validation.
pub fn parse_problem(text: &str) -> Result<Problem, ParseError> {
    let mut builder: Option<ProblemBuilder> = None;
    let mut region_rects: Vec<route_geom::Rect> = Vec::new();
    // Materializes the builder from collected `region` lines when the
    // first obstacle/net directive arrives.
    fn materialize<'a>(
        builder: &'a mut Option<ProblemBuilder>,
        region_rects: &[route_geom::Rect],
        line_no: usize,
        what: &str,
    ) -> Result<&'a mut ProblemBuilder, ParseError> {
        if builder.is_none() {
            if region_rects.is_empty() {
                return Err(syntax(line_no, format!("`{what}` before `sb`/`region` header")));
            }
            *builder = Some(ProblemBuilder::region(route_geom::Region::from_rects(
                region_rects.iter().copied(),
            )));
        }
        Ok(builder.as_mut().expect("just materialized"))
    }
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "sb" => {
                if tokens.len() != 3 {
                    return Err(syntax(line_no, "expected `sb WIDTH HEIGHT`"));
                }
                let w: u32 = tokens[1].parse().map_err(|_| syntax(line_no, "bad width"))?;
                let h: u32 = tokens[2].parse().map_err(|_| syntax(line_no, "bad height"))?;
                if w == 0 || h == 0 {
                    return Err(syntax(line_no, "dimensions must be non-zero"));
                }
                builder = Some(ProblemBuilder::switchbox(w, h));
            }
            "region" => {
                if builder.is_some() {
                    return Err(syntax(line_no, "`region` cannot follow an `sb` header"));
                }
                if tokens.len() != 5 {
                    return Err(syntax(line_no, "expected `region X Y WIDTH HEIGHT`"));
                }
                let x: i32 = tokens[1].parse().map_err(|_| syntax(line_no, "bad x"))?;
                let y: i32 = tokens[2].parse().map_err(|_| syntax(line_no, "bad y"))?;
                let w: u32 = tokens[3].parse().map_err(|_| syntax(line_no, "bad width"))?;
                let h: u32 = tokens[4].parse().map_err(|_| syntax(line_no, "bad height"))?;
                if w == 0 || h == 0 {
                    return Err(syntax(line_no, "region dimensions must be non-zero"));
                }
                region_rects.push(route_geom::Rect::with_size(Point::new(x, y), w, h));
            }
            "layers" => {
                let b = materialize(&mut builder, &region_rects, line_no, "layers")?;
                if tokens.len() != 2 {
                    return Err(syntax(line_no, "expected `layers N`"));
                }
                let n: u8 = tokens[1].parse().map_err(|_| syntax(line_no, "bad layer count"))?;
                if !(2..=3).contains(&n) {
                    return Err(syntax(line_no, "layer count must be 2 or 3"));
                }
                b.layers(n);
            }
            "obstacle" => {
                let b = materialize(&mut builder, &region_rects, line_no, "obstacle")?;
                if tokens.len() != 3 && tokens.len() != 4 {
                    return Err(syntax(line_no, "expected `obstacle X Y [LAYER]`"));
                }
                let x: i32 = tokens[1].parse().map_err(|_| syntax(line_no, "bad x"))?;
                let y: i32 = tokens[2].parse().map_err(|_| syntax(line_no, "bad y"))?;
                if tokens.len() == 4 {
                    b.obstacle_on(Point::new(x, y), parse_layer(tokens[3], line_no)?);
                } else {
                    b.obstacle(Point::new(x, y));
                }
            }
            "net" => {
                let b = materialize(&mut builder, &region_rects, line_no, "net")?;
                if tokens.len() < 5 || !(tokens.len() - 2).is_multiple_of(3) {
                    return Err(syntax(line_no, "expected `net NAME (X Y LAYER)+`"));
                }
                let mut nb = b.net(tokens[1]);
                for chunk in tokens[2..].chunks(3) {
                    let x: i32 = chunk[0].parse().map_err(|_| syntax(line_no, "bad pin x"))?;
                    let y: i32 = chunk[1].parse().map_err(|_| syntax(line_no, "bad pin y"))?;
                    nb.pin_at(Point::new(x, y), parse_layer(chunk[2], line_no)?);
                }
            }
            other => return Err(syntax(line_no, format!("unknown directive `{other}`"))),
        }
    }
    let builder = match builder {
        Some(b) => b,
        None if !region_rects.is_empty() => {
            ProblemBuilder::region(route_geom::Region::from_rects(region_rects))
        }
        None => return Err(syntax(0, "missing `sb` or `region` header")),
    };
    Ok(builder.build()?)
}

/// Serializes a problem in the `sb` format (inverse of [`parse_problem`]).
pub fn write_problem(problem: &Problem) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match problem.region() {
        Some(region) => {
            for r in region.rects() {
                let _ = writeln!(
                    out,
                    "region {} {} {} {}",
                    r.min().x,
                    r.min().y,
                    r.width(),
                    r.height()
                );
            }
        }
        None => {
            let _ = writeln!(out, "sb {} {}", problem.width(), problem.height());
        }
    }
    if problem.layers() != 2 {
        let _ = writeln!(out, "layers {}", problem.layers());
    }
    for &(p, layer) in problem.obstacles() {
        match layer {
            Some(l) => {
                let _ = writeln!(out, "obstacle {} {} {}", p.x, p.y, l);
            }
            None => {
                let _ = writeln!(out, "obstacle {} {}", p.x, p.y);
            }
        }
    }
    for net in problem.nets() {
        let _ = write!(out, "net {}", net.name);
        for pin in &net.pins {
            let _ = write!(out, "  {} {} {}", pin.at.x, pin.at.y, pin.layer);
        }
        out.push('\n');
    }
    out
}

/// Serializes a routing database's committed traces in the `routes`
/// format (one `trace` line per committed trace, grouped by net):
///
/// ```text
/// routes
/// net clk
/// trace 0 2 M1  1 2 M1  2 2 M1  2 2 M2  2 3 M2
/// ```
///
/// Reload with [`parse_routes`]; together they let a routing be saved,
/// exchanged and independently re-verified.
pub fn write_routes(problem: &Problem, db: &route_model::RouteDb) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("routes\n");
    for net in problem.nets() {
        let traces: Vec<_> = db.traces(net.id).collect();
        if traces.is_empty() {
            continue;
        }
        let _ = writeln!(out, "net {}", net.name);
        for (_, trace) in traces {
            out.push_str("trace");
            for step in trace.steps() {
                let _ = write!(out, "  {} {} {}", step.at.x, step.at.y, step.layer);
            }
            out.push('\n');
        }
    }
    out
}

/// Parses a `routes` file against `problem`, committing every trace into
/// a fresh database.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines, unknown net names,
/// non-contiguous traces, or traces that conflict with obstacles, pins
/// or each other.
pub fn parse_routes(problem: &Problem, text: &str) -> Result<route_model::RouteDb, ParseError> {
    use route_model::{RouteDb, Step, Trace};
    let mut db = RouteDb::new(problem);
    let mut current: Option<route_model::NetId> = None;
    let mut seen_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "routes" => seen_header = true,
            "net" => {
                if !seen_header {
                    return Err(syntax(line_no, "`net` before `routes` header"));
                }
                if tokens.len() != 2 {
                    return Err(syntax(line_no, "expected `net NAME`"));
                }
                let net = problem
                    .net_by_name(tokens[1])
                    .ok_or_else(|| syntax(line_no, format!("unknown net `{}`", tokens[1])))?;
                current = Some(net.id);
            }
            "trace" => {
                let net =
                    current.ok_or_else(|| syntax(line_no, "`trace` before any `net` line"))?;
                if tokens.len() < 4 || !(tokens.len() - 1).is_multiple_of(3) {
                    return Err(syntax(line_no, "expected `trace (X Y LAYER)+`"));
                }
                let mut steps = Vec::with_capacity((tokens.len() - 1) / 3);
                for chunk in tokens[1..].chunks(3) {
                    let x: i32 = chunk[0].parse().map_err(|_| syntax(line_no, "bad x"))?;
                    let y: i32 = chunk[1].parse().map_err(|_| syntax(line_no, "bad y"))?;
                    steps.push(Step::new(Point::new(x, y), parse_layer(chunk[2], line_no)?));
                }
                let trace = Trace::from_steps(steps)
                    .map_err(|e| syntax(line_no, format!("invalid trace: {e}")))?;
                db.commit(net, trace)
                    .map_err(|e| syntax(line_no, format!("trace conflicts: {e}")))?;
            }
            other => return Err(syntax(line_no, format!("unknown directive `{other}`"))),
        }
    }
    if !seen_header {
        return Err(syntax(0, "missing `routes` header"));
    }
    Ok(db)
}

/// Parses a channel in the `channel` format.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines or if the channel fails
/// validation.
pub fn parse_channel(text: &str) -> Result<ChannelSpec, ParseError> {
    let mut top: Option<Vec<u32>> = None;
    let mut bottom: Option<Vec<u32>> = None;
    let mut seen_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "channel" => seen_header = true,
            "top" | "bottom" => {
                if !seen_header {
                    return Err(syntax(line_no, "pin row before `channel` header"));
                }
                let nets: Result<Vec<u32>, _> = tokens[1..].iter().map(|t| t.parse()).collect();
                let nets = nets.map_err(|_| syntax(line_no, "bad net number"))?;
                if tokens[0] == "top" {
                    top = Some(nets);
                } else {
                    bottom = Some(nets);
                }
            }
            other => return Err(syntax(line_no, format!("unknown directive `{other}`"))),
        }
    }
    match (top, bottom) {
        (Some(t), Some(b)) => Ok(ChannelSpec::new(t, b)?),
        _ => Err(syntax(0, "missing `top` or `bottom` row")),
    }
}

/// Serializes a channel in the `channel` format (inverse of
/// [`parse_channel`]).
pub fn write_channel(spec: &ChannelSpec) -> String {
    use std::fmt::Write as _;
    let join = |pins: &[u32]| pins.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ");
    let mut out = String::from("channel\n");
    let _ = writeln!(out, "top {}", join(spec.top_pins()));
    let _ = writeln!(out, "bottom {}", join(spec.bottom_pins()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: &str = "\
# a toy switchbox
sb 8 6
obstacle 3 3
obstacle 4 4 M2
net clk 0 2 M1  7 5 M1
net d0  2 0 M2  2 5 M2
";

    #[test]
    fn three_layer_problem_round_trips() {
        let text = "sb 6 6\nlayers 3\nnet a 0 1 M1  5 1 M3\n";
        let p = parse_problem(text).unwrap();
        assert_eq!(p.layers(), 3);
        let out = write_problem(&p);
        assert!(out.contains("layers 3"));
        assert_eq!(parse_problem(&out).unwrap(), p);
        // M3 pins are rejected without the directive.
        assert!(matches!(
            parse_problem("sb 6 6\nnet a 0 1 M1  5 1 M3\n"),
            Err(ParseError::Problem(_))
        ));
        // Invalid counts are rejected.
        assert!(matches!(parse_problem("sb 6 6\nlayers 4\n"), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_problem("sb 6 6\nlayers 1\n"), Err(ParseError::Syntax { .. })));
    }

    #[test]
    fn parse_and_write_problem_round_trip() {
        let p = parse_problem(SB).unwrap();
        assert_eq!(p.width(), 8);
        assert_eq!(p.nets().len(), 2);
        assert_eq!(p.obstacles().len(), 2);
        let text = write_problem(&p);
        let p2 = parse_problem(&text).unwrap();
        assert_eq!(p, p2);
    }

    const L_REGION: &str = "\
region 0 0 12 4
region 0 0 4 12
obstacle 2 2
net a 1 11 M2  11 1 M1
net b 0 8 M1  3 10 M1
";

    #[test]
    fn parse_and_write_region_problem_round_trip() {
        let p = parse_problem(L_REGION).unwrap();
        assert!(p.region().is_some());
        assert_eq!(p.width(), 12);
        assert_eq!(p.height(), 12);
        assert!(!p.in_region(route_geom::Point::new(10, 10)));
        assert!(p.in_region(route_geom::Point::new(1, 11)));
        let text = write_problem(&p);
        assert!(text.starts_with("region "));
        let p2 = parse_problem(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn region_header_errors() {
        // `region` after `sb` is rejected.
        assert!(matches!(parse_problem("sb 4 4\nregion 0 0 2 2"), Err(ParseError::Syntax { .. })));
        // Zero-size region rects are rejected.
        assert!(matches!(
            parse_problem("region 0 0 0 4\nnet a 0 0 M1 1 0 M1"),
            Err(ParseError::Syntax { .. })
        ));
        // Region not anchored at the origin fails problem validation.
        assert!(matches!(
            parse_problem("region 2 2 4 4\nnet a 2 2 M1 3 3 M1"),
            Err(ParseError::Problem(_))
        ));
    }

    #[test]
    fn parse_problem_errors() {
        assert!(matches!(parse_problem(""), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_problem("net x 0 0 M1"), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_problem("sb 0 5"), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_problem("sb 4 4\nnet x 0 0 M9 1 1 M1"),
            Err(ParseError::Syntax { .. })
        ));
        // Validation failures propagate.
        assert!(matches!(
            parse_problem("sb 4 4\nnet x 9 9 M1 0 0 M1"),
            Err(ParseError::Problem(_))
        ));
    }

    #[test]
    fn routes_round_trip_through_routing() {
        use route_maze::{sequential, CostModel};
        use route_verify::verify;
        let p = parse_problem(SB).unwrap();
        let out = sequential::route_all(&p, CostModel::default());
        assert!(out.is_complete());
        let text = write_routes(&p, &out.db);
        assert!(text.starts_with("routes\n"));
        let reloaded = parse_routes(&p, &text).expect("saved routes reload");
        assert!(verify(&p, &reloaded).is_clean());
        assert_eq!(reloaded.stats(), out.db.stats());
    }

    #[test]
    fn routes_errors() {
        let p = parse_problem(SB).unwrap();
        assert!(matches!(parse_routes(&p, ""), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_routes(&p, "routes\ntrace 0 0 M1 1 0 M1"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_routes(&p, "routes\nnet nonexistent"),
            Err(ParseError::Syntax { .. })
        ));
        // Non-contiguous trace.
        assert!(matches!(
            parse_routes(&p, "routes\nnet clk\ntrace 0 2 M1  5 5 M1"),
            Err(ParseError::Syntax { .. })
        ));
        // Trace over the obstacle at (3,3).
        assert!(matches!(
            parse_routes(&p, "routes\nnet clk\ntrace 3 3 M1"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn parse_and_write_channel_round_trip() {
        let text = "channel\ntop 1 2 0 2\nbottom 0 1 2 0\n";
        let spec = parse_channel(text).unwrap();
        assert_eq!(spec.width(), 4);
        let spec2 = parse_channel(&write_channel(&spec)).unwrap();
        assert_eq!(spec, spec2);
    }

    #[test]
    fn parse_channel_errors() {
        assert!(matches!(parse_channel("top 1 1"), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_channel("channel\ntop 1 x"), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_channel("channel\ntop 1 1"), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_channel("channel\ntop 1 1\nbottom 2 0"),
            Err(ParseError::Channel(_))
        ));
    }
}
