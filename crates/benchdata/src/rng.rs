//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! The workload generators must be reproducible across machines and
//! toolchain versions **and** buildable with zero registry access, so
//! this crate carries its own generator instead of depending on `rand`.
//! SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush, needs eight
//! lines of code, and — unlike library generators — its output for a
//! given seed can never change under us, which is exactly what frozen
//! benchmarks require.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use route_benchdata::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal
    /// streams, forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`0` when `bound` is zero), using
    /// the multiply-shift reduction.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `lo..hi` (half-open). Returns `lo` when the
    /// range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo)
    }

    /// `true` with probability `pct` percent (clamped to `0..=100`).
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < u64::from(pct.min(100))
    }

    /// Fisher–Yates shuffle of `slice`, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_handles_degenerate_inputs() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.range(7, 7), 7);
        assert_eq!(r.range(9, 3), 9);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes everything");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(13);
        for _ in 0..50 {
            assert!(!r.chance(0));
            assert!(r.chance(100));
        }
    }
}
