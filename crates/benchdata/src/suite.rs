//! Named benchmark suites used by the experiment harness.

use route_channel::ChannelSpec;
use route_model::Problem;

use crate::gen::{ChannelGen, SwitchboxGen};
use crate::{burstein_class, deutsch_class, terminal_dense_class};

/// The channel suite of experiment T1: the Deutsch-class difficult
/// channel plus eight generated channels spanning widths 20–120 and
/// two-pin/multi-pin mixes. All instances are deterministic.
pub fn channel_suite() -> Vec<(&'static str, ChannelSpec)> {
    vec![
        (
            "ch-20a",
            ChannelGen { width: 20, nets: 8, extra_pin_pct: 0, span_window: 8, seed: 101 }.build(),
        ),
        (
            "ch-20b",
            ChannelGen { width: 20, nets: 9, extra_pin_pct: 40, span_window: 8, seed: 102 }.build(),
        ),
        (
            "ch-40a",
            ChannelGen { width: 40, nets: 16, extra_pin_pct: 0, span_window: 13, seed: 103 }
                .build(),
        ),
        (
            "ch-40b",
            ChannelGen { width: 40, nets: 18, extra_pin_pct: 50, span_window: 13, seed: 104 }
                .build(),
        ),
        (
            "ch-60a",
            ChannelGen { width: 60, nets: 25, extra_pin_pct: 30, span_window: 20, seed: 105 }
                .build(),
        ),
        (
            "ch-80a",
            ChannelGen { width: 80, nets: 34, extra_pin_pct: 40, span_window: 26, seed: 106 }
                .build(),
        ),
        (
            "ch-120a",
            ChannelGen { width: 120, nets: 50, extra_pin_pct: 50, span_window: 40, seed: 107 }
                .build(),
        ),
        (
            "ch-120b",
            ChannelGen { width: 120, nets: 55, extra_pin_pct: 70, span_window: 40, seed: 108 }
                .build(),
        ),
        ("deutsch-class", deutsch_class()),
    ]
}

/// The switchbox suite of experiment T2: the Burstein-class difficult
/// switchbox plus generated boxes of increasing pressure.
pub fn switchbox_suite() -> Vec<(&'static str, Problem)> {
    vec![
        ("sb-8", SwitchboxGen { width: 8, height: 8, nets: 6, seed: 201 }.build()),
        ("sb-12", SwitchboxGen { width: 12, height: 12, nets: 12, seed: 202 }.build()),
        ("sb-16", SwitchboxGen { width: 16, height: 16, nets: 20, seed: 203 }.build()),
        ("sb-20", SwitchboxGen { width: 20, height: 16, nets: 26, seed: 204 }.build()),
        ("terminal-dense", terminal_dense_class()),
        ("burstein-class", burstein_class()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_suite_is_stable() {
        let suite = channel_suite();
        assert_eq!(suite.len(), 9);
        let again = channel_suite();
        for ((name_a, spec_a), (name_b, spec_b)) in suite.iter().zip(&again) {
            assert_eq!(name_a, name_b);
            assert_eq!(spec_a, spec_b);
        }
    }

    #[test]
    fn channel_suite_spans_densities() {
        let suite = channel_suite();
        let densities: Vec<u32> = suite.iter().map(|(_, s)| s.density()).collect();
        assert!(densities.iter().any(|&d| d <= 6), "suite has easy channels");
        assert!(densities.iter().any(|&d| d >= 12), "suite has hard channels");
    }

    #[test]
    fn switchbox_suite_is_stable() {
        let a = switchbox_suite();
        let b = switchbox_suite();
        assert_eq!(a.len(), b.len());
        for ((na, pa), (nb, pb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(pa.nets(), pb.nets());
        }
    }
}
