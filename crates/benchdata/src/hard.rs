//! The frozen hard instances: class-equivalent reconstructions of the
//! classic difficult benchmarks (see the crate docs for why the historic
//! pin lists themselves are not shipped).

use route_channel::ChannelSpec;
use route_model::{PinSide, Problem, ProblemBuilder};

use crate::gen::ChannelGen;
use crate::rng::SplitMix64;

/// Columns of the Burstein-class switchbox (as in the original: 23).
pub const BURSTEIN_WIDTH: u32 = 23;
/// Rows of the Burstein-class switchbox (as in the original: 15).
pub const BURSTEIN_HEIGHT: u32 = 15;
/// Nets of the Burstein-class switchbox (as in the original: 24).
const BURSTEIN_NETS: usize = 24;
/// Frozen seed; changing it changes the benchmark. Selected so that the
/// instance separates the routers the way the original did (see the T2
/// experiment).
const BURSTEIN_SEED: u64 = 26;

/// Frozen seed of the Deutsch-class difficult channel.
const DEUTSCH_SEED: u64 = 1984;

/// A Deutsch-class difficult channel: 174 columns, 72 nets, high density
/// with long constraint chains — the same difficulty class as Deutsch's
/// difficult example (DAC 1976), reconstructed deterministically.
pub fn deutsch_class() -> ChannelSpec {
    ChannelGen { width: 174, nets: 72, extra_pin_pct: 80, span_window: 52, seed: DEUTSCH_SEED }
        .build()
}

/// A Burstein-class difficult switchbox: 23 x 15 cells, 24 nets with
/// pins crowding all four sides, at its nominal width.
pub fn burstein_class() -> Problem {
    burstein_class_width(BURSTEIN_WIDTH)
}

/// The Burstein-class switchbox with the **same pins** placed in a box of
/// a different width (left/right pins keep their rows; top/bottom pins
/// keep their columns). `burstein_class_width(BURSTEIN_WIDTH - 1)` is the
/// "one less column" instance of experiment T2.
///
/// # Panics
///
/// Panics if `width` is too small to hold the top/bottom pin columns
/// (less than `BURSTEIN_WIDTH - 1`).
pub fn burstein_class_width(width: u32) -> Problem {
    assert!(width >= BURSTEIN_WIDTH - 1, "width {width} cannot hold the benchmark's pin columns");
    let mut rng = SplitMix64::new(BURSTEIN_SEED);
    // Slots are generated for the NOMINAL width so that every width
    // variant shares the same pin set.
    let mut slots: Vec<(PinSide, u32)> = Vec::new();
    for y in 0..BURSTEIN_HEIGHT {
        slots.push((PinSide::Left, y));
        slots.push((PinSide::Right, y));
    }
    // Keep top/bottom pins off the last nominal column so the reduced
    // width can host them too.
    for x in 1..BURSTEIN_WIDTH - 2 {
        slots.push((PinSide::Top, x));
        slots.push((PinSide::Bottom, x));
    }
    rng.shuffle(&mut slots);

    let mut builder = ProblemBuilder::switchbox(width, BURSTEIN_HEIGHT);
    for i in 0..BURSTEIN_NETS {
        let pins = if rng.chance(30) { 3 } else { 2 };
        let mut nb = builder.net(format!("n{i}"));
        for _ in 0..pins {
            let (side, offset) = slots.pop().expect("enough boundary slots");
            nb.pin_side(side, offset);
        }
    }
    builder.build().expect("frozen benchmark is valid")
}

/// Frozen seed of the terminal-dense switchbox.
const DENSE_SEED: u64 = 85;

/// A terminal-dense switchbox: 20 x 12 cells, 20 nets where nearly half
/// have three pins, filling ~90% of the boundary — the multi-pin-heavy
/// difficulty class (pin pressure rather than area pressure).
pub fn terminal_dense_class() -> Problem {
    let mut rng = SplitMix64::new(DENSE_SEED);
    let (width, height) = (20u32, 12u32);
    let mut slots: Vec<(PinSide, u32)> = Vec::new();
    for y in 0..height {
        slots.push((PinSide::Left, y));
        slots.push((PinSide::Right, y));
    }
    for x in 1..width - 1 {
        slots.push((PinSide::Top, x));
        slots.push((PinSide::Bottom, x));
    }
    rng.shuffle(&mut slots);
    let mut builder = ProblemBuilder::switchbox(width, height);
    for i in 0..20 {
        let pins = if rng.chance(45) { 3 } else { 2 };
        let mut nb = builder.net(format!("d{i}"));
        for _ in 0..pins {
            let (side, offset) = slots.pop().expect("enough boundary slots");
            nb.pin_side(side, offset);
        }
    }
    builder.build().expect("frozen benchmark is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deutsch_class_frozen_shape() {
        let spec = deutsch_class();
        assert_eq!(spec.width(), 174);
        assert_eq!(spec.net_ids().len(), 72);
        assert!(spec.density() >= 15, "density {} too low for the class", spec.density());
        // Frozen: regenerating yields the identical instance.
        assert_eq!(spec, deutsch_class());
    }

    #[test]
    fn burstein_class_frozen_shape() {
        let p = burstein_class();
        assert_eq!(p.width(), BURSTEIN_WIDTH);
        assert_eq!(p.height(), BURSTEIN_HEIGHT);
        assert_eq!(p.nets().len(), BURSTEIN_NETS);
        assert_eq!(p.nets(), burstein_class().nets());
    }

    #[test]
    fn width_variants_share_pin_rows_and_columns() {
        let nominal = burstein_class();
        let reduced = burstein_class_width(BURSTEIN_WIDTH - 1);
        assert_eq!(reduced.width(), BURSTEIN_WIDTH - 1);
        for (a, b) in nominal.nets().iter().zip(reduced.nets()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.pins.len(), b.pins.len());
            for (pa, pb) in a.pins.iter().zip(&b.pins) {
                // Right-side pins shift with the width; all others match.
                if pa.at.x == BURSTEIN_WIDTH as i32 - 1 {
                    assert_eq!(pb.at.x, BURSTEIN_WIDTH as i32 - 2);
                    assert_eq!(pa.at.y, pb.at.y);
                } else {
                    assert_eq!(pa, pb);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_narrow_width_rejected() {
        let _ = burstein_class_width(10);
    }

    #[test]
    fn terminal_dense_frozen_shape() {
        let p = terminal_dense_class();
        assert_eq!((p.width(), p.height()), (20, 12));
        assert_eq!(p.nets().len(), 20);
        assert!(p.pin_count() >= 46, "multi-pin pressure: {} pins", p.pin_count());
        assert_eq!(p.nets(), terminal_dense_class().nets());
    }
}
