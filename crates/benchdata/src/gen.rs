//! Seeded random workload generators.
//!
//! Every generator is a pure function of its configuration (including the
//! seed), so experiments are reproducible run to run and machine to
//! machine.

use route_channel::ChannelSpec;
use route_geom::{Point, Rect};
use route_model::{PinSide, Problem, ProblemBuilder};

use crate::rng::SplitMix64;

/// Configuration of the random switchbox generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchboxGen {
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Number of two-pin nets.
    pub nets: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SwitchboxGen {
    /// Generates the switchbox problem: each net gets two pins on
    /// distinct random boundary positions (natural entry layers).
    ///
    /// # Panics
    ///
    /// Panics if the boundary cannot host `2 * nets` pins.
    pub fn build(&self) -> Problem {
        let mut rng = SplitMix64::new(self.seed);
        let mut slots = boundary_slots(self.width, self.height);
        assert!(
            slots.len() >= (self.nets as usize) * 2,
            "boundary too small for {} nets",
            self.nets
        );
        rng.shuffle(&mut slots);
        let mut builder = ProblemBuilder::switchbox(self.width, self.height);
        for i in 0..self.nets {
            let (s1, o1) = slots.pop().expect("enough slots");
            let (s2, o2) = slots.pop().expect("enough slots");
            builder.net(format!("n{i}")).pin_side(s1, o1).pin_side(s2, o2);
        }
        builder.build().expect("generated pins are distinct and in bounds")
    }
}

/// All boundary pin slots of a `width x height` box as `(side, offset)`
/// pairs, corners assigned to the left/right sides.
fn boundary_slots(width: u32, height: u32) -> Vec<(PinSide, u32)> {
    let mut slots = Vec::new();
    for y in 0..height {
        slots.push((PinSide::Left, y));
        slots.push((PinSide::Right, y));
    }
    for x in 1..width.saturating_sub(1) {
        slots.push((PinSide::Top, x));
        slots.push((PinSide::Bottom, x));
    }
    slots
}

/// Configuration of the random channel generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelGen {
    /// Number of columns.
    pub width: usize,
    /// Number of nets.
    pub nets: u32,
    /// Average extra pins per net beyond two (multi-pin pressure),
    /// in percent (0 = all two-pin nets, 100 = one extra pin on average).
    pub extra_pin_pct: u32,
    /// Maximum span of a net's pins in columns (`0` = unbounded). Real
    /// channels (standard-cell rows) have localized nets; bounding the
    /// span keeps the density realistic for a given net count.
    pub span_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChannelGen {
    /// Generates a channel spec: pins are scattered over both edges so
    /// that every net has at least two pins, no column holds two pins of
    /// the same edge, and (when `span_window > 0`) each net's pins stay
    /// within a window of that many columns.
    ///
    /// # Panics
    ///
    /// Panics if the channel cannot host the requested pins
    /// (`2 * width` slots total, and per-window capacity when
    /// `span_window > 0`).
    pub fn build(&self) -> ChannelSpec {
        let mut rng = SplitMix64::new(self.seed);
        let mut top = vec![0u32; self.width];
        let mut bottom = vec![0u32; self.width];
        let window =
            if self.span_window == 0 { self.width } else { self.span_window.min(self.width) };
        let mut free_top = vec![true; self.width];
        let mut free_bottom = vec![true; self.width];

        for net0 in 0..self.nets {
            let net = net0 + 1;
            let budget = 2 + u32::from(rng.chance(self.extra_pin_pct));
            // Find a window with enough free slots, retrying other
            // starting columns before giving up.
            let mut placed = false;
            for _ in 0..4 * self.width {
                let start = rng.below((self.width - window) as u64 + 1) as usize;
                let mut open: Vec<(bool, usize)> = (start..start + window)
                    .flat_map(|c| {
                        let mut v = Vec::new();
                        if free_top[c] {
                            v.push((true, c));
                        }
                        if free_bottom[c] {
                            v.push((false, c));
                        }
                        v
                    })
                    .collect();
                if (open.len() as u32) < budget {
                    continue;
                }
                rng.shuffle(&mut open);
                for _ in 0..budget {
                    let (is_top, c) = open.pop().expect("capacity checked");
                    if is_top {
                        top[c] = net;
                        free_top[c] = false;
                    } else {
                        bottom[c] = net;
                        free_bottom[c] = false;
                    }
                }
                placed = true;
                break;
            }
            assert!(placed, "channel too crowded for net {net} (window {window})");
        }
        ChannelSpec::new(top, bottom).expect("every net got at least two pins")
    }
}

/// Configuration of the obstructed-region generator (experiment T3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObstructedGen {
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Number of two-pin nets.
    pub nets: u32,
    /// Obstacle coverage of the interior, in percent of cells.
    pub obstacle_pct: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ObstructedGen {
    /// Generates a switchbox with random full-stack obstacle blocks in
    /// its interior (never touching the boundary ring, where pins live).
    ///
    /// # Panics
    ///
    /// Panics if the boundary cannot host `2 * nets` pins.
    pub fn build(&self) -> Problem {
        let mut rng = SplitMix64::new(self.seed ^ 0x0b57);
        let mut builder = ProblemBuilder::switchbox(self.width, self.height);
        // Obstacles: random 1x1..3x2 blocks in the interior.
        let interior_cells = (self.width.saturating_sub(2) * self.height.saturating_sub(2)) as u64;
        let target = interior_cells * self.obstacle_pct as u64 / 100;
        let mut placed = 0u64;
        let mut guard = 0;
        while placed < target && guard < 10_000 {
            guard += 1;
            if self.width <= 4 || self.height <= 4 {
                break;
            }
            let w = rng.range(1, 4) as u32;
            let h = rng.range(1, 3) as u32;
            let x = rng.range(1, u64::from(self.width.saturating_sub(w).max(2))) as u32;
            let y = rng.range(1, u64::from(self.height.saturating_sub(h).max(2))) as u32;
            let rect = Rect::with_size(Point::new(x as i32, y as i32), w, h);
            if rect.max().x as u32 >= self.width - 1 || rect.max().y as u32 >= self.height - 1 {
                continue;
            }
            builder.obstacle_rect(rect);
            placed += rect.area();
        }
        // Pins on the boundary, like the plain switchbox generator.
        let mut slots = boundary_slots(self.width, self.height);
        assert!(slots.len() >= (self.nets as usize) * 2, "boundary too small");
        rng.shuffle(&mut slots);
        for i in 0..self.nets {
            let (s1, o1) = slots.pop().expect("enough slots");
            let (s2, o2) = slots.pop().expect("enough slots");
            builder.net(format!("n{i}")).pin_side(s1, o1).pin_side(s2, o2);
        }
        builder.build().expect("pins on boundary never collide with interior obstacles")
    }
}

/// Configuration of the synthetic chip generator: a chip-scale grid
/// with macro-block obstacles and mostly-local multi-pin nets, sized
/// for the hierarchical (tile) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipGen {
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Number of nets.
    pub nets: u32,
    /// Number of macro obstacle blocks scattered over the interior.
    pub macros: u32,
    /// Chebyshev radius of a local net's pin spread, in cells. Real
    /// chips are dominated by short wires; keeping most nets inside a
    /// window makes per-tile detailed routing meaningful.
    pub span: u32,
    /// Percent of nets whose window is widened to `4 * span` (the
    /// chip-crossing minority that exercises the global planner).
    pub long_pct: u32,
    /// Percent of nets that get a third pin.
    pub multi_pct: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ChipGen {
    /// A small-chip baseline (96x96, 700 nets): every knob has a value,
    /// so call sites override only what they sweep.
    pub fn small(seed: u64) -> Self {
        ChipGen {
            width: 96,
            height: 96,
            nets: 700,
            macros: 6,
            span: 10,
            long_pct: 10,
            multi_pct: 20,
            seed,
        }
    }

    /// Generates the chip problem: macro obstacles first, then nets with
    /// 2-3 pins on `M1`, each net's pins confined to a random window.
    /// Pure function of the configuration, like every generator here.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot host the requested pins (the retry
    /// guard runs out of free cells).
    pub fn build(&self) -> Problem {
        use route_geom::Layer;
        let mut rng = SplitMix64::new(self.seed ^ 0xc419);
        let mut builder = ProblemBuilder::switchbox(self.width, self.height);

        // Macro blocks: full-stack rectangles in the interior, clear of
        // the outermost ring so boundary wiring always exists.
        let mut blocked = vec![false; (self.width * self.height) as usize];
        let cell = |p: Point| (p.y as u32 * self.width + p.x as u32) as usize;
        if self.width > 16 && self.height > 16 {
            for _ in 0..self.macros {
                let w = rng.range(4, 13) as u32;
                let h = rng.range(4, 13) as u32;
                let x = rng.range(1, u64::from(self.width - w - 1)) as i32;
                let y = rng.range(1, u64::from(self.height - h - 1)) as i32;
                let rect = Rect::with_size(Point::new(x, y), w, h);
                builder.obstacle_rect(rect);
                for p in rect.cells() {
                    blocked[cell(p)] = true;
                }
            }
        }

        // Nets: an anchor pin anywhere free, remaining pins inside the
        // net's window. Pins live on M1 and never share a cell (the
        // builder would reject the conflict).
        let mut used = blocked.clone();
        let free_at =
            |rng: &mut SplitMix64, used: &mut [bool], win: Option<(Point, u32)>| -> Option<Point> {
                for _ in 0..64 {
                    let p = match win {
                        None => Point::new(
                            rng.below(u64::from(self.width)) as i32,
                            rng.below(u64::from(self.height)) as i32,
                        ),
                        Some((c, r)) => {
                            let lo_x = c.x.saturating_sub(r as i32).max(0);
                            let hi_x = (c.x + r as i32).min(self.width as i32 - 1);
                            let lo_y = c.y.saturating_sub(r as i32).max(0);
                            let hi_y = (c.y + r as i32).min(self.height as i32 - 1);
                            Point::new(
                                lo_x + rng.below((hi_x - lo_x + 1) as u64) as i32,
                                lo_y + rng.below((hi_y - lo_y + 1) as u64) as i32,
                            )
                        }
                    };
                    if !used[cell(p)] {
                        used[cell(p)] = true;
                        return Some(p);
                    }
                }
                None
            };
        for i in 0..self.nets {
            let radius = if rng.chance(self.long_pct) { self.span * 4 } else { self.span };
            let pins = 2 + u64::from(rng.chance(self.multi_pct));
            let mut placed = false;
            'attempt: for _ in 0..64 {
                let Some(anchor) = free_at(&mut rng, &mut used, None) else { continue };
                let mut taken = vec![anchor];
                for _ in 1..pins {
                    match free_at(&mut rng, &mut used, Some((anchor, radius.max(1)))) {
                        Some(p) => taken.push(p),
                        None => {
                            // Window exhausted: release and retry the net.
                            for p in taken {
                                used[cell(p)] = false;
                            }
                            continue 'attempt;
                        }
                    }
                }
                let mut nb = builder.net(format!("n{i}"));
                for p in taken {
                    nb.pin_at(p, Layer::M1);
                }
                placed = true;
                break;
            }
            assert!(placed, "chip too crowded for net n{i} ({}x{})", self.width, self.height);
        }
        builder.build().expect("pins are distinct free cells by construction")
    }
}

/// A switchbox whose nets are *guaranteed routable*: the instance is
/// produced by carving `nets` disjoint straight bands and exposing their
/// endpoints as pins. Useful for completion-rate experiments where a
/// 100% ceiling must exist.
pub fn routable_switchbox(width: u32, height: u32, nets: u32, seed: u64) -> Problem {
    let mut rng = SplitMix64::new(seed ^ 0x9e37);
    let nets = nets.min(height.saturating_sub(2)).max(1);
    // Horizontal bands on distinct rows: trivially routable on M1.
    let mut rows: Vec<u32> = (1..height - 1).collect();
    rng.shuffle(&mut rows);
    let mut builder = ProblemBuilder::switchbox(width, height);
    for (i, &y) in rows.iter().take(nets as usize).enumerate() {
        builder.net(format!("band{i}")).pin_side(PinSide::Left, y).pin_side(PinSide::Right, y);
    }
    builder.build().expect("bands are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switchbox_gen_is_deterministic() {
        let cfg = SwitchboxGen { width: 12, height: 10, nets: 8, seed: 7 };
        let a = cfg.build();
        let b = cfg.build();
        assert_eq!(a.nets(), b.nets());
        assert_eq!(a.nets().len(), 8);
    }

    #[test]
    fn switchbox_gen_seed_changes_instance() {
        let a = SwitchboxGen { width: 12, height: 10, nets: 8, seed: 1 }.build();
        let b = SwitchboxGen { width: 12, height: 10, nets: 8, seed: 2 }.build();
        assert_ne!(a.nets(), b.nets());
    }

    #[test]
    #[should_panic(expected = "boundary too small")]
    fn switchbox_gen_rejects_overfull() {
        let _ = SwitchboxGen { width: 3, height: 3, nets: 50, seed: 0 }.build();
    }

    #[test]
    fn channel_gen_produces_valid_specs() {
        let cfg = ChannelGen { width: 30, nets: 12, extra_pin_pct: 50, span_window: 0, seed: 11 };
        let spec = cfg.build();
        assert_eq!(spec.width(), 30);
        assert_eq!(spec.net_ids().len(), 12);
        assert!(spec.density() >= 1);
        // Determinism.
        assert_eq!(spec, cfg.build());
    }

    #[test]
    fn obstructed_gen_places_obstacles() {
        let cfg = ObstructedGen { width: 20, height: 20, nets: 6, obstacle_pct: 15, seed: 3 };
        let p = cfg.build();
        assert!(!p.obstacles().is_empty());
        assert_eq!(p.nets().len(), 6);
        // Zero obstacle percentage yields no obstacles.
        let clean = ObstructedGen { obstacle_pct: 0, ..cfg }.build();
        assert!(clean.obstacles().is_empty());
    }

    #[test]
    fn chip_gen_is_deterministic_and_mostly_local() {
        let cfg = ChipGen::small(5);
        let a = cfg.build();
        let b = cfg.build();
        assert_eq!(a.nets(), b.nets());
        assert_eq!(a.obstacles(), b.obstacles());
        assert_eq!(a.nets().len(), 700);
        assert!(!a.obstacles().is_empty());
        // The local majority stays within its window; only the long
        // minority (plus window clamping at the chip edge) exceeds it.
        let wide = a
            .nets()
            .iter()
            .filter(|n| {
                let first = n.pins[0].at;
                let bbox = n.pins.iter().fold(route_geom::Rect::cell(first), |acc, p| {
                    acc.union(&route_geom::Rect::cell(p.at))
                });
                bbox.width().max(bbox.height()) > 2 * cfg.span + 1
            })
            .count();
        assert!(wide * 4 < a.nets().len(), "{wide} of {} nets exceed the window", a.nets().len());
    }

    #[test]
    fn chip_gen_seed_changes_instance() {
        let a = ChipGen::small(1).build();
        let b = ChipGen::small(2).build();
        assert_ne!(a.nets(), b.nets());
    }

    #[test]
    fn routable_switchbox_is_routable_by_construction() {
        use route_maze::{sequential, CostModel};
        let p = routable_switchbox(10, 8, 5, 42);
        let out = sequential::route_all(&p, CostModel::default());
        assert!(out.is_complete());
    }
}
