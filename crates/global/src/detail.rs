//! Crossing assignment, parallel per-tile detailed routing, seam
//! stitching and trace paste-back.
//!
//! Two tile-stage execution paths share one paste loop:
//!
//! * The plain path runs every tile once on the batch engine
//!   ([`mighty::RouteEngine`]), exactly as earlier releases did.
//! * The supervised path ([`route_hierarchical_supervised`]) runs every
//!   tile through a [`mighty::Supervisor`] — retry with perturbed
//!   schedules and escalated budgets (seeded `seed ^ tile`), per-tile
//!   fallback chain, best-snapshot salvage — and optionally streams
//!   per-tile outcomes through a crash-safe [`mighty::ChipJournal`] so
//!   a killed run resumes without re-routing finished tiles.
//!
//! Seam repair always runs as an escalation ladder per edge: the
//! configured band first, then a widened band, then a widened band with
//! the net's in-band wiring discarded (re-anchor), and finally a
//! per-net flat rip-and-reroute — so one stubborn seam degrades locally
//! instead of leaning on the whole-chip fallback.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use mighty::{
    ChipJournal, ChipTileRecord, EngineConfig, EngineFault, FallbackChain, InstanceStatus,
    MightyRouter, RecoveryPath, RetryPolicy, RouteEngine, RunJournal, SupervisedOutcome,
    Supervisor,
};
use route_geom::{Layer, Point, Rect};
use route_maze::SearchArena;
use route_model::{
    Grid, NetId, NopObserver, Occupant, Pin, Problem, ProblemBuilder, RouteDb, RouteError,
    RouteObserver, RouteResult, SearchKind, SearchProbe, Step, Trace, TraceId,
};

use crate::plan::plan_with;
use crate::tiles::{TileEdge, TileGrid, TileId};
use crate::{ChipSupervision, GlobalConfig};

/// Work counters of a hierarchical run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalStats {
    /// Tile grid dimensions (columns, rows).
    pub tiles: (u32, u32),
    /// Tile-edge crossings planned.
    pub crossings: usize,
    /// Edges the planner over-subscribed.
    pub overflowed_edges: usize,
    /// Nets dropped from the tiled phase: unplannable over the tile
    /// graph, or unassignable crossings on an over-subscribed edge.
    pub dropped: usize,
    /// Nets that failed inside some tile.
    pub tile_failures: usize,
    /// Nets the flat fallback pass completed.
    pub fallback_completed: usize,
}

/// Chip-flow counters of a hierarchical run: the tile batch, the seam
/// repairs, and the post-stitch cleanup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChipStats {
    /// Tile jobs the batch engine routed (complete or not).
    pub tiles_routed: usize,
    /// Tile jobs lost wholesale: panicked, past their deadline, or
    /// skipped by the feasibility precheck.
    pub tiles_errored: usize,
    /// Tiles completed by a supervised retry (supervised flow only).
    pub tiles_retried: usize,
    /// Tiles completed by a per-tile fallback router (supervised flow
    /// only).
    pub tiles_fell_back: usize,
    /// Tiles whose best partial snapshot was salvaged after every
    /// attempt fell short (supervised flow only; the snapshot still
    /// feeds the seam stage, so a salvaged tile is never an empty tile).
    pub tiles_salvaged: usize,
    /// Seam-repair escalation rungs taken beyond each seam's first
    /// attempt (widened band, re-anchor, per-net flat).
    pub seam_escalations: usize,
    /// Tile edges carrying at least one assigned crossing.
    pub seams: usize,
    /// Seams the stitch pass repaired (at least one incomplete net).
    pub seams_repaired: usize,
    /// Strong rip-ups performed by the rip-up router inside seam bands.
    pub seam_ripups: usize,
    /// Nets the stitch pass completed.
    pub seam_completed: usize,
    /// Concrete boundary-cell crossing pairs assigned to nets.
    pub crossing_pins: usize,
    /// Wire steps reclaimed by the dead-wire prune after routing.
    pub pruned_steps: usize,
    /// Chip-scale infeasibility certificates found by the `--analyze`
    /// precheck (zero when the precheck is off).
    pub analyze_certificates: usize,
    /// Nets the precheck certified unroutable and the pipeline skipped.
    pub certified_nets: usize,
}

/// The result of [`route_hierarchical`].
#[derive(Debug, Clone)]
pub struct GlobalOutcome {
    db: RouteDb,
    failed: Vec<NetId>,
    stats: GlobalStats,
    chip: ChipStats,
    resumed_tiles: usize,
    journal_error: Option<String>,
}

impl GlobalOutcome {
    /// Whether every net was fully connected — including nets dropped at
    /// planning time, which never reach a tile job: completion is always
    /// recomputed from the final database, never from per-phase claims.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The global routing database.
    pub fn db(&self) -> &RouteDb {
        &self.db
    }

    /// Consumes the outcome, returning the database.
    pub fn into_db(self) -> RouteDb {
        self.db
    }

    /// Nets that remain incomplete.
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// Work counters.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Chip-flow counters: tile batch, seam repairs, cleanup.
    pub fn chip_stats(&self) -> &ChipStats {
        &self.chip
    }

    /// Tiles replayed from the chip journal instead of re-routed
    /// (always zero without a journal). Deliberately *not* part of
    /// [`ChipStats`]: a resumed report must be byte-identical to an
    /// uninterrupted one, so resume provenance lives outside it.
    pub fn resumed_tiles(&self) -> usize {
        self.resumed_tiles
    }

    /// The first journal write error or resume-divergence, if any —
    /// the run still completes (recovery must not lose results), but
    /// callers should surface this.
    pub fn journal_error(&self) -> Option<&str> {
        self.journal_error.as_deref()
    }
}

/// Forwards band-local router events to the caller's observer with net
/// ids translated back to the global namespace, counting rip-ups.
struct SeamObserver<'a> {
    /// Band-local net index to global id.
    map: Vec<NetId>,
    inner: &'a mut dyn RouteObserver,
    ripups: usize,
}

impl RouteObserver for SeamObserver<'_> {
    fn on_net_scheduled(&mut self, net: NetId) {
        self.inner.on_net_scheduled(self.map[net.index()]);
    }

    fn on_search_done(&mut self, net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.inner.on_search_done(self.map[net.index()], kind, probe);
    }

    fn on_weak_modification(&mut self, net: NetId, victim: NetId) {
        self.inner.on_weak_modification(self.map[net.index()], self.map[victim.index()]);
    }

    fn on_strong_ripup(&mut self, net: NetId, victim: NetId, rip_count: u32) {
        self.ripups += 1;
        self.inner.on_strong_ripup(self.map[net.index()], self.map[victim.index()], rip_count);
    }

    fn on_penalty_escalation(&mut self, victim: NetId, penalty: u64) {
        self.inner.on_penalty_escalation(self.map[victim.index()], penalty);
    }

    fn on_net_committed(&mut self, net: NetId) {
        self.inner.on_net_committed(self.map[net.index()]);
    }

    fn on_net_failed(&mut self, net: NetId) {
        self.inner.on_net_failed(self.map[net.index()]);
    }
}

/// Routes `problem` hierarchically: plan over tiles, assign crossings,
/// detail-route every tile concurrently on the batch engine, stitch the
/// seams, and (optionally) repair the leftovers flat. See the
/// [crate docs](crate) for the pipeline.
///
/// The routed database is a pure function of the problem and the
/// configuration: any [`GlobalConfig::jobs`] value yields byte-identical
/// checksums, stats and failed sets — unless a per-tile deadline is set,
/// which trades that contract for bounded latency.
///
/// # Panics
///
/// Panics if an internal invariant breaks (a pasted tile trace
/// conflicting with another tile's wiring would be a bug, not an input
/// error).
pub fn route_hierarchical(problem: &Problem, cfg: &GlobalConfig) -> GlobalOutcome {
    route_hierarchical_observed(problem, cfg, &mut NopObserver)
}

/// [`route_hierarchical`] with an observer attached to the seam-stitch
/// repair pass: band-local events are forwarded with global net ids.
/// The tile batch itself is unobserved — its sub-problems renumber nets
/// per tile, so per-net events there would be meaningless to the caller.
///
/// # Panics
///
/// Panics if an internal invariant breaks, like [`route_hierarchical`].
pub fn route_hierarchical_observed(
    problem: &Problem,
    cfg: &GlobalConfig,
    observer: &mut dyn RouteObserver,
) -> GlobalOutcome {
    route_chip(problem, cfg, None, None, observer)
}

/// [`route_hierarchical`] with per-tile supervision and an optional
/// crash-safe journal. Every tile runs through a [`Supervisor`] built
/// from `supervision` — retry under escalated budgets with a
/// per-tile-seeded schedule perturbation (`supervision.seed ^ tile`),
/// then the per-tile fallback chain, then best-snapshot salvage — and,
/// with a journal, finished tiles are persisted as they complete and
/// replayed on resume ([`ChipJournal`]), yielding a byte-identical
/// outcome after a mid-run kill.
///
/// The result is still a pure function of problem, configuration and
/// supervision at any [`GlobalConfig::jobs`] value; journal write
/// errors never abort the run (they latch into
/// [`GlobalOutcome::journal_error`]).
///
/// # Panics
///
/// Panics if an internal invariant breaks, like [`route_hierarchical`].
pub fn route_hierarchical_supervised(
    problem: &Problem,
    cfg: &GlobalConfig,
    supervision: &ChipSupervision,
    journal: Option<&ChipJournal>,
) -> GlobalOutcome {
    route_chip(problem, cfg, Some(supervision), journal, &mut NopObserver)
}

/// The shared pipeline behind every entry point. `supervision` selects
/// the tile-stage execution path; the seam escalation ladder and the
/// paste loop are common.
fn route_chip(
    problem: &Problem,
    cfg: &GlobalConfig,
    supervision: Option<&ChipSupervision>,
    journal: Option<&ChipJournal>,
    observer: &mut dyn RouteObserver,
) -> GlobalOutcome {
    let tiles = TileGrid::new(problem, cfg.tile);
    let base = problem.base_grid();

    // Chip-scale precheck: nets a sound certificate already condemns
    // are excluded from planning, crossing assignment and the fallback.
    let (precertified, analyze_certificates) = if cfg.analyze {
        let report = route_analyze::analyze_chip(problem, cfg.tile);
        (report.certified_nets(), report.certificates().len())
    } else {
        (BTreeSet::new(), 0)
    };
    let global_plan = plan_with(problem, &tiles, cfg.order, &precertified);

    // All real pin slots, to keep crossings off them.
    let pin_slots: BTreeSet<(Point, Layer)> =
        problem.nets().iter().flat_map(|n| n.pins.iter().map(|p| (p.at, p.layer))).collect();

    // Nets crossing each edge.
    let mut edge_nets: BTreeMap<TileEdge, Vec<NetId>> = BTreeMap::new();
    for (idx, edges) in global_plan.net_edges.iter().enumerate() {
        for &e in edges {
            edge_nets.entry(e).or_default().push(NetId(idx as u32));
        }
    }

    // Assign concrete boundary cells per crossing. Nets the planner gave
    // up on are dropped up front; nets whose crossings cannot all be
    // assigned join them. Dropped nets keep only their real pins (as
    // blockers) and fall through to the flat fallback.
    let mut dropped: BTreeSet<NetId> = global_plan.unplanned().iter().copied().collect();
    dropped.extend(precertified.iter().copied());
    let mut crossing_pins: HashMap<(TileId, NetId), Vec<Pin>> = HashMap::new();
    let mut edge_cross: HashMap<(TileEdge, NetId), (Point, Point, Layer)> = HashMap::new();
    for (&edge, nets) in &edge_nets {
        let (layer, pairs) = tiles.edge_cells(edge, &base);
        let usable: Vec<(Point, Point)> = pairs
            .into_iter()
            .filter(|&(pa, pb)| {
                !pin_slots.contains(&(pa, layer)) && !pin_slots.contains(&(pb, layer))
            })
            .collect();
        // Order nets along the edge by the centroid of their pins on the
        // edge's axis, so crossings do not needlessly swap inside tiles.
        let mut ordered = nets.clone();
        let centroid = |id: NetId| -> i64 {
            let net = problem.net(id);
            let sum: i64 = net
                .pins
                .iter()
                .map(|p| if edge.is_horizontal() { p.at.y as i64 } else { p.at.x as i64 })
                .sum();
            sum / net.pins.len() as i64
        };
        ordered.sort_by_key(|&id| (centroid(id), id.0));
        if ordered.len() > usable.len() {
            // Over-subscribed edge: the overflowing nets go flat.
            for &id in &ordered[usable.len()..] {
                dropped.insert(id);
            }
            ordered.truncate(usable.len());
        }
        // Spread the kept nets evenly across the usable offsets.
        let n = ordered.len();
        for (i, &id) in ordered.iter().enumerate() {
            let slot = if n <= 1 { usable.len() / 2 } else { i * (usable.len() - 1) / (n - 1) };
            let (pa, pb) = usable[slot];
            crossing_pins.entry((edge.a, id)).or_default().push(Pin::new(pa, layer));
            crossing_pins.entry((edge.b, id)).or_default().push(Pin::new(pb, layer));
            edge_cross.insert((edge, id), (pa, pb, layer));
        }
    }
    // Purge every crossing of dropped nets.
    crossing_pins.retain(|(_, id), _| !dropped.contains(id));
    edge_cross.retain(|(_, id), _| !dropped.contains(id));
    // Crossing-cell reservations: seam repair must never route one net
    // through another net's (possibly still unwired) crossing cell.
    let mut cross_owner: HashMap<(Point, Layer), NetId> = HashMap::new();
    for (&(_, id), &(pa, pb, layer)) in &edge_cross {
        cross_owner.insert((pa, layer), id);
        cross_owner.insert((pb, layer), id);
    }

    // Per-tile nets: real pins plus crossings.
    let mut tile_nets: BTreeMap<TileId, BTreeMap<NetId, Vec<Pin>>> = BTreeMap::new();
    for net in problem.nets() {
        for pin in &net.pins {
            tile_nets
                .entry(tiles.tile_of(pin.at))
                .or_default()
                .entry(net.id)
                .or_default()
                .push(*pin);
        }
    }
    for ((tile, id), pins) in &crossing_pins {
        tile_nets.entry(*tile).or_default().entry(*id).or_default().extend(pins.iter().copied());
    }

    // Build every tile sub-problem; the tile stage routes them
    // concurrently (tiles are disjoint, so their routings are
    // independent) and delivers results in input order, which keeps the
    // paste deterministic at any job count.
    let mut metas: Vec<TileMeta> = Vec::with_capacity(tile_nets.len());
    let mut subs: Vec<Problem> = Vec::with_capacity(tile_nets.len());
    for (tile, nets) in &tile_nets {
        let rect = tiles.rect(*tile);
        let origin = rect.min();
        let mut builder = ProblemBuilder::switchbox(rect.width(), rect.height());
        builder.layers(problem.layers());
        // Copy the blocked cells of the enabled layers.
        for p in rect.cells() {
            for layer in Layer::ALL.into_iter().take(problem.layers() as usize) {
                if base.occupant(p, layer) == Occupant::Blocked {
                    builder.obstacle_on(Point::new(p.x - origin.x, p.y - origin.y), layer);
                }
            }
        }
        let mut names: Vec<(NetId, String)> = Vec::new();
        for (&id, pins) in nets {
            if dropped.contains(&id) && !pins.iter().any(|p| pin_slots.contains(&(p.at, p.layer))) {
                continue; // dropped net with only crossings here
            }
            let name = problem.net(id).name.clone();
            let mut nb = builder.net(&name);
            for pin in pins {
                // Dropped nets keep only their real pins (as blockers).
                if dropped.contains(&id) && !pin_slots.contains(&(pin.at, pin.layer)) {
                    continue;
                }
                nb.pin_at(Point::new(pin.at.x - origin.x, pin.at.y - origin.y), pin.layer);
            }
            names.push((id, name));
        }
        let sub = builder.build().expect("tile sub-problems are valid by construction");
        metas.push(TileMeta { origin, names });
        subs.push(sub);
    }

    // Journal establishment: per-tile fingerprints gate replay, so an
    // edited chip re-routes instead of replaying stale wiring.
    let mut resumed_tiles = 0usize;
    if let Some(j) = journal {
        let fps: Vec<u64> = subs.iter().zip(&metas).map(|(s, m)| tile_fingerprint(s, m)).collect();
        j.establish(&fps);
        resumed_tiles = j.resumed_count();
    }

    let router = MightyRouter::new(cfg.router);
    let outcomes: Vec<TileOutcome> = if supervision.is_some() || journal.is_some() {
        // A journal without explicit supervision still routes through
        // the supervisor (with zero retries the routing is unchanged)
        // so every tile yields a journal-shaped outcome.
        let zero = ChipSupervision::none();
        let sup = supervision.unwrap_or(&zero);
        supervised_tile_batch(&subs, &metas, cfg, sup, journal)
    } else {
        let mut engine_cfg = EngineConfig::builder()
            .jobs(if cfg.parallel { cfg.jobs.min(mighty::MAX_JOBS) } else { 1 })
            .precheck(cfg.precheck);
        if cfg.tile_deadline_ms > 0 {
            engine_cfg = engine_cfg.deadline_ms(cfg.tile_deadline_ms);
        }
        let engine = RouteEngine::new(engine_cfg.build().expect("knobs validated above"));
        engine.route_batch(&router, &subs).results.into_iter().map(TileOutcome::Plain).collect()
    };

    let mut chip = ChipStats {
        crossing_pins: edge_cross.len(),
        seams: edge_cross.keys().map(|(e, _)| *e).collect::<BTreeSet<_>>().len(),
        analyze_certificates,
        certified_nets: precertified.len(),
        ..ChipStats::default()
    };

    let mut db = RouteDb::new(problem);
    let mut tile_failures: BTreeSet<NetId> = BTreeSet::new();
    for ((meta, sub), outcome) in metas.iter().zip(&subs).zip(outcomes) {
        match outcome {
            TileOutcome::Plain(Ok(routing)) => {
                chip.tiles_routed += 1;
                paste_tile(&mut db, &mut tile_failures, meta, sub, &routing.db, &routing.failed);
            }
            TileOutcome::Plain(Err(_)) => {
                // Panicked, timed out, or certified infeasible: the tile
                // contributes no wiring and all its nets ride on the
                // stitch and fallback passes.
                chip.tiles_errored += 1;
                tile_failures.extend(meta.names.iter().map(|(id, _)| *id));
            }
            TileOutcome::Supervised(out) => {
                account_recovery(&mut chip, &out.path);
                match &out.result {
                    Some(Ok(routing)) => {
                        // Complete or salvaged: both carry real metal —
                        // a salvaged tile feeds the seam stage its best
                        // snapshot instead of an empty tile.
                        chip.tiles_routed += 1;
                        paste_tile(
                            &mut db,
                            &mut tile_failures,
                            meta,
                            sub,
                            &routing.db,
                            &routing.failed,
                        );
                    }
                    _ => {
                        chip.tiles_errored += 1;
                        tile_failures.extend(meta.names.iter().map(|(id, _)| *id));
                    }
                }
            }
            TileOutcome::Replayed(record) => {
                account_recovery(&mut chip, &record.path);
                let routed =
                    matches!(record.status, InstanceStatus::Complete | InstanceStatus::Salvaged);
                match routed.then(|| parse_tile_routes(&record.routes)).flatten() {
                    Some(traces) => {
                        chip.tiles_routed += 1;
                        replay_tile(
                            &mut db,
                            &mut tile_failures,
                            meta,
                            sub,
                            &traces,
                            &record.failed,
                        );
                    }
                    None => {
                        chip.tiles_errored += 1;
                        tile_failures.extend(meta.names.iter().map(|(id, _)| *id));
                    }
                }
            }
        }
    }

    // Incomplete nets after the tile paste, kept incrementally current
    // through the stitch pass.
    let mut incomplete: BTreeSet<NetId> = (0..problem.nets().len() as u32)
        .map(NetId)
        .filter(|&id| !db.is_net_connected(id))
        .collect();
    let after_tiles = incomplete.len();

    // Seam stitching: for every tile edge whose crossing nets are still
    // disconnected, run the rip-up router on a band around the boundary,
    // escalating per edge until its nets connect or the ladder is spent:
    //
    //   rung 0  configured band, in-band wiring replayed   (historical)
    //   rung 1  band widened 2x, in-band wiring replayed
    //   rung 2  band widened 4x, in-band wiring discarded  (re-anchor)
    //   rung 3  per-net flat rip-and-reroute
    //
    // A seam whose rung 0 succeeds behaves byte-identically to earlier
    // releases; the ladder only engages where they failed. Seam faults
    // (`VROUTE_FAULT=...@seam`) fire at rung entry, before any database
    // mutation, so a faulted rung escalates instead of corrupting state.
    if cfg.stitch {
        let seam_fault = supervision.and_then(|s| s.fault.as_ref());
        let mut arena = SearchArena::with_frontier(cfg.router.frontier);
        for (&edge, nets) in &edge_nets {
            let repair: Vec<NetId> = nets
                .iter()
                .copied()
                .filter(|id| !dropped.contains(id) && incomplete.contains(id))
                .collect();
            if repair.is_empty() {
                continue;
            }
            chip.seams_repaired += 1;
            for rung in 0u32..4 {
                let remaining: Vec<NetId> =
                    repair.iter().copied().filter(|&id| !db.is_net_connected(id)).collect();
                if remaining.is_empty() {
                    break;
                }
                if rung > 0 {
                    chip.seam_escalations += 1;
                }
                if let Some(f) = seam_fault.filter(|f| f.applies_seam(rung)) {
                    match f.fault() {
                        EngineFault::Panic => {
                            // A real unwind, isolated here: the rung is
                            // lost, the ladder escalates.
                            let _ = catch_unwind(AssertUnwindSafe(|| {
                                panic!("injected fault: seam panic")
                            }));
                            continue;
                        }
                        EngineFault::SpuriousFail => continue,
                        EngineFault::Delay(ms) => thread::sleep(Duration::from_millis(ms)),
                    }
                }
                match rung {
                    0 | 1 => stitch_edge(
                        problem,
                        &base,
                        &tiles,
                        cfg,
                        &router,
                        edge,
                        &remaining,
                        &edge_cross,
                        &cross_owner,
                        &mut db,
                        &mut arena,
                        observer,
                        &mut chip,
                        1 << rung,
                        StitchMode::Replay,
                    ),
                    2 => stitch_edge(
                        problem,
                        &base,
                        &tiles,
                        cfg,
                        &router,
                        edge,
                        &remaining,
                        &edge_cross,
                        &cross_owner,
                        &mut db,
                        &mut arena,
                        observer,
                        &mut chip,
                        4,
                        StitchMode::Fresh,
                    ),
                    _ => {
                        // Last rung: rip each stubborn net wholesale so
                        // its broken seam wiring cannot block it, then
                        // reroute flat and incrementally — scoped to
                        // this edge's nets, not the whole chip.
                        for &id in &remaining {
                            let tids: Vec<TraceId> = db.traces(id).map(|(tid, _)| tid).collect();
                            for tid in tids {
                                db.rip_up(tid).expect("listed as live above");
                            }
                        }
                        db = router
                            .try_route_incremental(problem, db)
                            .expect("the hierarchical database is built for this problem")
                            .into_db();
                    }
                }
            }
            for id in repair {
                if db.is_net_connected(id) {
                    incomplete.remove(&id);
                }
            }
        }
        // The per-net flat rung may complete nets beyond its own edge's
        // repair set; keep the incomplete set honest either way.
        incomplete.retain(|&id| !db.is_net_connected(id));
        chip.seam_completed = after_tiles - incomplete.len();
    }

    // Post-stitch checkpoint: a resumed run must reproduce the exact
    // pre-fallback database, or its replayed tiles were not equivalent.
    let mut journal_error: Option<String> = None;
    if let Some(j) = journal {
        let checksum = db.checksum();
        if let Some(prev) = j.replayed_checkpoint("stitch") {
            if prev != checksum {
                journal_error = Some(format!(
                    "resume diverged at the stitch checkpoint: journal {prev:016x}, live {checksum:016x}"
                ));
            }
        }
        j.checkpoint("stitch", checksum);
    }

    let mut stats = GlobalStats {
        tiles: (tiles.cols(), tiles.rows()),
        crossings: global_plan.crossings,
        overflowed_edges: global_plan.overflowed_edges,
        dropped: dropped.len(),
        tile_failures: tile_failures.len(),
        fallback_completed: 0,
    };

    // Certified-unroutable nets are not fallback candidates: a sound
    // certificate binds the flat router too, so retrying them is pure
    // waste. If nothing else is incomplete, the fallback is skipped
    // wholesale.
    let fallback_candidates: BTreeSet<NetId> =
        incomplete.difference(&precertified).copied().collect();
    let mut db = if cfg.fallback && !fallback_candidates.is_empty() {
        let outcome = router
            .try_route_incremental(problem, db)
            .expect("the hierarchical database is built for this problem");
        stats.fallback_completed =
            fallback_candidates.iter().filter(|&&id| !outcome.failed().contains(&id)).count();
        outcome.into_db()
    } else {
        db
    };

    // Cleanup: wiring abandoned by failed tiles, ripped seams or the
    // fallback that ended up in components touching no pin is pruned —
    // it only wastes capacity and trips the dead-wire lint (`L008`).
    for id in (0..problem.nets().len() as u32).map(NetId) {
        chip.pruned_steps += db.prune_dangling(id);
    }

    // The failed set is always recomputed from the final database, so
    // planning-dropped nets that never reached a tile job count too.
    let failed: Vec<NetId> = (0..problem.nets().len() as u32)
        .map(NetId)
        .filter(|&id| !db.is_net_connected(id))
        .collect();

    if let Some(j) = journal {
        let checksum = db.checksum();
        if journal_error.is_none() {
            if let Some(prev) = j.replayed_checkpoint("final") {
                if prev != checksum {
                    journal_error = Some(format!(
                        "resume diverged at the final checkpoint: journal {prev:016x}, live {checksum:016x}"
                    ));
                }
            }
        }
        j.checkpoint("final", checksum);
        if journal_error.is_none() {
            journal_error = j.take_error();
        }
    }

    GlobalOutcome { db, failed, stats, chip, resumed_tiles, journal_error }
}

/// Per-tile paste metadata: the tile's origin and its (global id, name)
/// pairs, in sub-problem declaration order.
struct TileMeta {
    origin: Point,
    names: Vec<(NetId, String)>,
}

/// One tile's result entering the paste loop.
enum TileOutcome {
    /// Plain batch-engine result (unsupervised flow).
    Plain(RouteResult),
    /// Live supervised outcome.
    Supervised(SupervisedOutcome),
    /// Journal-replayed record of a previous run's outcome.
    Replayed(ChipTileRecord),
}

/// Bumps the supervised recovery counters for one tile's path.
fn account_recovery(chip: &mut ChipStats, path: &RecoveryPath) {
    match path {
        RecoveryPath::Retried { .. } => chip.tiles_retried += 1,
        RecoveryPath::FellBack { .. } => chip.tiles_fell_back += 1,
        RecoveryPath::Salvaged => chip.tiles_salvaged += 1,
        RecoveryPath::Direct | RecoveryPath::Failed => {}
    }
}

/// Pastes one tile's local routing into the global database: failed
/// locals join the tile-failure set, traces translate by the tile
/// origin. Shared by the live paths and (via the same ordering) the
/// journal replay, which is what keeps resumed databases byte-identical.
fn paste_tile(
    db: &mut RouteDb,
    tile_failures: &mut BTreeSet<NetId>,
    meta: &TileMeta,
    sub: &Problem,
    tile_db: &RouteDb,
    failed: &[NetId],
) {
    let origin = meta.origin;
    for (global_id, name) in &meta.names {
        let local = sub.net_by_name(name).expect("declared above");
        if failed.contains(&local.id) {
            tile_failures.insert(*global_id);
        }
        for (_, trace) in tile_db.traces(local.id) {
            let steps: Vec<Step> = trace
                .steps()
                .iter()
                .map(|s| Step::new(Point::new(s.at.x + origin.x, s.at.y + origin.y), s.layer))
                .collect();
            let trace = Trace::from_steps(steps).expect("translation preserves contiguity");
            db.commit(*global_id, trace)
                .expect("tiles are disjoint, so pasted traces cannot conflict");
        }
    }
}

/// Pastes a journal-replayed tile: the serialized traces were captured
/// in [`paste_tile`]'s iteration order, so committing them in stored
/// order reproduces the live paste exactly.
fn replay_tile(
    db: &mut RouteDb,
    tile_failures: &mut BTreeSet<NetId>,
    meta: &TileMeta,
    sub: &Problem,
    traces: &[(u32, Vec<Step>)],
    failed: &[u32],
) {
    let origin = meta.origin;
    let mut to_global: HashMap<u32, NetId> = HashMap::new();
    for (global_id, name) in &meta.names {
        let local = sub.net_by_name(name).expect("declared above");
        to_global.insert(local.id.0, *global_id);
    }
    for &id in failed {
        if let Some(gid) = to_global.get(&id) {
            tile_failures.insert(*gid);
        }
    }
    for (local, steps) in traces {
        let Some(gid) = to_global.get(local) else { continue };
        let steps: Vec<Step> = steps
            .iter()
            .map(|s| Step::new(Point::new(s.at.x + origin.x, s.at.y + origin.y), s.layer))
            .collect();
        let trace = Trace::from_steps(steps).expect("journaled traces preserve contiguity");
        db.commit(*gid, trace).expect("replayed tile wiring pastes like live wiring");
    }
}

/// Fingerprint of a tile sub-problem — origin, dimensions, obstacles,
/// nets and pins — used to key journal records so an edited chip never
/// replays stale wiring.
fn tile_fingerprint(sub: &Problem, meta: &TileMeta) -> u64 {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = write!(
        text,
        "tile {},{} {}x{} L{};",
        meta.origin.x,
        meta.origin.y,
        sub.width(),
        sub.height(),
        sub.layers()
    );
    for (at, layer) in sub.obstacles() {
        let _ = write!(text, "o{},{},{:?};", at.x, at.y, layer.map(Layer::index));
    }
    for net in sub.nets() {
        let _ = write!(text, "n{}:", net.name);
        for pin in &net.pins {
            let _ = write!(text, "{},{},{};", pin.at.x, pin.at.y, pin.layer.index());
        }
    }
    RunJournal::fingerprint(&text)
}

/// Serializes a tile's local routing for the chip journal, in
/// [`paste_tile`] iteration order: `LOCAL:x,y,l;x,y,l|LOCAL:...` — one
/// part per trace, steps in trace order.
fn serialize_tile_routes(sub: &Problem, names: &[(NetId, String)], tile_db: &RouteDb) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (_, name) in names {
        let local = sub.net_by_name(name).expect("declared in the sub-problem");
        for (_, trace) in tile_db.traces(local.id) {
            let steps: Vec<String> = trace
                .steps()
                .iter()
                .map(|s| format!("{},{},{}", s.at.x, s.at.y, s.layer.index()))
                .collect();
            parts.push(format!("{}:{}", local.id.0, steps.join(";")));
        }
    }
    parts.join("|")
}

/// Parses [`serialize_tile_routes`]'s output. `None` marks a malformed
/// payload (the tile then re-routes as if it had errored).
fn parse_tile_routes(routes: &str) -> Option<Vec<(u32, Vec<Step>)>> {
    let mut out = Vec::new();
    for part in routes.split('|') {
        if part.is_empty() {
            continue;
        }
        let (id, steps_text) = part.split_once(':')?;
        let id: u32 = id.parse().ok()?;
        let mut steps = Vec::new();
        for s in steps_text.split(';') {
            let mut it = s.split(',');
            let x: i32 = it.next()?.parse().ok()?;
            let y: i32 = it.next()?.parse().ok()?;
            let l: usize = it.next()?.parse().ok()?;
            steps.push(Step::new(Point::new(x, y), *Layer::ALL.get(l)?));
        }
        out.push((id, steps));
    }
    Some(out)
}

/// Builds the journal record for one live supervised tile outcome.
fn tile_record(
    index: usize,
    fingerprint: u64,
    sub: &Problem,
    meta: &TileMeta,
    outcome: &SupervisedOutcome,
) -> ChipTileRecord {
    let mut record = ChipTileRecord {
        index,
        fingerprint,
        status: outcome.status(),
        path: outcome.path.clone(),
        attempts: outcome.attempts,
        routes: String::new(),
        failed: Vec::new(),
        error: None,
    };
    match &outcome.result {
        Some(Ok(routing)) => {
            record.routes = serialize_tile_routes(sub, &meta.names, &routing.db);
            record.failed = routing.failed.iter().map(|id| id.0).collect();
        }
        Some(Err(e)) => record.error = Some(e.to_string()),
        None => {}
    }
    if let Some(salvage) = &outcome.salvage {
        record.error = Some(salvage.terminal.clone());
    }
    record
}

/// Routes one tile through the full recovery chain: retry with a
/// per-tile-seeded schedule perturbation, the per-tile fallback chain,
/// then best-snapshot salvage.
fn supervise_tile(
    cfg: &GlobalConfig,
    sup: &ChipSupervision,
    sub: &Problem,
    tile: usize,
    deadline: Option<Duration>,
) -> SupervisedOutcome {
    let retry = RetryPolicy {
        attempts: sup.retries.saturating_add(1),
        seed: sup.seed ^ tile as u64,
        ..RetryPolicy::default()
    };
    let mut supervisor = Supervisor::new(cfg.router, retry);
    if sup.fallback {
        supervisor = supervisor.with_fallbacks(FallbackChain::lee());
    }
    if let Some(fault) = &sup.fault {
        supervisor = supervisor.with_tile_fault(fault.clone());
    }
    supervisor.route_supervised(sub, tile, deadline)
}

/// The supervised tile stage: workers claim tiles from a shared
/// counter; each tile either replays from the journal or routes through
/// its [`Supervisor`], with its outcome persisted (fsync'd) as soon as
/// it is known. Results are delivered in tile order regardless of
/// worker count, so the paste stays deterministic.
fn supervised_tile_batch(
    subs: &[Problem],
    metas: &[TileMeta],
    cfg: &GlobalConfig,
    sup: &ChipSupervision,
    journal: Option<&ChipJournal>,
) -> Vec<TileOutcome> {
    let n = subs.len();
    let requested = if cfg.parallel { cfg.jobs.min(mighty::MAX_JOBS) } else { 1 };
    let jobs = if requested == 0 {
        thread::available_parallelism().map(|j| j.get()).unwrap_or(1)
    } else {
        requested
    }
    .min(n)
    .max(1);
    let deadline = (cfg.tile_deadline_ms > 0).then(|| Duration::from_millis(cfg.tile_deadline_ms));

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, TileOutcome)>();
    thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if let Some(record) = journal.and_then(|j| j.replay(i)) {
                    if tx.send((i, TileOutcome::Replayed(record))).is_err() {
                        break;
                    }
                    continue;
                }
                if let Some(j) = journal {
                    j.begin(i);
                }
                let outcome = if cfg.precheck {
                    match route_analyze::analyze_problem(&subs[i]).certificates().first() {
                        Some(cert) => SupervisedOutcome {
                            path: RecoveryPath::Failed,
                            attempts: 0,
                            result: Some(Err(RouteError::Infeasible { reason: cert.summary() })),
                            salvage: None,
                        },
                        None => supervise_tile(cfg, sup, &subs[i], i, deadline),
                    }
                } else {
                    supervise_tile(cfg, sup, &subs[i], i, deadline)
                };
                if let Some(j) = journal {
                    let fp = j.tile_fingerprint(i).unwrap_or(0);
                    j.finish(&tile_record(i, fp, &subs[i], &metas[i], &outcome));
                }
                if tx.send((i, TileOutcome::Supervised(outcome))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<TileOutcome>> = (0..n).map(|_| None).collect();
    for (i, outcome) in rx {
        slots[i] = Some(outcome);
    }
    slots.into_iter().map(|s| s.expect("every claimed tile reports exactly once")).collect()
}

/// How a seam repair treats the repair nets' pre-existing in-band
/// wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StitchMode {
    /// Replay it into the band database as a starting point (the
    /// rip-up router may still push or rip it).
    Replay,
    /// Discard it and re-anchor: only the cut points survive, so wiring
    /// that painted the band into a corner cannot do so again.
    Fresh,
}

/// Repairs one seam: rips the repair nets' wiring inside a band around
/// `edge` (widened by `scale`), rebuilds it as a sub-problem (foreign
/// wiring, foreign pins and reserved crossing cells become obstacles;
/// crossing cells, band pins and the cut points of the net's own wiring
/// become pins), and re-routes it incrementally with the rip-up router.
#[allow(clippy::too_many_arguments)]
fn stitch_edge(
    problem: &Problem,
    base: &Grid,
    tiles: &TileGrid,
    cfg: &GlobalConfig,
    router: &MightyRouter,
    edge: TileEdge,
    repair: &[NetId],
    edge_cross: &HashMap<(TileEdge, NetId), (Point, Point, Layer)>,
    cross_owner: &HashMap<(Point, Layer), NetId>,
    db: &mut RouteDb,
    arena: &mut SearchArena,
    observer: &mut dyn RouteObserver,
    chip: &mut ChipStats,
    scale: u32,
    mode: StitchMode,
) {
    let ra = tiles.rect(edge.a);
    let rb = tiles.rect(edge.b);
    let w = (cfg.stitch_band.max(1) * scale.max(1)) as i32;
    let band = if edge.is_horizontal() {
        let x0 = (ra.max().x - (w - 1)).max(ra.min().x);
        let x1 = (rb.min().x + (w - 1)).min(rb.max().x);
        Rect::new(Point::new(x0, ra.min().y), Point::new(x1, ra.max().y))
    } else {
        let y0 = (ra.max().y - (w - 1)).max(ra.min().y);
        let y1 = (rb.min().y + (w - 1)).min(rb.max().y);
        Rect::new(Point::new(ra.min().x, y0), Point::new(ra.max().x, y1))
    };
    let origin = band.min();
    let localize = |p: Point| Point::new(p.x - origin.x, p.y - origin.y);
    let globalize = |p: Point| Point::new(p.x + origin.x, p.y + origin.y);
    let repair_set: BTreeSet<NetId> = repair.iter().copied().collect();

    // Surgery: rip every trace of a repair net that enters the band,
    // re-commit its out-of-band runs unchanged, keep its in-band runs
    // for replay, and record the cut points as anchors the repair must
    // keep connected.
    let mut kept: BTreeMap<NetId, Vec<Trace>> = BTreeMap::new();
    let mut anchors: BTreeMap<NetId, BTreeSet<(Point, Layer)>> = BTreeMap::new();
    for &id in repair {
        let cut: Vec<TraceId> = db
            .traces(id)
            .filter(|(_, t)| t.steps().iter().any(|s| band.contains(s.at)))
            .map(|(tid, _)| tid)
            .collect();
        for tid in cut {
            let trace = db.rip_up(tid).expect("listed as live above");
            let steps = trace.steps();
            let mut run: Vec<Step> = Vec::new();
            let mut run_inside = band.contains(steps[0].at);
            for (i, &s) in steps.iter().enumerate() {
                let inside = band.contains(s.at);
                if inside != run_inside {
                    let anchor = if run_inside { steps[i - 1] } else { s };
                    anchors.entry(id).or_default().insert((anchor.at, anchor.layer));
                    flush_run(db, &mut kept, id, &mut run, run_inside);
                    run_inside = inside;
                }
                run.push(s);
            }
            flush_run(db, &mut kept, id, &mut run, run_inside);
        }
    }

    // The band sub-problem: everything the repair nets may not touch is
    // an obstacle — base blocks, wiring and pins of foreign nets (pins
    // are grid-marked at construction), and crossing cells reserved for
    // nets outside the repair set.
    let mut blocked: BTreeSet<(Point, Layer)> = BTreeSet::new();
    for p in band.cells() {
        for layer in Layer::ALL.into_iter().take(problem.layers() as usize) {
            let foreign_wire = matches!(db.grid().occupant(p, layer), Occupant::Net(n) if !repair_set.contains(&n));
            let foreign_cross =
                cross_owner.get(&(p, layer)).is_some_and(|n| !repair_set.contains(n));
            if base.occupant(p, layer) == Occupant::Blocked || foreign_wire || foreign_cross {
                blocked.insert((p, layer));
            }
        }
    }
    let mut members: Vec<(NetId, BTreeSet<(Point, Layer)>)> = Vec::new();
    for &id in repair {
        let mut pins: BTreeSet<(Point, Layer)> = BTreeSet::new();
        let &(pa, pb, layer) = edge_cross.get(&(edge, id)).expect("repair nets cross this edge");
        pins.insert((pa, layer));
        pins.insert((pb, layer));
        for p in &problem.net(id).pins {
            if band.contains(p.at) {
                pins.insert((p.at, p.layer));
            }
        }
        if let Some(set) = anchors.get(&id) {
            pins.extend(set.iter().copied());
        }
        members.push((id, pins));
    }
    // Foreign wiring can legally sit on a repair net's crossing cell:
    // a per-net flat repair of an *earlier* edge routes over the full
    // grid, where reservations do not bind. Such a net cannot be
    // repaired in this band — restore its ripped wiring and leave it
    // to its own flat rung. Once evicted, the net is foreign to the
    // band: its restored wiring, its grid-marked pins, and its
    // reserved crossing cells all join the obstacle set, which may
    // evict further nets — iterate to a fixpoint before any net is
    // declared in the band problem.
    loop {
        let mut evicted = false;
        members.retain(|(id, pins)| {
            if !pins.iter().any(|p| blocked.contains(p)) {
                return true;
            }
            for t in kept.remove(id).into_iter().flatten() {
                for s in t.steps() {
                    blocked.insert((s.at, s.layer));
                }
                db.commit(*id, t).expect("restoring just-ripped wiring");
            }
            blocked.extend(pins.iter().copied());
            evicted = true;
            false
        });
        if !evicted {
            break;
        }
    }
    if members.is_empty() {
        return;
    }
    let mut builder = ProblemBuilder::switchbox(band.width(), band.height());
    builder.layers(problem.layers());
    for &(p, layer) in &blocked {
        builder.obstacle_on(localize(p), layer);
    }
    let mut names: Vec<(NetId, String)> = Vec::new();
    for (id, pins) in &members {
        let name = problem.net(*id).name.clone();
        let mut nb = builder.net(&name);
        for &(at, layer) in pins {
            nb.pin_at(localize(at), layer);
        }
        names.push((*id, name));
    }
    let band_problem = match builder.build() {
        Ok(p) => p,
        Err(e) => {
            // A reservation hole would surface here; restore the ripped
            // wiring and leave the seam to the flat fallback.
            debug_assert!(false, "seam band problem must build: {e}");
            for (id, runs) in kept {
                for t in runs {
                    db.commit(id, t).expect("restoring just-ripped wiring");
                }
            }
            return;
        }
    };

    // Replay the kept in-band runs, then let the rip-up router repair
    // the band incrementally: it may push or rip the replayed wiring.
    // In [`StitchMode::Fresh`] the kept runs are discarded instead —
    // the band starts empty and only the anchors constrain it.
    let mut band_db = RouteDb::new(&band_problem);
    if mode == StitchMode::Replay {
        for (gid, name) in &names {
            let local = band_problem.net_by_name(name).expect("declared above");
            for t in kept.get(gid).into_iter().flatten() {
                let steps: Vec<Step> =
                    t.steps().iter().map(|s| Step::new(localize(s.at), s.layer)).collect();
                let t = Trace::from_steps(steps).expect("translation preserves contiguity");
                band_db.commit(local.id, t).expect("kept runs lie in the band, off foreign wiring");
            }
        }
    }
    let name_to_global: HashMap<&str, NetId> =
        names.iter().map(|(id, name)| (name.as_str(), *id)).collect();
    let map: Vec<NetId> =
        band_problem.nets().iter().map(|n| name_to_global[n.name.as_str()]).collect();
    let mut seam_obs = SeamObserver { map, inner: observer, ripups: 0 };
    let outcome = router
        .try_route_incremental_observed_in(&band_problem, band_db, arena, &mut seam_obs)
        .expect("the band database is built for the band problem");
    chip.seam_ripups += seam_obs.ripups;

    for (gid, name) in &names {
        let local = band_problem.net_by_name(name).expect("declared above");
        for (_, trace) in outcome.db().traces(local.id) {
            let steps: Vec<Step> =
                trace.steps().iter().map(|s| Step::new(globalize(s.at), s.layer)).collect();
            let t = Trace::from_steps(steps).expect("translation preserves contiguity");
            db.commit(*gid, t).expect("the band result respects foreign occupancy");
        }
    }
}

/// Flushes an accumulated sub-path of a ripped trace: out-of-band runs
/// go straight back into the database, in-band runs are kept for replay
/// inside the band sub-problem.
fn flush_run(
    db: &mut RouteDb,
    kept: &mut BTreeMap<NetId, Vec<Trace>>,
    id: NetId,
    run: &mut Vec<Step>,
    inside: bool,
) {
    if run.is_empty() {
        return;
    }
    let t = Trace::from_steps(std::mem::take(run)).expect("a contiguous sub-path");
    if inside {
        kept.entry(id).or_default().push(t);
    } else {
        db.commit(id, t).expect("re-committing just-ripped wiring");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mighty::RouterConfig;
    use route_benchdata::gen::{ChipGen, ObstructedGen, SwitchboxGen};
    use route_model::{EventLog, PinSide};
    use route_verify::verify;

    fn hierarchical(problem: &Problem, tile: u32, fallback: bool) -> GlobalOutcome {
        let cfg = GlobalConfig { tile, fallback, ..GlobalConfig::default() };
        let out = route_hierarchical(problem, &cfg);
        let report = verify(problem, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "hierarchical routing must stay legal: {report}"
        );
        out
    }

    #[test]
    fn straight_nets_route_across_tiles() {
        let mut b = ProblemBuilder::switchbox(32, 8);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 5);
        b.net("b").pin_side(PinSide::Left, 5).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
        assert!(out.stats().crossings >= 6, "both nets cross three edges");
    }

    #[test]
    fn random_floorplan_routes_without_fallback_mostly() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let out = hierarchical(&p, 16, false);
        // Most nets complete through the tiled phase alone.
        assert!(
            out.failed().len() <= 3,
            "too many tiled-phase failures: {:?} ({:?})",
            out.failed(),
            out.stats()
        );
    }

    #[test]
    fn fallback_completes_what_tiles_cannot() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let without = hierarchical(&p, 16, false);
        let with = hierarchical(&p, 16, true);
        assert!(with.failed().len() <= without.failed().len());
        if without.failed().len() > with.failed().len() {
            assert!(with.stats().fallback_completed > 0);
        }
    }

    #[test]
    fn obstructed_floorplan_stays_legal() {
        let p =
            ObstructedGen { width: 36, height: 36, nets: 10, obstacle_pct: 12, seed: 4 }.build();
        let out = hierarchical(&p, 12, true);
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn multi_pin_net_connects_through_tile_tree() {
        let mut b = ProblemBuilder::switchbox(24, 24);
        b.net("t")
            .pin_side(PinSide::Left, 12)
            .pin_side(PinSide::Right, 12)
            .pin_side(PinSide::Top, 12)
            .pin_side(PinSide::Bottom, 12);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
    }

    #[test]
    fn intra_tile_problem_degenerates_to_flat() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 16, false);
        assert!(out.is_complete());
        assert_eq!(out.stats().tiles, (1, 1));
        assert_eq!(out.stats().crossings, 0);
    }

    /// Regression test for the dropped-net completion lie: a net the
    /// planner can never route over the tile graph (capacity-zero cut)
    /// is handed to no tile job, so a failed set assembled from tile
    /// results alone would miss it and `is_complete` would claim
    /// success. The failed set must come from the final database.
    #[test]
    fn planning_dropped_nets_count_as_failed() {
        let mut b = ProblemBuilder::switchbox(16, 8);
        // A full-stack wall on the boundary columns between the tiles.
        b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
        b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert_eq!(out.stats().dropped, 1, "the net is dropped at planning time");
        assert!(!out.is_complete(), "a dropped net is not a routed net");
        assert_eq!(out.failed(), &[NetId(0)]);
        // With the fallback enabled the wall still blocks everything:
        // the net must stay failed rather than vanish from accounting.
        let out = hierarchical(&p, 8, true);
        assert!(!out.is_complete());
        assert_eq!(out.failed(), &[NetId(0)]);
    }

    #[test]
    fn analyze_gate_skips_certified_nets_and_their_fallback() {
        let mut b = ProblemBuilder::switchbox(16, 8);
        // A full-stack wall on the boundary columns: F006 at tile 8.
        b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
        b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let cfg = GlobalConfig { tile: 8, analyze: true, ..GlobalConfig::default() };
        let out = route_hierarchical(&p, &cfg);
        assert!(!out.is_complete());
        assert_eq!(out.failed(), &[NetId(0)]);
        assert!(out.chip_stats().analyze_certificates > 0, "{:?}", out.chip_stats());
        assert_eq!(out.chip_stats().certified_nets, 1);
        assert_eq!(out.stats().fallback_completed, 0, "certified nets skip the fallback");
        // On a feasible chip the gate finds nothing and the result is
        // byte-identical to a run without it.
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let off = route_hierarchical(&p, &GlobalConfig { tile: 16, ..GlobalConfig::default() });
        let on = route_hierarchical(
            &p,
            &GlobalConfig { tile: 16, analyze: true, ..GlobalConfig::default() },
        );
        assert_eq!(off.db().checksum(), on.db().checksum());
        assert_eq!(off.failed(), on.failed());
        assert_eq!(on.chip_stats().certified_nets, 0);
    }

    #[test]
    fn job_count_is_checksum_inert() {
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(3) }.build();
        let route = |jobs: usize| {
            let cfg = GlobalConfig { tile: 16, jobs, ..GlobalConfig::default() };
            route_hierarchical(&p, &cfg)
        };
        let one = route(1);
        let four = route(4);
        assert_eq!(one.db().checksum(), four.db().checksum());
        assert_eq!(one.failed(), four.failed());
        assert_eq!(one.stats(), four.stats());
        assert_eq!(one.chip_stats(), four.chip_stats());
    }

    #[test]
    fn chip_stats_account_for_the_tile_batch() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let out = hierarchical(&p, 16, true);
        let chip = out.chip_stats();
        assert_eq!(chip.tiles_routed, 4, "every tile routes on this clean instance");
        assert_eq!(chip.tiles_errored, 0);
        assert!(chip.crossing_pins > 0);
        assert!(chip.seams > 0);
        assert!(chip.seams_repaired <= chip.seams);
    }

    #[test]
    fn seam_events_carry_global_net_ids() {
        let p =
            ChipGen { width: 48, height: 48, nets: 170, macros: 3, ..ChipGen::small(11) }.build();
        let cfg = GlobalConfig { tile: 12, fallback: false, ..GlobalConfig::default() };
        let mut log = EventLog::default();
        let observed = route_hierarchical_observed(&p, &cfg, &mut log);
        // Observation is inert: same database as the unobserved run.
        let plain = route_hierarchical(&p, &cfg);
        assert_eq!(observed.db().checksum(), plain.db().checksum());
        assert_eq!(observed.failed(), plain.failed());
        // Every forwarded event names real global nets.
        use route_model::RouteEvent;
        for ev in log.events() {
            let ids: Vec<NetId> = match *ev {
                RouteEvent::NetScheduled { net }
                | RouteEvent::NetCommitted { net }
                | RouteEvent::NetFailed { net }
                | RouteEvent::SearchDone { net, .. } => vec![net],
                RouteEvent::WeakModification { net, victim }
                | RouteEvent::StrongRipup { net, victim, .. } => vec![net, victim],
                RouteEvent::PenaltyEscalation { victim, .. } => vec![victim],
            };
            for id in ids {
                assert!(id.index() < p.nets().len(), "event names unknown net {id:?}");
            }
        }
        if observed.chip_stats().seams_repaired > 0 {
            assert!(!log.events().is_empty(), "seam repairs must emit events");
        }
    }

    #[test]
    fn supervised_flow_without_recovery_matches_plain_routing() {
        // Supervision with zero retries and no fallback routes each
        // tile exactly once, like the plain engine path: the database
        // must come out byte-identical.
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let plain = route_hierarchical(&p, &cfg);
        let supervised = route_hierarchical_supervised(&p, &cfg, &ChipSupervision::none(), None);
        assert_eq!(plain.db().checksum(), supervised.db().checksum());
        assert_eq!(plain.failed(), supervised.failed());
        assert_eq!(supervised.chip_stats().tiles_retried, 0);
        assert_eq!(supervised.chip_stats().tiles_salvaged, 0);
        assert_eq!(supervised.resumed_tiles(), 0);
        assert_eq!(supervised.journal_error(), None);
    }

    #[test]
    fn supervised_flow_is_jobs_inert() {
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(3) }.build();
        let sup = ChipSupervision { retries: 2, seed: 7, ..ChipSupervision::default() };
        let route = |jobs: usize| {
            let cfg = GlobalConfig { tile: 16, jobs, ..GlobalConfig::default() };
            route_hierarchical_supervised(&p, &cfg, &sup, None)
        };
        let one = route(1);
        let four = route(4);
        assert_eq!(one.db().checksum(), four.db().checksum());
        assert_eq!(one.failed(), four.failed());
        assert_eq!(one.stats(), four.stats());
        assert_eq!(one.chip_stats(), four.chip_stats());
    }

    #[test]
    fn injected_tile_fault_is_recovered_and_accounted() {
        use mighty::FaultPlan;
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let sup = ChipSupervision::default();
        let clean = route_hierarchical_supervised(&p, &cfg, &sup, None);
        // Panic tile 1's first attempt: the retry recovers it, so the
        // chip completes exactly as well as the unfaulted run — the
        // recovered tile's wiring comes from a perturbed re-attempt, so
        // only completion parity (not byte parity) is promised.
        let faulted = ChipSupervision {
            fault: Some(FaultPlan::parse("panic@tile:1").expect("valid spec")),
            ..sup.clone()
        };
        let out = route_hierarchical_supervised(&p, &cfg, &faulted, None);
        assert!(
            out.chip_stats().tiles_retried > clean.chip_stats().tiles_retried,
            "the panicked tile must be recovered by a retry: {:?} vs {:?}",
            out.chip_stats(),
            clean.chip_stats()
        );
        assert_eq!(out.chip_stats().tiles_errored, 0, "{:?}", out.chip_stats());
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
        // A fault aimed past the tile grid never fires, so the run is
        // byte-identical to the unfaulted one.
        let inert = ChipSupervision {
            fault: Some(FaultPlan::parse("panic@tile:99").expect("valid spec")),
            ..sup.clone()
        };
        let out = route_hierarchical_supervised(&p, &cfg, &inert, None);
        assert_eq!(out.db().checksum(), clean.db().checksum());
        assert_eq!(out.chip_stats(), clean.chip_stats());
    }

    #[test]
    fn persistent_tile_fault_errors_the_tile_without_poisoning_the_chip() {
        // Fail *every* attempt of tile 0 (the fault's attempt budget
        // outlasts retries and there is no fallback): no attempt yields
        // a snapshot, so the tile is errored — and the rest of the chip
        // still routes and verifies.
        use mighty::FaultPlan;
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let cfg = GlobalConfig { tile: 16, fallback: false, ..GlobalConfig::default() };
        let sup = ChipSupervision {
            retries: 1,
            fallback: false,
            seed: 0,
            fault: Some(FaultPlan::parse("fail@tile:0@99").expect("valid spec")),
        };
        let out = route_hierarchical_supervised(&p, &cfg, &sup, None);
        assert_eq!(out.chip_stats().tiles_errored, 1, "{:?}", out.chip_stats());
        assert!(out.chip_stats().tiles_routed > 0, "{:?}", out.chip_stats());
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn starved_tiles_salvage_their_best_snapshot() {
        // A starved per-tile budget leaves nets unrouted in dense
        // tiles; with retries exhausted and no fallback the supervisor
        // salvages the best partial snapshot, which still reaches the
        // database (a salvaged tile is never an empty tile).
        let starved = RouterConfig::builder()
            .max_attempts(1)
            .max_events(8)
            .build()
            .expect("starved config is valid");
        let p = SwitchboxGen { width: 12, height: 10, nets: 12, seed: 23 }.build();
        let cfg =
            GlobalConfig { tile: 8, router: starved, fallback: false, ..GlobalConfig::default() };
        let sup = ChipSupervision { retries: 1, fallback: false, seed: 0x5eed, fault: None };
        let out = route_hierarchical_supervised(&p, &cfg, &sup, None);
        assert!(out.chip_stats().tiles_salvaged > 0, "{:?}", out.chip_stats());
        assert!(out.db().checksum() != 0, "salvaged snapshots must carry wiring");
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn journal_resume_replays_tiles_byte_identically() {
        let dir = std::env::temp_dir().join("vroute-chip-journal-detail");
        let _ = std::fs::remove_dir_all(&dir);
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(3) }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let sup = ChipSupervision::default();

        // Uninterrupted journaled run.
        let journal = ChipJournal::create(&dir).expect("journal dir");
        let first = route_hierarchical_supervised(&p, &cfg, &sup, Some(&journal));
        assert_eq!(first.journal_error(), None);
        assert_eq!(first.resumed_tiles(), 0);
        drop(journal);

        // Simulated kill: truncate the log to its first 60% of bytes,
        // as a SIGKILL mid-run would, then resume.
        let path = dir.join(ChipJournal::FILE_NAME);
        let text = std::fs::read_to_string(&path).expect("journal written");
        let cut = text.len() * 6 / 10;
        std::fs::write(&path, &text.as_bytes()[..cut]).expect("truncate journal");

        let journal = ChipJournal::resume(&dir).expect("journal reopens");
        let resumed = route_hierarchical_supervised(&p, &cfg, &sup, Some(&journal));
        assert!(resumed.resumed_tiles() > 0, "the surviving prefix must replay");
        assert_eq!(resumed.journal_error(), None, "replayed tiles reproduce the run");
        assert_eq!(first.db().checksum(), resumed.db().checksum());
        assert_eq!(first.failed(), resumed.failed());
        assert_eq!(first.stats(), resumed.stats());
        assert_eq!(first.chip_stats(), resumed.chip_stats());

        // A third run over the now-complete journal replays everything.
        drop(journal);
        let journal = ChipJournal::resume(&dir).expect("journal reopens");
        let replayed = route_hierarchical_supervised(&p, &cfg, &sup, Some(&journal));
        assert!(replayed.resumed_tiles() > resumed.resumed_tiles());
        assert_eq!(replayed.journal_error(), None);
        assert_eq!(first.db().checksum(), replayed.db().checksum());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_only_run_matches_unsupervised_checksum() {
        // A journal without supervision must not change the routing:
        // the supervisor runs with zero retries and no fallback, so the
        // database checksum matches the plain flow exactly.
        let dir = std::env::temp_dir().join("vroute-chip-journal-plain");
        let _ = std::fs::remove_dir_all(&dir);
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let plain = route_hierarchical(&p, &cfg);
        let journal = ChipJournal::create(&dir).expect("journal dir");
        let journaled =
            route_hierarchical_supervised(&p, &cfg, &ChipSupervision::none(), Some(&journal));
        assert_eq!(plain.db().checksum(), journaled.db().checksum());
        assert_eq!(plain.failed(), journaled.failed());
        assert_eq!(journaled.journal_error(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stitched_databases_carry_no_dead_wire() {
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(7) }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let out = route_hierarchical(&p, &cfg);
        let lint = route_analyze::lint_db(&p, out.db());
        assert!(
            lint.findings().iter().all(|f| f.rule().code != "L008"),
            "dead wire after prune: {:?}",
            lint.diagnostics()
        );
    }
}
