//! Crossing assignment, per-tile detailed routing and trace paste-back.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use mighty::MightyRouter;
use route_geom::{Layer, Point};
use route_model::{NetId, Occupant, Pin, Problem, ProblemBuilder, RouteDb, Step, Trace};

use crate::plan::plan;
use crate::tiles::{TileEdge, TileGrid, TileId};
use crate::GlobalConfig;

/// Work counters of a hierarchical run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalStats {
    /// Tile grid dimensions (columns, rows).
    pub tiles: (u32, u32),
    /// Tile-edge crossings planned.
    pub crossings: usize,
    /// Edges the planner over-subscribed.
    pub overflowed_edges: usize,
    /// Nets dropped from the tiled phase (unassignable crossings).
    pub dropped: usize,
    /// Nets that failed inside some tile.
    pub tile_failures: usize,
    /// Nets the flat fallback pass completed.
    pub fallback_completed: usize,
}

/// The result of [`route_hierarchical`].
#[derive(Debug, Clone)]
pub struct GlobalOutcome {
    db: RouteDb,
    failed: Vec<NetId>,
    stats: GlobalStats,
}

impl GlobalOutcome {
    /// Whether every net was fully connected.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The global routing database.
    pub fn db(&self) -> &RouteDb {
        &self.db
    }

    /// Consumes the outcome, returning the database.
    pub fn into_db(self) -> RouteDb {
        self.db
    }

    /// Nets that remain incomplete.
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// Work counters.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }
}

/// Routes `problem` hierarchically: plan over tiles, assign crossings,
/// detail-route each tile, paste, and (optionally) repair the leftovers
/// flat. See the [crate docs](crate) for the pipeline.
///
/// # Panics
///
/// Panics if an internal invariant breaks (a pasted tile trace
/// conflicting with another tile's wiring would be a bug, not an input
/// error).
pub fn route_hierarchical(problem: &Problem, cfg: &GlobalConfig) -> GlobalOutcome {
    let tiles = TileGrid::new(problem, cfg.tile);
    let base = problem.base_grid();
    let global_plan = plan(problem, &tiles);

    // All real pin slots, to keep crossings off them.
    let pin_slots: HashSet<(Point, Layer)> =
        problem.nets().iter().flat_map(|n| n.pins.iter().map(|p| (p.at, p.layer))).collect();

    // Nets crossing each edge.
    let mut edge_nets: BTreeMap<TileEdge, Vec<NetId>> = BTreeMap::new();
    for (idx, edges) in global_plan.net_edges.iter().enumerate() {
        for &e in edges {
            edge_nets.entry(e).or_default().push(NetId(idx as u32));
        }
    }

    // Assign concrete boundary cells per crossing; nets whose crossings
    // cannot all be assigned are dropped to the fallback.
    let mut dropped: BTreeSet<NetId> = BTreeSet::new();
    let mut crossing_pins: HashMap<(TileId, NetId), Vec<Pin>> = HashMap::new();
    for (&edge, nets) in &edge_nets {
        let (layer, pairs) = tiles.edge_cells(edge, &base);
        let usable: Vec<(Point, Point)> = pairs
            .into_iter()
            .filter(|&(pa, pb)| {
                !pin_slots.contains(&(pa, layer)) && !pin_slots.contains(&(pb, layer))
            })
            .collect();
        // Order nets along the edge by the centroid of their pins on the
        // edge's axis, so crossings do not needlessly swap inside tiles.
        let mut ordered = nets.clone();
        let centroid = |id: NetId| -> i64 {
            let net = problem.net(id);
            let sum: i64 = net
                .pins
                .iter()
                .map(|p| if edge.is_horizontal() { p.at.y as i64 } else { p.at.x as i64 })
                .sum();
            sum / net.pins.len() as i64
        };
        ordered.sort_by_key(|&id| (centroid(id), id.0));
        if ordered.len() > usable.len() {
            // Over-subscribed edge: the overflowing nets go flat.
            for &id in &ordered[usable.len()..] {
                dropped.insert(id);
            }
            ordered.truncate(usable.len());
        }
        // Spread the kept nets evenly across the usable offsets.
        let n = ordered.len();
        for (i, &id) in ordered.iter().enumerate() {
            let slot = if n <= 1 { usable.len() / 2 } else { i * (usable.len() - 1) / (n - 1) };
            let (pa, pb) = usable[slot];
            crossing_pins.entry((edge.a, id)).or_default().push(Pin::new(pa, layer));
            crossing_pins.entry((edge.b, id)).or_default().push(Pin::new(pb, layer));
        }
    }
    // Purge every crossing of dropped nets.
    crossing_pins.retain(|(_, id), _| !dropped.contains(id));

    // Per-tile nets: real pins plus crossings.
    let mut tile_nets: BTreeMap<TileId, BTreeMap<NetId, Vec<Pin>>> = BTreeMap::new();
    for net in problem.nets() {
        for pin in &net.pins {
            tile_nets
                .entry(tiles.tile_of(pin.at))
                .or_default()
                .entry(net.id)
                .or_default()
                .push(*pin);
        }
    }
    for ((tile, id), pins) in &crossing_pins {
        tile_nets.entry(*tile).or_default().entry(*id).or_default().extend(pins.iter().copied());
    }

    // Build every tile sub-problem, route them (in parallel — tiles are
    // disjoint, so their routings are independent), then paste the
    // traces back in deterministic tile order.
    struct TileJob {
        origin: Point,
        sub: Problem,
        names: Vec<(NetId, String)>,
    }
    let mut jobs: Vec<TileJob> = Vec::with_capacity(tile_nets.len());
    for (tile, nets) in &tile_nets {
        let rect = tiles.rect(*tile);
        let origin = rect.min();
        let mut builder = ProblemBuilder::switchbox(rect.width(), rect.height());
        builder.layers(problem.layers());
        // Copy the blocked cells of the enabled layers.
        for p in rect.cells() {
            for layer in Layer::ALL.into_iter().take(problem.layers() as usize) {
                if base.occupant(p, layer) == Occupant::Blocked {
                    builder.obstacle_on(Point::new(p.x - origin.x, p.y - origin.y), layer);
                }
            }
        }
        let mut names: Vec<(NetId, String)> = Vec::new();
        for (&id, pins) in nets {
            if dropped.contains(&id) && !pins.iter().any(|p| pin_slots.contains(&(p.at, p.layer))) {
                continue; // dropped net with only crossings here
            }
            let name = problem.net(id).name.clone();
            let mut nb = builder.net(&name);
            for pin in pins {
                // Dropped nets keep only their real pins (as blockers).
                if dropped.contains(&id) && !pin_slots.contains(&(pin.at, pin.layer)) {
                    continue;
                }
                nb.pin_at(Point::new(pin.at.x - origin.x, pin.at.y - origin.y), pin.layer);
            }
            names.push((id, name));
        }
        let sub = builder.build().expect("tile sub-problems are valid by construction");
        jobs.push(TileJob { origin, sub, names });
    }

    let router = MightyRouter::new(cfg.router);
    let outcomes: Vec<mighty::RouteOutcome> = if cfg.parallel && jobs.len() > 1 {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let chunk = jobs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|chunk| {
                    let router = &router;
                    scope.spawn(move || {
                        chunk.iter().map(|job| router.route(&job.sub)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tile routing threads do not panic"))
                .collect()
        })
    } else {
        jobs.iter().map(|job| router.route(&job.sub)).collect()
    };

    let mut db = RouteDb::new(problem);
    let mut tile_failures: BTreeSet<NetId> = BTreeSet::new();
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let origin = job.origin;
        for (global_id, name) in &job.names {
            let local = job.sub.net_by_name(name).expect("declared above");
            if outcome.failed().contains(&local.id) {
                tile_failures.insert(*global_id);
            }
            for (_, trace) in outcome.db().traces(local.id) {
                let steps: Vec<Step> = trace
                    .steps()
                    .iter()
                    .map(|s| Step::new(Point::new(s.at.x + origin.x, s.at.y + origin.y), s.layer))
                    .collect();
                let trace = Trace::from_steps(steps).expect("translation preserves contiguity");
                db.commit(*global_id, trace)
                    .expect("tiles are disjoint, so pasted traces cannot conflict");
            }
        }
    }

    let incomplete_before_fallback: Vec<NetId> = (0..problem.nets().len() as u32)
        .map(NetId)
        .filter(|&id| !db.is_net_connected(id))
        .collect();

    let mut stats = GlobalStats {
        tiles: (tiles.cols(), tiles.rows()),
        crossings: global_plan.crossings,
        overflowed_edges: global_plan.overflowed_edges,
        dropped: dropped.len(),
        tile_failures: tile_failures.len(),
        fallback_completed: 0,
    };

    let (db, failed) = if cfg.fallback && !incomplete_before_fallback.is_empty() {
        let outcome = router
            .try_route_incremental(problem, db)
            .expect("the hierarchical database is built for this problem");
        let failed = outcome.failed().to_vec();
        stats.fallback_completed =
            incomplete_before_fallback.iter().filter(|id| !failed.contains(id)).count();
        (outcome.into_db(), failed)
    } else {
        (db, incomplete_before_fallback)
    };

    GlobalOutcome { db, failed, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_benchdata::gen::{ObstructedGen, SwitchboxGen};
    use route_model::PinSide;
    use route_verify::verify;

    fn hierarchical(problem: &Problem, tile: u32, fallback: bool) -> GlobalOutcome {
        let cfg = GlobalConfig { tile, fallback, ..GlobalConfig::default() };
        let out = route_hierarchical(problem, &cfg);
        let report = verify(problem, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "hierarchical routing must stay legal: {report}"
        );
        out
    }

    #[test]
    fn straight_nets_route_across_tiles() {
        let mut b = ProblemBuilder::switchbox(32, 8);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 5);
        b.net("b").pin_side(PinSide::Left, 5).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
        assert!(out.stats().crossings >= 6, "both nets cross three edges");
    }

    #[test]
    fn random_floorplan_routes_without_fallback_mostly() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let out = hierarchical(&p, 16, false);
        // Most nets complete through the tiled phase alone.
        assert!(
            out.failed().len() <= 3,
            "too many tiled-phase failures: {:?} ({:?})",
            out.failed(),
            out.stats()
        );
    }

    #[test]
    fn fallback_completes_what_tiles_cannot() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let without = hierarchical(&p, 16, false);
        let with = hierarchical(&p, 16, true);
        assert!(with.failed().len() <= without.failed().len());
        if without.failed().len() > with.failed().len() {
            assert!(with.stats().fallback_completed > 0);
        }
    }

    #[test]
    fn obstructed_floorplan_stays_legal() {
        let p =
            ObstructedGen { width: 36, height: 36, nets: 10, obstacle_pct: 12, seed: 4 }.build();
        let out = hierarchical(&p, 12, true);
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn multi_pin_net_connects_through_tile_tree() {
        let mut b = ProblemBuilder::switchbox(24, 24);
        b.net("t")
            .pin_side(PinSide::Left, 12)
            .pin_side(PinSide::Right, 12)
            .pin_side(PinSide::Top, 12)
            .pin_side(PinSide::Bottom, 12);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
    }

    #[test]
    fn intra_tile_problem_degenerates_to_flat() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 16, false);
        assert!(out.is_complete());
        assert_eq!(out.stats().tiles, (1, 1));
        assert_eq!(out.stats().crossings, 0);
    }
}
