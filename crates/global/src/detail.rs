//! Crossing assignment, parallel per-tile detailed routing, seam
//! stitching and trace paste-back.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mighty::{EngineConfig, MightyRouter, RouteEngine};
use route_geom::{Layer, Point, Rect};
use route_maze::SearchArena;
use route_model::{
    Grid, NetId, NopObserver, Occupant, Pin, Problem, ProblemBuilder, RouteDb, RouteObserver,
    SearchKind, SearchProbe, Step, Trace, TraceId,
};

use crate::plan::plan_with;
use crate::tiles::{TileEdge, TileGrid, TileId};
use crate::GlobalConfig;

/// Work counters of a hierarchical run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalStats {
    /// Tile grid dimensions (columns, rows).
    pub tiles: (u32, u32),
    /// Tile-edge crossings planned.
    pub crossings: usize,
    /// Edges the planner over-subscribed.
    pub overflowed_edges: usize,
    /// Nets dropped from the tiled phase: unplannable over the tile
    /// graph, or unassignable crossings on an over-subscribed edge.
    pub dropped: usize,
    /// Nets that failed inside some tile.
    pub tile_failures: usize,
    /// Nets the flat fallback pass completed.
    pub fallback_completed: usize,
}

/// Chip-flow counters of a hierarchical run: the tile batch, the seam
/// repairs, and the post-stitch cleanup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChipStats {
    /// Tile jobs the batch engine routed (complete or not).
    pub tiles_routed: usize,
    /// Tile jobs lost wholesale: panicked, past their deadline, or
    /// skipped by the feasibility precheck.
    pub tiles_errored: usize,
    /// Tile edges carrying at least one assigned crossing.
    pub seams: usize,
    /// Seams the stitch pass repaired (at least one incomplete net).
    pub seams_repaired: usize,
    /// Strong rip-ups performed by the rip-up router inside seam bands.
    pub seam_ripups: usize,
    /// Nets the stitch pass completed.
    pub seam_completed: usize,
    /// Concrete boundary-cell crossing pairs assigned to nets.
    pub crossing_pins: usize,
    /// Wire steps reclaimed by the dead-wire prune after routing.
    pub pruned_steps: usize,
    /// Chip-scale infeasibility certificates found by the `--analyze`
    /// precheck (zero when the precheck is off).
    pub analyze_certificates: usize,
    /// Nets the precheck certified unroutable and the pipeline skipped.
    pub certified_nets: usize,
}

/// The result of [`route_hierarchical`].
#[derive(Debug, Clone)]
pub struct GlobalOutcome {
    db: RouteDb,
    failed: Vec<NetId>,
    stats: GlobalStats,
    chip: ChipStats,
}

impl GlobalOutcome {
    /// Whether every net was fully connected — including nets dropped at
    /// planning time, which never reach a tile job: completion is always
    /// recomputed from the final database, never from per-phase claims.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The global routing database.
    pub fn db(&self) -> &RouteDb {
        &self.db
    }

    /// Consumes the outcome, returning the database.
    pub fn into_db(self) -> RouteDb {
        self.db
    }

    /// Nets that remain incomplete.
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// Work counters.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Chip-flow counters: tile batch, seam repairs, cleanup.
    pub fn chip_stats(&self) -> &ChipStats {
        &self.chip
    }
}

/// Forwards band-local router events to the caller's observer with net
/// ids translated back to the global namespace, counting rip-ups.
struct SeamObserver<'a> {
    /// Band-local net index to global id.
    map: Vec<NetId>,
    inner: &'a mut dyn RouteObserver,
    ripups: usize,
}

impl RouteObserver for SeamObserver<'_> {
    fn on_net_scheduled(&mut self, net: NetId) {
        self.inner.on_net_scheduled(self.map[net.index()]);
    }

    fn on_search_done(&mut self, net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.inner.on_search_done(self.map[net.index()], kind, probe);
    }

    fn on_weak_modification(&mut self, net: NetId, victim: NetId) {
        self.inner.on_weak_modification(self.map[net.index()], self.map[victim.index()]);
    }

    fn on_strong_ripup(&mut self, net: NetId, victim: NetId, rip_count: u32) {
        self.ripups += 1;
        self.inner.on_strong_ripup(self.map[net.index()], self.map[victim.index()], rip_count);
    }

    fn on_penalty_escalation(&mut self, victim: NetId, penalty: u64) {
        self.inner.on_penalty_escalation(self.map[victim.index()], penalty);
    }

    fn on_net_committed(&mut self, net: NetId) {
        self.inner.on_net_committed(self.map[net.index()]);
    }

    fn on_net_failed(&mut self, net: NetId) {
        self.inner.on_net_failed(self.map[net.index()]);
    }
}

/// Routes `problem` hierarchically: plan over tiles, assign crossings,
/// detail-route every tile concurrently on the batch engine, stitch the
/// seams, and (optionally) repair the leftovers flat. See the
/// [crate docs](crate) for the pipeline.
///
/// The routed database is a pure function of the problem and the
/// configuration: any [`GlobalConfig::jobs`] value yields byte-identical
/// checksums, stats and failed sets — unless a per-tile deadline is set,
/// which trades that contract for bounded latency.
///
/// # Panics
///
/// Panics if an internal invariant breaks (a pasted tile trace
/// conflicting with another tile's wiring would be a bug, not an input
/// error).
pub fn route_hierarchical(problem: &Problem, cfg: &GlobalConfig) -> GlobalOutcome {
    route_hierarchical_observed(problem, cfg, &mut NopObserver)
}

/// [`route_hierarchical`] with an observer attached to the seam-stitch
/// repair pass: band-local events are forwarded with global net ids.
/// The tile batch itself is unobserved — its sub-problems renumber nets
/// per tile, so per-net events there would be meaningless to the caller.
///
/// # Panics
///
/// Panics if an internal invariant breaks, like [`route_hierarchical`].
pub fn route_hierarchical_observed(
    problem: &Problem,
    cfg: &GlobalConfig,
    observer: &mut dyn RouteObserver,
) -> GlobalOutcome {
    let tiles = TileGrid::new(problem, cfg.tile);
    let base = problem.base_grid();

    // Chip-scale precheck: nets a sound certificate already condemns
    // are excluded from planning, crossing assignment and the fallback.
    let (precertified, analyze_certificates) = if cfg.analyze {
        let report = route_analyze::analyze_chip(problem, cfg.tile);
        (report.certified_nets(), report.certificates().len())
    } else {
        (BTreeSet::new(), 0)
    };
    let global_plan = plan_with(problem, &tiles, cfg.order, &precertified);

    // All real pin slots, to keep crossings off them.
    let pin_slots: BTreeSet<(Point, Layer)> =
        problem.nets().iter().flat_map(|n| n.pins.iter().map(|p| (p.at, p.layer))).collect();

    // Nets crossing each edge.
    let mut edge_nets: BTreeMap<TileEdge, Vec<NetId>> = BTreeMap::new();
    for (idx, edges) in global_plan.net_edges.iter().enumerate() {
        for &e in edges {
            edge_nets.entry(e).or_default().push(NetId(idx as u32));
        }
    }

    // Assign concrete boundary cells per crossing. Nets the planner gave
    // up on are dropped up front; nets whose crossings cannot all be
    // assigned join them. Dropped nets keep only their real pins (as
    // blockers) and fall through to the flat fallback.
    let mut dropped: BTreeSet<NetId> = global_plan.unplanned().iter().copied().collect();
    dropped.extend(precertified.iter().copied());
    let mut crossing_pins: HashMap<(TileId, NetId), Vec<Pin>> = HashMap::new();
    let mut edge_cross: HashMap<(TileEdge, NetId), (Point, Point, Layer)> = HashMap::new();
    for (&edge, nets) in &edge_nets {
        let (layer, pairs) = tiles.edge_cells(edge, &base);
        let usable: Vec<(Point, Point)> = pairs
            .into_iter()
            .filter(|&(pa, pb)| {
                !pin_slots.contains(&(pa, layer)) && !pin_slots.contains(&(pb, layer))
            })
            .collect();
        // Order nets along the edge by the centroid of their pins on the
        // edge's axis, so crossings do not needlessly swap inside tiles.
        let mut ordered = nets.clone();
        let centroid = |id: NetId| -> i64 {
            let net = problem.net(id);
            let sum: i64 = net
                .pins
                .iter()
                .map(|p| if edge.is_horizontal() { p.at.y as i64 } else { p.at.x as i64 })
                .sum();
            sum / net.pins.len() as i64
        };
        ordered.sort_by_key(|&id| (centroid(id), id.0));
        if ordered.len() > usable.len() {
            // Over-subscribed edge: the overflowing nets go flat.
            for &id in &ordered[usable.len()..] {
                dropped.insert(id);
            }
            ordered.truncate(usable.len());
        }
        // Spread the kept nets evenly across the usable offsets.
        let n = ordered.len();
        for (i, &id) in ordered.iter().enumerate() {
            let slot = if n <= 1 { usable.len() / 2 } else { i * (usable.len() - 1) / (n - 1) };
            let (pa, pb) = usable[slot];
            crossing_pins.entry((edge.a, id)).or_default().push(Pin::new(pa, layer));
            crossing_pins.entry((edge.b, id)).or_default().push(Pin::new(pb, layer));
            edge_cross.insert((edge, id), (pa, pb, layer));
        }
    }
    // Purge every crossing of dropped nets.
    crossing_pins.retain(|(_, id), _| !dropped.contains(id));
    edge_cross.retain(|(_, id), _| !dropped.contains(id));
    // Crossing-cell reservations: seam repair must never route one net
    // through another net's (possibly still unwired) crossing cell.
    let mut cross_owner: HashMap<(Point, Layer), NetId> = HashMap::new();
    for (&(_, id), &(pa, pb, layer)) in &edge_cross {
        cross_owner.insert((pa, layer), id);
        cross_owner.insert((pb, layer), id);
    }

    // Per-tile nets: real pins plus crossings.
    let mut tile_nets: BTreeMap<TileId, BTreeMap<NetId, Vec<Pin>>> = BTreeMap::new();
    for net in problem.nets() {
        for pin in &net.pins {
            tile_nets
                .entry(tiles.tile_of(pin.at))
                .or_default()
                .entry(net.id)
                .or_default()
                .push(*pin);
        }
    }
    for ((tile, id), pins) in &crossing_pins {
        tile_nets.entry(*tile).or_default().entry(*id).or_default().extend(pins.iter().copied());
    }

    // Build every tile sub-problem; the batch engine routes them
    // concurrently (tiles are disjoint, so their routings are
    // independent) and delivers results in input order, which keeps the
    // paste deterministic at any job count.
    struct TileMeta {
        origin: Point,
        names: Vec<(NetId, String)>,
    }
    let mut metas: Vec<TileMeta> = Vec::with_capacity(tile_nets.len());
    let mut subs: Vec<Problem> = Vec::with_capacity(tile_nets.len());
    for (tile, nets) in &tile_nets {
        let rect = tiles.rect(*tile);
        let origin = rect.min();
        let mut builder = ProblemBuilder::switchbox(rect.width(), rect.height());
        builder.layers(problem.layers());
        // Copy the blocked cells of the enabled layers.
        for p in rect.cells() {
            for layer in Layer::ALL.into_iter().take(problem.layers() as usize) {
                if base.occupant(p, layer) == Occupant::Blocked {
                    builder.obstacle_on(Point::new(p.x - origin.x, p.y - origin.y), layer);
                }
            }
        }
        let mut names: Vec<(NetId, String)> = Vec::new();
        for (&id, pins) in nets {
            if dropped.contains(&id) && !pins.iter().any(|p| pin_slots.contains(&(p.at, p.layer))) {
                continue; // dropped net with only crossings here
            }
            let name = problem.net(id).name.clone();
            let mut nb = builder.net(&name);
            for pin in pins {
                // Dropped nets keep only their real pins (as blockers).
                if dropped.contains(&id) && !pin_slots.contains(&(pin.at, pin.layer)) {
                    continue;
                }
                nb.pin_at(Point::new(pin.at.x - origin.x, pin.at.y - origin.y), pin.layer);
            }
            names.push((id, name));
        }
        let sub = builder.build().expect("tile sub-problems are valid by construction");
        metas.push(TileMeta { origin, names });
        subs.push(sub);
    }

    let router = MightyRouter::new(cfg.router);
    let mut engine_cfg = EngineConfig::builder()
        .jobs(if cfg.parallel { cfg.jobs.min(mighty::MAX_JOBS) } else { 1 })
        .precheck(cfg.precheck);
    if cfg.tile_deadline_ms > 0 {
        engine_cfg = engine_cfg.deadline_ms(cfg.tile_deadline_ms);
    }
    let engine = RouteEngine::new(engine_cfg.build().expect("knobs validated above"));
    let batch = engine.route_batch(&router, &subs);

    let mut chip = ChipStats {
        crossing_pins: edge_cross.len(),
        seams: edge_cross.keys().map(|(e, _)| *e).collect::<BTreeSet<_>>().len(),
        analyze_certificates,
        certified_nets: precertified.len(),
        ..ChipStats::default()
    };

    let mut db = RouteDb::new(problem);
    let mut tile_failures: BTreeSet<NetId> = BTreeSet::new();
    for ((meta, sub), result) in metas.iter().zip(&subs).zip(&batch.results) {
        let origin = meta.origin;
        match result {
            Ok(routing) => {
                chip.tiles_routed += 1;
                for (global_id, name) in &meta.names {
                    let local = sub.net_by_name(name).expect("declared above");
                    if routing.failed.contains(&local.id) {
                        tile_failures.insert(*global_id);
                    }
                    for (_, trace) in routing.db.traces(local.id) {
                        let steps: Vec<Step> = trace
                            .steps()
                            .iter()
                            .map(|s| {
                                Step::new(Point::new(s.at.x + origin.x, s.at.y + origin.y), s.layer)
                            })
                            .collect();
                        let trace =
                            Trace::from_steps(steps).expect("translation preserves contiguity");
                        db.commit(*global_id, trace)
                            .expect("tiles are disjoint, so pasted traces cannot conflict");
                    }
                }
            }
            Err(_) => {
                // Panicked, timed out, or certified infeasible: the tile
                // contributes no wiring and all its nets ride on the
                // stitch and fallback passes.
                chip.tiles_errored += 1;
                tile_failures.extend(meta.names.iter().map(|(id, _)| *id));
            }
        }
    }

    // Incomplete nets after the tile paste, kept incrementally current
    // through the stitch pass.
    let mut incomplete: BTreeSet<NetId> = (0..problem.nets().len() as u32)
        .map(NetId)
        .filter(|&id| !db.is_net_connected(id))
        .collect();
    let after_tiles = incomplete.len();

    // Seam stitching: for every tile edge whose crossing nets are still
    // disconnected, run the rip-up router on a band around the boundary.
    if cfg.stitch {
        let mut arena = SearchArena::with_frontier(cfg.router.frontier);
        for (&edge, nets) in &edge_nets {
            let repair: Vec<NetId> = nets
                .iter()
                .copied()
                .filter(|id| !dropped.contains(id) && incomplete.contains(id))
                .collect();
            if repair.is_empty() {
                continue;
            }
            stitch_edge(
                problem,
                &base,
                &tiles,
                cfg,
                &router,
                edge,
                &repair,
                &edge_cross,
                &cross_owner,
                &mut db,
                &mut arena,
                observer,
                &mut chip,
            );
            for id in repair {
                if db.is_net_connected(id) {
                    incomplete.remove(&id);
                }
            }
        }
        chip.seam_completed = after_tiles - incomplete.len();
    }

    let mut stats = GlobalStats {
        tiles: (tiles.cols(), tiles.rows()),
        crossings: global_plan.crossings,
        overflowed_edges: global_plan.overflowed_edges,
        dropped: dropped.len(),
        tile_failures: tile_failures.len(),
        fallback_completed: 0,
    };

    // Certified-unroutable nets are not fallback candidates: a sound
    // certificate binds the flat router too, so retrying them is pure
    // waste. If nothing else is incomplete, the fallback is skipped
    // wholesale.
    let fallback_candidates: BTreeSet<NetId> =
        incomplete.difference(&precertified).copied().collect();
    let mut db = if cfg.fallback && !fallback_candidates.is_empty() {
        let outcome = router
            .try_route_incremental(problem, db)
            .expect("the hierarchical database is built for this problem");
        stats.fallback_completed =
            fallback_candidates.iter().filter(|&&id| !outcome.failed().contains(&id)).count();
        outcome.into_db()
    } else {
        db
    };

    // Cleanup: wiring abandoned by failed tiles, ripped seams or the
    // fallback that ended up in components touching no pin is pruned —
    // it only wastes capacity and trips the dead-wire lint (`L008`).
    for id in (0..problem.nets().len() as u32).map(NetId) {
        chip.pruned_steps += db.prune_dangling(id);
    }

    // The failed set is always recomputed from the final database, so
    // planning-dropped nets that never reached a tile job count too.
    let failed: Vec<NetId> = (0..problem.nets().len() as u32)
        .map(NetId)
        .filter(|&id| !db.is_net_connected(id))
        .collect();

    GlobalOutcome { db, failed, stats, chip }
}

/// Repairs one seam: rips the repair nets' wiring inside a band around
/// `edge`, rebuilds it as a sub-problem (foreign wiring, foreign pins
/// and reserved crossing cells become obstacles; crossing cells, band
/// pins and the cut points of the net's own wiring become pins), and
/// re-routes it incrementally with the rip-up router.
#[allow(clippy::too_many_arguments)]
fn stitch_edge(
    problem: &Problem,
    base: &Grid,
    tiles: &TileGrid,
    cfg: &GlobalConfig,
    router: &MightyRouter,
    edge: TileEdge,
    repair: &[NetId],
    edge_cross: &HashMap<(TileEdge, NetId), (Point, Point, Layer)>,
    cross_owner: &HashMap<(Point, Layer), NetId>,
    db: &mut RouteDb,
    arena: &mut SearchArena,
    observer: &mut dyn RouteObserver,
    chip: &mut ChipStats,
) {
    let ra = tiles.rect(edge.a);
    let rb = tiles.rect(edge.b);
    let w = cfg.stitch_band.max(1) as i32;
    let band = if edge.is_horizontal() {
        let x0 = (ra.max().x - (w - 1)).max(ra.min().x);
        let x1 = (rb.min().x + (w - 1)).min(rb.max().x);
        Rect::new(Point::new(x0, ra.min().y), Point::new(x1, ra.max().y))
    } else {
        let y0 = (ra.max().y - (w - 1)).max(ra.min().y);
        let y1 = (rb.min().y + (w - 1)).min(rb.max().y);
        Rect::new(Point::new(ra.min().x, y0), Point::new(ra.max().x, y1))
    };
    let origin = band.min();
    let localize = |p: Point| Point::new(p.x - origin.x, p.y - origin.y);
    let globalize = |p: Point| Point::new(p.x + origin.x, p.y + origin.y);
    let repair_set: BTreeSet<NetId> = repair.iter().copied().collect();

    // Surgery: rip every trace of a repair net that enters the band,
    // re-commit its out-of-band runs unchanged, keep its in-band runs
    // for replay, and record the cut points as anchors the repair must
    // keep connected.
    let mut kept: BTreeMap<NetId, Vec<Trace>> = BTreeMap::new();
    let mut anchors: BTreeMap<NetId, BTreeSet<(Point, Layer)>> = BTreeMap::new();
    for &id in repair {
        let cut: Vec<TraceId> = db
            .traces(id)
            .filter(|(_, t)| t.steps().iter().any(|s| band.contains(s.at)))
            .map(|(tid, _)| tid)
            .collect();
        for tid in cut {
            let trace = db.rip_up(tid).expect("listed as live above");
            let steps = trace.steps();
            let mut run: Vec<Step> = Vec::new();
            let mut run_inside = band.contains(steps[0].at);
            for (i, &s) in steps.iter().enumerate() {
                let inside = band.contains(s.at);
                if inside != run_inside {
                    let anchor = if run_inside { steps[i - 1] } else { s };
                    anchors.entry(id).or_default().insert((anchor.at, anchor.layer));
                    flush_run(db, &mut kept, id, &mut run, run_inside);
                    run_inside = inside;
                }
                run.push(s);
            }
            flush_run(db, &mut kept, id, &mut run, run_inside);
        }
    }

    // The band sub-problem: everything the repair nets may not touch is
    // an obstacle — base blocks, wiring and pins of foreign nets (pins
    // are grid-marked at construction), and crossing cells reserved for
    // nets outside the repair set.
    let mut builder = ProblemBuilder::switchbox(band.width(), band.height());
    builder.layers(problem.layers());
    for p in band.cells() {
        for layer in Layer::ALL.into_iter().take(problem.layers() as usize) {
            let foreign_wire = matches!(db.grid().occupant(p, layer), Occupant::Net(n) if !repair_set.contains(&n));
            let foreign_cross =
                cross_owner.get(&(p, layer)).is_some_and(|n| !repair_set.contains(n));
            if base.occupant(p, layer) == Occupant::Blocked || foreign_wire || foreign_cross {
                builder.obstacle_on(localize(p), layer);
            }
        }
    }
    let mut names: Vec<(NetId, String)> = Vec::new();
    for &id in repair {
        let name = problem.net(id).name.clone();
        let mut pins: BTreeSet<(Point, Layer)> = BTreeSet::new();
        let &(pa, pb, layer) = edge_cross.get(&(edge, id)).expect("repair nets cross this edge");
        pins.insert((pa, layer));
        pins.insert((pb, layer));
        for p in &problem.net(id).pins {
            if band.contains(p.at) {
                pins.insert((p.at, p.layer));
            }
        }
        if let Some(set) = anchors.get(&id) {
            pins.extend(set.iter().copied());
        }
        let mut nb = builder.net(&name);
        for &(at, layer) in &pins {
            nb.pin_at(localize(at), layer);
        }
        names.push((id, name));
    }
    let band_problem = match builder.build() {
        Ok(p) => p,
        Err(_) => {
            // A reservation hole would surface here; restore the ripped
            // wiring and leave the seam to the flat fallback.
            debug_assert!(false, "seam band problem must build");
            for (id, runs) in kept {
                for t in runs {
                    db.commit(id, t).expect("restoring just-ripped wiring");
                }
            }
            return;
        }
    };

    // Replay the kept in-band runs, then let the rip-up router repair
    // the band incrementally: it may push or rip the replayed wiring.
    let mut band_db = RouteDb::new(&band_problem);
    for (gid, name) in &names {
        let local = band_problem.net_by_name(name).expect("declared above");
        for t in kept.get(gid).into_iter().flatten() {
            let steps: Vec<Step> =
                t.steps().iter().map(|s| Step::new(localize(s.at), s.layer)).collect();
            let t = Trace::from_steps(steps).expect("translation preserves contiguity");
            band_db.commit(local.id, t).expect("kept runs lie in the band, off foreign wiring");
        }
    }
    let name_to_global: HashMap<&str, NetId> =
        names.iter().map(|(id, name)| (name.as_str(), *id)).collect();
    let map: Vec<NetId> =
        band_problem.nets().iter().map(|n| name_to_global[n.name.as_str()]).collect();
    let mut seam_obs = SeamObserver { map, inner: observer, ripups: 0 };
    let outcome = router
        .try_route_incremental_observed_in(&band_problem, band_db, arena, &mut seam_obs)
        .expect("the band database is built for the band problem");
    chip.seam_ripups += seam_obs.ripups;
    chip.seams_repaired += 1;

    for (gid, name) in &names {
        let local = band_problem.net_by_name(name).expect("declared above");
        for (_, trace) in outcome.db().traces(local.id) {
            let steps: Vec<Step> =
                trace.steps().iter().map(|s| Step::new(globalize(s.at), s.layer)).collect();
            let t = Trace::from_steps(steps).expect("translation preserves contiguity");
            db.commit(*gid, t).expect("the band result respects foreign occupancy");
        }
    }
}

/// Flushes an accumulated sub-path of a ripped trace: out-of-band runs
/// go straight back into the database, in-band runs are kept for replay
/// inside the band sub-problem.
fn flush_run(
    db: &mut RouteDb,
    kept: &mut BTreeMap<NetId, Vec<Trace>>,
    id: NetId,
    run: &mut Vec<Step>,
    inside: bool,
) {
    if run.is_empty() {
        return;
    }
    let t = Trace::from_steps(std::mem::take(run)).expect("a contiguous sub-path");
    if inside {
        kept.entry(id).or_default().push(t);
    } else {
        db.commit(id, t).expect("re-committing just-ripped wiring");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_benchdata::gen::{ChipGen, ObstructedGen, SwitchboxGen};
    use route_model::{EventLog, PinSide};
    use route_verify::verify;

    fn hierarchical(problem: &Problem, tile: u32, fallback: bool) -> GlobalOutcome {
        let cfg = GlobalConfig { tile, fallback, ..GlobalConfig::default() };
        let out = route_hierarchical(problem, &cfg);
        let report = verify(problem, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "hierarchical routing must stay legal: {report}"
        );
        out
    }

    #[test]
    fn straight_nets_route_across_tiles() {
        let mut b = ProblemBuilder::switchbox(32, 8);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 5);
        b.net("b").pin_side(PinSide::Left, 5).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
        assert!(out.stats().crossings >= 6, "both nets cross three edges");
    }

    #[test]
    fn random_floorplan_routes_without_fallback_mostly() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let out = hierarchical(&p, 16, false);
        // Most nets complete through the tiled phase alone.
        assert!(
            out.failed().len() <= 3,
            "too many tiled-phase failures: {:?} ({:?})",
            out.failed(),
            out.stats()
        );
    }

    #[test]
    fn fallback_completes_what_tiles_cannot() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let without = hierarchical(&p, 16, false);
        let with = hierarchical(&p, 16, true);
        assert!(with.failed().len() <= without.failed().len());
        if without.failed().len() > with.failed().len() {
            assert!(with.stats().fallback_completed > 0);
        }
    }

    #[test]
    fn obstructed_floorplan_stays_legal() {
        let p =
            ObstructedGen { width: 36, height: 36, nets: 10, obstacle_pct: 12, seed: 4 }.build();
        let out = hierarchical(&p, 12, true);
        let report = verify(&p, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn multi_pin_net_connects_through_tile_tree() {
        let mut b = ProblemBuilder::switchbox(24, 24);
        b.net("t")
            .pin_side(PinSide::Left, 12)
            .pin_side(PinSide::Right, 12)
            .pin_side(PinSide::Top, 12)
            .pin_side(PinSide::Bottom, 12);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert!(out.is_complete(), "failed: {:?} ({:?})", out.failed(), out.stats());
    }

    #[test]
    fn intra_tile_problem_degenerates_to_flat() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 16, false);
        assert!(out.is_complete());
        assert_eq!(out.stats().tiles, (1, 1));
        assert_eq!(out.stats().crossings, 0);
    }

    /// Regression test for the dropped-net completion lie: a net the
    /// planner can never route over the tile graph (capacity-zero cut)
    /// is handed to no tile job, so a failed set assembled from tile
    /// results alone would miss it and `is_complete` would claim
    /// success. The failed set must come from the final database.
    #[test]
    fn planning_dropped_nets_count_as_failed() {
        let mut b = ProblemBuilder::switchbox(16, 8);
        // A full-stack wall on the boundary columns between the tiles.
        b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
        b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let out = hierarchical(&p, 8, false);
        assert_eq!(out.stats().dropped, 1, "the net is dropped at planning time");
        assert!(!out.is_complete(), "a dropped net is not a routed net");
        assert_eq!(out.failed(), &[NetId(0)]);
        // With the fallback enabled the wall still blocks everything:
        // the net must stay failed rather than vanish from accounting.
        let out = hierarchical(&p, 8, true);
        assert!(!out.is_complete());
        assert_eq!(out.failed(), &[NetId(0)]);
    }

    #[test]
    fn analyze_gate_skips_certified_nets_and_their_fallback() {
        let mut b = ProblemBuilder::switchbox(16, 8);
        // A full-stack wall on the boundary columns: F006 at tile 8.
        b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
        b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let cfg = GlobalConfig { tile: 8, analyze: true, ..GlobalConfig::default() };
        let out = route_hierarchical(&p, &cfg);
        assert!(!out.is_complete());
        assert_eq!(out.failed(), &[NetId(0)]);
        assert!(out.chip_stats().analyze_certificates > 0, "{:?}", out.chip_stats());
        assert_eq!(out.chip_stats().certified_nets, 1);
        assert_eq!(out.stats().fallback_completed, 0, "certified nets skip the fallback");
        // On a feasible chip the gate finds nothing and the result is
        // byte-identical to a run without it.
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let off = route_hierarchical(&p, &GlobalConfig { tile: 16, ..GlobalConfig::default() });
        let on = route_hierarchical(
            &p,
            &GlobalConfig { tile: 16, analyze: true, ..GlobalConfig::default() },
        );
        assert_eq!(off.db().checksum(), on.db().checksum());
        assert_eq!(off.failed(), on.failed());
        assert_eq!(on.chip_stats().certified_nets, 0);
    }

    #[test]
    fn job_count_is_checksum_inert() {
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(3) }.build();
        let route = |jobs: usize| {
            let cfg = GlobalConfig { tile: 16, jobs, ..GlobalConfig::default() };
            route_hierarchical(&p, &cfg)
        };
        let one = route(1);
        let four = route(4);
        assert_eq!(one.db().checksum(), four.db().checksum());
        assert_eq!(one.failed(), four.failed());
        assert_eq!(one.stats(), four.stats());
        assert_eq!(one.chip_stats(), four.chip_stats());
    }

    #[test]
    fn chip_stats_account_for_the_tile_batch() {
        let p = SwitchboxGen { width: 32, height: 32, nets: 14, seed: 9 }.build();
        let out = hierarchical(&p, 16, true);
        let chip = out.chip_stats();
        assert_eq!(chip.tiles_routed, 4, "every tile routes on this clean instance");
        assert_eq!(chip.tiles_errored, 0);
        assert!(chip.crossing_pins > 0);
        assert!(chip.seams > 0);
        assert!(chip.seams_repaired <= chip.seams);
    }

    #[test]
    fn seam_events_carry_global_net_ids() {
        let p =
            ChipGen { width: 48, height: 48, nets: 170, macros: 3, ..ChipGen::small(11) }.build();
        let cfg = GlobalConfig { tile: 12, fallback: false, ..GlobalConfig::default() };
        let mut log = EventLog::default();
        let observed = route_hierarchical_observed(&p, &cfg, &mut log);
        // Observation is inert: same database as the unobserved run.
        let plain = route_hierarchical(&p, &cfg);
        assert_eq!(observed.db().checksum(), plain.db().checksum());
        assert_eq!(observed.failed(), plain.failed());
        // Every forwarded event names real global nets.
        use route_model::RouteEvent;
        for ev in log.events() {
            let ids: Vec<NetId> = match *ev {
                RouteEvent::NetScheduled { net }
                | RouteEvent::NetCommitted { net }
                | RouteEvent::NetFailed { net }
                | RouteEvent::SearchDone { net, .. } => vec![net],
                RouteEvent::WeakModification { net, victim }
                | RouteEvent::StrongRipup { net, victim, .. } => vec![net, victim],
                RouteEvent::PenaltyEscalation { victim, .. } => vec![victim],
            };
            for id in ids {
                assert!(id.index() < p.nets().len(), "event names unknown net {id:?}");
            }
        }
        if observed.chip_stats().seams_repaired > 0 {
            assert!(!log.events().is_empty(), "seam repairs must emit events");
        }
    }

    #[test]
    fn stitched_databases_carry_no_dead_wire() {
        let p =
            ChipGen { width: 64, height: 64, nets: 260, macros: 4, ..ChipGen::small(7) }.build();
        let cfg = GlobalConfig { tile: 16, ..GlobalConfig::default() };
        let out = route_hierarchical(&p, &cfg);
        let lint = route_analyze::lint_db(&p, out.db());
        assert!(
            lint.findings().iter().all(|f| f.rule().code != "L008"),
            "dead wire after prune: {:?}",
            lint.diagnostics()
        );
    }
}
