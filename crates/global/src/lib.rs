//! Hierarchical route planner: global routing over a capacitated tile
//! graph, detailed routing per tile.
//!
//! Flat detailed routing explores the whole grid per connection; on
//! chip-scale floorplans that is wasteful and, historically, impossible
//! — the macro-cell flows of the era planned nets over a coarse tile
//! (global-cell) grid first and handed each tile's crossing points to a
//! detailed router. This crate reproduces that pipeline on top of the
//! workspace's substrates:
//!
//! 1. **Tiling** ([`TileGrid`]): the floorplan is cut into tiles; each
//!    pair of adjacent tiles gets an edge whose *capacity* is the number
//!    of unblocked boundary cells between them.
//! 2. **Planning** ([`plan`]): each net is routed over the tile graph
//!    with congestion-aware Dijkstra (cost grows as an edge fills;
//!    full edges are impassable), producing a tree of tiles per net.
//! 3. **Crossing assignment**: every tile-edge crossing is pinned to a
//!    concrete boundary cell (horizontal crossings on M1, vertical on
//!    M2), nets spread across the edge in order of their destinations.
//! 4. **Detailed routing** ([`route_hierarchical`]): each tile becomes a
//!    sub-problem — real pins inside plus crossing pins on the boundary
//!    — routed concurrently on the batch engine (`mighty::RouteEngine`:
//!    input-order-deterministic merge, panic isolation, optional
//!    per-tile deadlines and feasibility prechecks); the resulting
//!    traces are translated back and committed into one global database.
//! 5. **Seam stitching**: nets still disconnected after paste-back are
//!    repaired by the rip-up router on narrow bands around the tile
//!    boundaries they cross — foreign wiring is frozen, the net's own
//!    seam wiring is ripped up and replayed incrementally.
//! 6. **Fallback**: nets that remain incomplete are re-attempted flat
//!    on the full grid with the incremental router, and wiring left in
//!    components that touch no pin is pruned.
//!
//! The final database verifies through `route-verify` like any flat
//! result: a routed crossing needs no seam wiring because crossing
//! cells of adjacent tiles are grid-adjacent on the same layer — the
//! stitch pass exists for the crossings some tile *failed* to reach.
//!
//! # Examples
//!
//! ```
//! use route_benchdata::gen::SwitchboxGen;
//! use route_global::{route_hierarchical, GlobalConfig};
//! use route_verify::verify;
//!
//! let problem = SwitchboxGen { width: 32, height: 32, nets: 12, seed: 5 }.build();
//! let outcome = route_hierarchical(&problem, &GlobalConfig::default());
//! let report = verify(&problem, outcome.db());
//! assert!(report.is_clean() || report.is_legal_but_incomplete());
//! ```

#![warn(missing_docs)]

mod detail;
mod plan;
mod tiles;

pub use detail::{
    route_hierarchical, route_hierarchical_observed, route_hierarchical_supervised, ChipStats,
    GlobalOutcome, GlobalStats,
};
pub use plan::{plan, plan_with, GlobalPlan, PlanOrder};
pub use tiles::{TileEdge, TileGrid, TileId};

use mighty::{FaultPlan, RouterConfig};

/// Configuration of the hierarchical pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalConfig {
    /// Tile side length in grid cells (the last row/column of tiles may
    /// be smaller).
    pub tile: u32,
    /// Detailed-router configuration used inside every tile (and for the
    /// flat fallback).
    pub router: RouterConfig,
    /// Re-attempt nets that failed inside a tile flat on the full grid.
    pub fallback: bool,
    /// Route tiles on multiple threads. Tiles are disjoint, so parallel
    /// routing is deterministic — results are pasted in tile order
    /// regardless of completion order.
    pub parallel: bool,
    /// Worker threads for the tile batch (`0` = one per hardware
    /// thread). Ignored when [`parallel`](GlobalConfig::parallel) is
    /// off. The routed database is byte-identical at any job count.
    pub jobs: usize,
    /// Wall-clock budget per tile job in milliseconds (`0` = none).
    /// **Off by default**: a deadline makes results timing-dependent,
    /// which forfeits the jobs-1-vs-N determinism contract.
    pub tile_deadline_ms: u64,
    /// Run the static feasibility analysis on every tile sub-problem
    /// before routing it (see `route-analyze`); certified-unroutable
    /// tiles are skipped instead of burning router budget.
    pub precheck: bool,
    /// Run the chip-scale analysis (`route_analyze::analyze_chip`)
    /// before planning: nets certified unroutable (F006) are dropped up
    /// front — their pins stay as blockers, no crossings are assigned,
    /// and the flat fallback does not retry them — with the certificate
    /// and net counts recorded in [`ChipStats`]. Off by default; with
    /// it off the pipeline is byte-identical to earlier releases.
    pub analyze: bool,
    /// Net-ordering policy for the planning phase. The default
    /// ([`PlanOrder::Bbox`]) preserves historical byte-identity;
    /// [`PlanOrder::Features`] orders by the static congestion
    /// estimate. Either way the result is `jobs`-independent.
    pub order: PlanOrder,
    /// Repair incomplete crossing nets with the rip-up router on seam
    /// bands before (or instead of) the flat fallback.
    pub stitch: bool,
    /// Half-width of a seam band, in cells on each side of the tile
    /// boundary.
    pub stitch_band: u32,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            tile: 16,
            router: RouterConfig::default(),
            fallback: true,
            parallel: true,
            jobs: 0,
            tile_deadline_ms: 0,
            precheck: false,
            analyze: false,
            order: PlanOrder::Bbox,
            stitch: true,
            stitch_band: 3,
        }
    }
}

/// Per-tile supervision knobs for
/// [`route_hierarchical_supervised`]: how hard each tile fights before
/// salvaging, and which faults (if any) are injected for testing.
///
/// The supervised result is deterministic at any
/// [`GlobalConfig::jobs`] value: retry perturbations are seeded
/// `seed ^ tile`, so every tile's recovery chain is a pure function of
/// the problem and this configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipSupervision {
    /// Re-attempts per tile after its first run, under escalated
    /// budgets and a perturbed net order (`mighty::RetryPolicy`).
    pub retries: u32,
    /// Hand exhausted tiles to the sequential Lee baseline
    /// (`mighty::FallbackChain::lee`) before salvaging.
    pub fallback: bool,
    /// Base seed of the per-tile retry perturbation (each tile uses
    /// `seed ^ tile`).
    pub seed: u64,
    /// Fault-injection plan for tiles (`tile:`-targeted or bare specs)
    /// and seam rungs (`@seam` specs); see `mighty::FaultPlan`.
    pub fault: Option<FaultPlan>,
}

impl Default for ChipSupervision {
    fn default() -> Self {
        ChipSupervision { retries: 1, fallback: true, seed: 0, fault: None }
    }
}

impl ChipSupervision {
    /// Supervision with every recovery mechanism off: the tile stage
    /// routes exactly once per tile, like the unsupervised flow, but
    /// yields journal-shaped outcomes (used when only a journal is
    /// requested).
    pub fn none() -> Self {
        ChipSupervision { retries: 0, fallback: false, seed: 0, fault: None }
    }
}
