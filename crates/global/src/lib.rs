//! Hierarchical route planner: global routing over a capacitated tile
//! graph, detailed routing per tile.
//!
//! Flat detailed routing explores the whole grid per connection; on
//! chip-scale floorplans that is wasteful and, historically, impossible
//! — the macro-cell flows of the era planned nets over a coarse tile
//! (global-cell) grid first and handed each tile's crossing points to a
//! detailed router. This crate reproduces that pipeline on top of the
//! workspace's substrates:
//!
//! 1. **Tiling** ([`TileGrid`]): the floorplan is cut into tiles; each
//!    pair of adjacent tiles gets an edge whose *capacity* is the number
//!    of unblocked boundary cells between them.
//! 2. **Planning** ([`plan`]): each net is routed over the tile graph
//!    with congestion-aware Dijkstra (cost grows as an edge fills;
//!    full edges are impassable), producing a tree of tiles per net.
//! 3. **Crossing assignment**: every tile-edge crossing is pinned to a
//!    concrete boundary cell (horizontal crossings on M1, vertical on
//!    M2), nets spread across the edge in order of their destinations.
//! 4. **Detailed routing** ([`route_hierarchical`]): each tile becomes a
//!    sub-problem — real pins inside plus crossing pins on the boundary
//!    — solved by the rip-up/reroute router; the resulting traces are
//!    translated back and committed into one global database.
//! 5. **Fallback**: nets that failed inside some tile are re-attempted
//!    flat on the full grid with the incremental router.
//!
//! The final database verifies through `route-verify` like any flat
//! result: cross-tile connectivity needs no stitching because crossing
//! cells of adjacent tiles are grid-adjacent on the same layer.
//!
//! # Examples
//!
//! ```
//! use route_benchdata::gen::SwitchboxGen;
//! use route_global::{route_hierarchical, GlobalConfig};
//! use route_verify::verify;
//!
//! let problem = SwitchboxGen { width: 32, height: 32, nets: 12, seed: 5 }.build();
//! let outcome = route_hierarchical(&problem, &GlobalConfig::default());
//! let report = verify(&problem, outcome.db());
//! assert!(report.is_clean() || report.is_legal_but_incomplete());
//! ```

#![warn(missing_docs)]

mod detail;
mod plan;
mod tiles;

pub use detail::{route_hierarchical, GlobalOutcome, GlobalStats};
pub use plan::{plan, GlobalPlan};
pub use tiles::{TileGrid, TileId};

use mighty::RouterConfig;

/// Configuration of the hierarchical pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalConfig {
    /// Tile side length in grid cells (the last row/column of tiles may
    /// be smaller).
    pub tile: u32,
    /// Detailed-router configuration used inside every tile (and for the
    /// flat fallback).
    pub router: RouterConfig,
    /// Re-attempt nets that failed inside a tile flat on the full grid.
    pub fallback: bool,
    /// Route tiles on multiple threads. Tiles are disjoint, so parallel
    /// routing is deterministic — results are pasted in tile order
    /// regardless of completion order.
    pub parallel: bool,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig { tile: 16, router: RouterConfig::default(), fallback: true, parallel: true }
    }
}
