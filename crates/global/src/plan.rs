//! Congestion-aware global routing over the tile graph.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use route_geom::Rect;
use route_maze::{BucketFrontier, Frontier};
use route_model::{NetId, Problem};

use crate::tiles::{TileEdge, TileGrid, TileId};

/// The result of the planning phase: per net, the tree of tile edges the
/// net will cross.
#[derive(Debug, Clone)]
pub struct GlobalPlan {
    pub(crate) net_edges: Vec<BTreeSet<TileEdge>>,
    pub(crate) unplanned: Vec<NetId>,
    /// Edges whose planned usage exceeds their boundary capacity.
    pub overflowed_edges: usize,
    /// Total tile-edge crossings planned.
    pub crossings: usize,
}

impl GlobalPlan {
    /// The tile edges `net` is planned to cross, in normalized order.
    pub fn edges_of(&self, net: NetId) -> impl Iterator<Item = TileEdge> + '_ {
        self.net_edges[net.index()].iter().copied()
    }

    /// Nets the planner could not fully connect over the tile graph
    /// (some pin tile is unreachable through positive-capacity edges).
    /// These nets receive no crossings: the detail phase keeps their
    /// pins as blockers and the flat fallback is their only chance.
    pub fn unplanned(&self) -> &[NetId] {
        &self.unplanned
    }
}

/// Net-ordering policy for the planning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanOrder {
    /// Smallest pin bounding box first — the historical order, and the
    /// byte-identity baseline every determinism golden pins.
    #[default]
    Bbox,
    /// Static-analysis feature order: nets through the most congested
    /// tiles first (ties: more boundary crossings first, then net id),
    /// from `route_analyze::net_features`. Deterministic and
    /// `jobs`-independent — planning is serial either way — but it
    /// changes which nets claim scarce seam capacity first.
    Features,
}

/// Plans every net of `problem` over `tiles`.
///
/// Nets are processed smallest pin bounding box first; each connection
/// runs a Dijkstra over the tile graph whose edge cost grows with the
/// edge's current usage relative to its capacity. Saturated edges stay
/// passable at a steep penalty so every net receives a plan; overflow is
/// reported and resolved later (the over-subscribed crossings simply
/// fail assignment and fall back to flat routing).
pub fn plan(problem: &Problem, tiles: &TileGrid) -> GlobalPlan {
    plan_with(problem, tiles, PlanOrder::Bbox, &BTreeSet::new())
}

/// [`plan`] with an explicit net-ordering policy and a set of nets to
/// leave out entirely (certified-unroutable nets the precheck already
/// condemned: planning them would waste seam capacity on wiring that
/// can never connect). Skipped nets get no edges and are *not* reported
/// as unplanned — the caller already accounts for them.
pub fn plan_with(
    problem: &Problem,
    tiles: &TileGrid,
    net_order: PlanOrder,
    skip: &BTreeSet<NetId>,
) -> GlobalPlan {
    let base = problem.base_grid();
    // Edge capacities.
    let mut capacity: BTreeMap<TileEdge, usize> = BTreeMap::new();
    for t in tiles.tiles() {
        for n in tiles.neighbors(t) {
            let edge = TileEdge::new(t, n);
            capacity.entry(edge).or_insert_with(|| tiles.edge_cells(edge, &base).1.len());
        }
    }
    let mut usage: BTreeMap<TileEdge, usize> = BTreeMap::new();

    let mut order: Vec<NetId> =
        problem.nets().iter().map(|n| n.id).filter(|id| !skip.contains(id)).collect();
    match net_order {
        // Small bounding boxes first.
        PlanOrder::Bbox => order.sort_by_key(|&id| {
            let net = problem.net(id);
            let first = net.pins[0].at;
            let bbox =
                net.pins.iter().fold(Rect::cell(first), |acc, p| acc.union(&Rect::cell(p.at)));
            (bbox.width() + bbox.height(), id.0)
        }),
        // Hardest nets first, by the static congestion estimate.
        PlanOrder::Features => {
            let features = route_analyze::net_features(problem, tiles.tile());
            order.sort_by_key(|&id| {
                let f = &features[id.index()];
                (std::cmp::Reverse(f.congestion), std::cmp::Reverse(f.crossings), id.0)
            });
        }
    }

    let mut net_edges: Vec<BTreeSet<TileEdge>> = vec![BTreeSet::new(); problem.nets().len()];
    let mut unplanned: Vec<NetId> = Vec::new();
    for id in order {
        let net = problem.net(id);
        let mut pin_tiles: Vec<TileId> = net.pins.iter().map(|p| tiles.tile_of(p.at)).collect();
        pin_tiles.sort_unstable();
        pin_tiles.dedup();
        if pin_tiles.len() <= 1 {
            continue;
        }
        let mut component: HashSet<TileId> = HashSet::from([pin_tiles[0]]);
        for &target in &pin_tiles[1..] {
            if component.contains(&target) {
                continue;
            }
            if let Some(path) = dijkstra(tiles, &component, target, &capacity, &usage) {
                for window in path.windows(2) {
                    let edge = TileEdge::new(window[0], window[1]);
                    *usage.entry(edge).or_insert(0) += 1;
                    net_edges[id.index()].insert(edge);
                }
                component.extend(path);
            } else {
                // No path only happens when the tile graph is
                // disconnected (capacity-zero cuts). Mark the net
                // unplanned and release its partial path: half-planned
                // crossings would waste seam capacity on a net that
                // cannot connect through tiles anyway.
                for &edge in &net_edges[id.index()] {
                    if let Some(u) = usage.get_mut(&edge) {
                        *u -= 1;
                    }
                }
                net_edges[id.index()].clear();
                unplanned.push(id);
                break;
            }
        }
    }
    unplanned.sort_unstable_by_key(|id| id.0);

    let overflowed_edges =
        usage.iter().filter(|(e, &u)| u > capacity.get(e).copied().unwrap_or(0)).count();
    let crossings = net_edges.iter().map(BTreeSet::len).sum();
    GlobalPlan { net_edges, unplanned, overflowed_edges, crossings }
}

/// Dijkstra from any tile of `sources` to `target`; returns the tile
/// path (source first). Saturated edges cost heavily but remain usable;
/// zero-capacity edges are impassable.
fn dijkstra(
    tiles: &TileGrid,
    sources: &HashSet<TileId>,
    target: TileId,
    capacity: &BTreeMap<TileEdge, usize>,
    usage: &BTreeMap<TileEdge, usize>,
) -> Option<Vec<TileId>> {
    let edge_cost = |edge: TileEdge| -> Option<u64> {
        let cap = capacity.get(&edge).copied().unwrap_or(0);
        if cap == 0 {
            return None;
        }
        let used = usage.get(&edge).copied().unwrap_or(0);
        // 1 per hop, plus growing congestion pressure, plus a cliff when
        // the edge would overflow.
        let congestion = (4 * used / cap) as u64;
        let overflow = if used >= cap { 1000 } else { 0 };
        Some(1 + congestion + overflow)
    };

    // Tile keys map onto the maze frontier as (f = distance, g = col,
    // idx = row): lexicographic (f, g, idx) order is exactly the old
    // BinaryHeap<Reverse<(d, (col, row))>> pop order.
    let mut dist: HashMap<TileId, u64> = HashMap::new();
    let mut prev: HashMap<TileId, TileId> = HashMap::new();
    let mut frontier = BucketFrontier::new();
    for &s in sources {
        dist.insert(s, 0);
        frontier.push(0, u64::from(s.col), s.row);
    }
    while let Some((d, col, row)) = frontier.pop() {
        let t = TileId { col: col as u32, row };
        if d > dist.get(&t).copied().unwrap_or(u64::MAX) {
            continue;
        }
        if t == target {
            // Reconstruct.
            let mut path = vec![t];
            let mut cur = t;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for n in tiles.neighbors(t) {
            let Some(cost) = edge_cost(TileEdge::new(t, n)) else { continue };
            let nd = d + cost;
            if nd < dist.get(&n).copied().unwrap_or(u64::MAX) {
                dist.insert(n, nd);
                prev.insert(n, t);
                frontier.push(nd, u64::from(n.col), n.row);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::Point;
    use route_model::{PinSide, ProblemBuilder};

    #[test]
    fn straight_net_plans_a_straight_tile_path() {
        let mut b = ProblemBuilder::switchbox(32, 8);
        b.net("a").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 8);
        let plan = plan(&p, &tiles);
        // 4 tiles across, 3 edges to cross.
        assert_eq!(plan.net_edges[0].len(), 3);
        assert_eq!(plan.crossings, 3);
        assert_eq!(plan.overflowed_edges, 0);
        for e in &plan.net_edges[0] {
            assert!(e.is_horizontal());
            assert_eq!(e.a.row, 0);
        }
    }

    #[test]
    fn intra_tile_net_needs_no_crossings() {
        let mut b = ProblemBuilder::switchbox(32, 32);
        b.net("local")
            .pin_at(Point::new(1, 1), route_geom::Layer::M1)
            .pin_at(Point::new(5, 5), route_geom::Layer::M1);
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 16);
        let plan = plan(&p, &tiles);
        assert!(plan.net_edges[0].is_empty());
    }

    #[test]
    fn congestion_spreads_nets_over_parallel_rows() {
        // Many nets crossing left to right through a 2-tall tile grid:
        // congestion cost should push some onto the upper row of tiles.
        let mut b = ProblemBuilder::switchbox(16, 16);
        for i in 0..7 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 8);
        let g = plan(&p, &tiles);
        assert_eq!(g.overflowed_edges, 0, "capacity 8 vs 7 nets: no overflow needed");
        // Every net is planned, and as the direct edge fills up, the
        // congestion cost pushes later nets onto the 3-hop detour
        // through the upper tile row.
        assert!(g.net_edges.iter().all(|e| !e.is_empty()));
        assert!(g.net_edges.iter().any(|e| e.len() == 1), "early nets take the direct edge");
        assert!(
            g.net_edges.iter().any(|e| e.len() > 1),
            "late nets detour around the congested edge"
        );
    }

    #[test]
    fn capacity_zero_cut_marks_nets_unplanned() {
        use route_geom::Rect;
        let mut b = ProblemBuilder::switchbox(16, 8);
        // A full-stack wall on the tile boundary columns: the edge
        // between the two tiles has zero capacity.
        b.obstacle_rect(Rect::with_size(Point::new(7, 0), 2, 8));
        b.net("cut").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 8);
        let g = plan(&p, &tiles);
        assert_eq!(g.unplanned(), &[route_model::NetId(0)]);
        assert_eq!(g.edges_of(route_model::NetId(0)).count(), 0);
        assert_eq!(g.crossings, 0, "partial paths are released");
    }

    #[test]
    fn plan_with_skips_nets_and_feature_order_is_deterministic() {
        let mut b = ProblemBuilder::switchbox(16, 16);
        for i in 0..4 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 8);
        let skip = BTreeSet::from([route_model::NetId(1)]);
        let g = plan_with(&p, &tiles, PlanOrder::Bbox, &skip);
        assert!(g.net_edges[1].is_empty(), "skipped nets receive no edges");
        assert!(g.unplanned().is_empty(), "skipped is not unplanned");
        assert!(!g.net_edges[0].is_empty());
        // Feature order is a pure function of the problem: two runs
        // agree, and every net still gets planned.
        let a = plan_with(&p, &tiles, PlanOrder::Features, &BTreeSet::new());
        let b2 = plan_with(&p, &tiles, PlanOrder::Features, &BTreeSet::new());
        assert_eq!(a.net_edges, b2.net_edges);
        assert!(a.net_edges.iter().all(|e| !e.is_empty()));
    }

    #[test]
    fn multi_pin_nets_plan_trees() {
        let mut b = ProblemBuilder::switchbox(32, 32);
        b.net("t")
            .pin_side(PinSide::Left, 16)
            .pin_side(PinSide::Right, 16)
            .pin_side(PinSide::Top, 16)
            .pin_side(PinSide::Bottom, 16);
        let p = b.build().unwrap();
        let tiles = TileGrid::new(&p, 16);
        let g = plan(&p, &tiles);
        // Four pin tiles (the four quadrants); a tree needs >= 3 edges.
        assert!(g.net_edges[0].len() >= 3, "{:?}", g.net_edges[0]);
    }
}
