//! The tile (global-cell) grid and its capacitated edges.

use route_geom::{Layer, Point, Rect};
use route_model::{Grid, Occupant, Problem};

/// Identifier of a tile: its column and row in the tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId {
    /// Tile column (0 = leftmost).
    pub col: u32,
    /// Tile row (0 = bottom).
    pub row: u32,
}

/// A direction-free edge between two adjacent tiles, normalised so `a`
/// is the lower/left tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileEdge {
    /// The lower/left tile.
    pub a: TileId,
    /// The upper/right tile.
    pub b: TileId,
}

impl TileEdge {
    /// The edge between two adjacent tiles, in either order.
    pub fn new(a: TileId, b: TileId) -> Self {
        if (a.col, a.row) <= (b.col, b.row) {
            TileEdge { a, b }
        } else {
            TileEdge { a: b, b: a }
        }
    }

    /// Whether the edge joins horizontally adjacent tiles.
    pub fn is_horizontal(&self) -> bool {
        self.a.row == self.b.row
    }
}

/// The tile grid over a problem's floorplan.
///
/// # Examples
///
/// ```
/// use route_benchdata::gen::SwitchboxGen;
/// use route_global::TileGrid;
///
/// let problem = SwitchboxGen { width: 40, height: 24, nets: 6, seed: 1 }.build();
/// let tiles = TileGrid::new(&problem, 16);
/// assert_eq!((tiles.cols(), tiles.rows()), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct TileGrid {
    tile: u32,
    cols: u32,
    rows: u32,
    width: u32,
    height: u32,
}

impl TileGrid {
    /// Tiles `problem`'s grid with `tile`-sized squares (ragged at the
    /// top/right edges).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero.
    pub fn new(problem: &Problem, tile: u32) -> Self {
        assert!(tile > 0, "tile size must be non-zero");
        TileGrid {
            tile,
            cols: problem.width().div_ceil(tile),
            rows: problem.height().div_ceil(tile),
            width: problem.width(),
            height: problem.height(),
        }
    }

    /// Tile side length the grid was built with.
    pub const fn tile(&self) -> u32 {
        self.tile
    }

    /// Number of tile columns.
    pub const fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of tile rows.
    pub const fn rows(&self) -> u32 {
        self.rows
    }

    /// The tile containing grid point `p`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-grid points.
    pub fn tile_of(&self, p: Point) -> TileId {
        debug_assert!(p.x >= 0 && p.y >= 0, "point {p} outside the grid");
        TileId { col: p.x as u32 / self.tile, row: p.y as u32 / self.tile }
    }

    /// The cell rectangle covered by `t`.
    pub fn rect(&self, t: TileId) -> Rect {
        let x0 = (t.col * self.tile) as i32;
        let y0 = (t.row * self.tile) as i32;
        let w = self.tile.min(self.width - t.col * self.tile);
        let h = self.tile.min(self.height - t.row * self.tile);
        Rect::with_size(Point::new(x0, y0), w, h)
    }

    /// All tiles, row-major.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..self.rows).flat_map(move |row| (0..self.cols).map(move |col| TileId { col, row }))
    }

    /// The neighbours of `t` in the tile grid.
    pub fn neighbors(&self, t: TileId) -> Vec<TileId> {
        let mut out = Vec::with_capacity(4);
        if t.col > 0 {
            out.push(TileId { col: t.col - 1, row: t.row });
        }
        if t.col + 1 < self.cols {
            out.push(TileId { col: t.col + 1, row: t.row });
        }
        if t.row > 0 {
            out.push(TileId { col: t.col, row: t.row - 1 });
        }
        if t.row + 1 < self.rows {
            out.push(TileId { col: t.col, row: t.row + 1 });
        }
        out
    }

    /// The boundary cell pairs of an edge: for each usable offset, the
    /// cell on side `a` and the grid-adjacent cell on side `b`, plus the
    /// crossing layer (M1 for horizontal edges, M2 for vertical).
    ///
    /// An offset is usable when both cells are unblocked on the crossing
    /// layer in `base`.
    pub(crate) fn edge_cells(&self, edge: TileEdge, base: &Grid) -> (Layer, Vec<(Point, Point)>) {
        let ra = self.rect(edge.a);
        let rb = self.rect(edge.b);
        let mut pairs = Vec::new();
        let layer = if edge.is_horizontal() { Layer::M1 } else { Layer::M2 };
        if edge.is_horizontal() {
            let xa = ra.max().x;
            let xb = rb.min().x;
            for y in ra.min().y..=ra.max().y {
                let (pa, pb) = (Point::new(xa, y), Point::new(xb, y));
                if base.occupant(pa, layer) != Occupant::Blocked
                    && base.occupant(pb, layer) != Occupant::Blocked
                {
                    pairs.push((pa, pb));
                }
            }
        } else {
            let ya = ra.max().y;
            let yb = rb.min().y;
            for x in ra.min().x..=ra.max().x {
                let (pa, pb) = (Point::new(x, ya), Point::new(x, yb));
                if base.occupant(pa, layer) != Occupant::Blocked
                    && base.occupant(pb, layer) != Occupant::Blocked
                {
                    pairs.push((pa, pb));
                }
            }
        }
        (layer, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder};

    fn toy(width: u32, height: u32) -> Problem {
        let mut b = ProblemBuilder::switchbox(width, height);
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
        b.build().expect("valid")
    }

    #[test]
    fn tiling_covers_the_grid_exactly() {
        let p = toy(20, 13);
        let tiles = TileGrid::new(&p, 8);
        assert_eq!((tiles.cols(), tiles.rows()), (3, 2));
        let mut covered = 0u64;
        for t in tiles.tiles() {
            covered += tiles.rect(t).area();
        }
        assert_eq!(covered, 20 * 13);
        // Every point maps to the tile whose rect contains it.
        for p in p.base_grid().bounds().cells() {
            let t = tiles.tile_of(p);
            assert!(tiles.rect(t).contains(p), "{p} not in tile {t:?}");
        }
    }

    #[test]
    fn neighbors_are_adjacent() {
        let p = toy(24, 24);
        let tiles = TileGrid::new(&p, 8);
        let center = TileId { col: 1, row: 1 };
        assert_eq!(tiles.neighbors(center).len(), 4);
        let corner = TileId { col: 0, row: 0 };
        assert_eq!(tiles.neighbors(corner).len(), 2);
    }

    #[test]
    fn edge_cells_skip_blocked_columns() {
        let mut b = ProblemBuilder::switchbox(16, 8);
        // Block part of the boundary between the two tiles (x = 7, 8).
        for y in 0..4 {
            b.obstacle(Point::new(7, y));
        }
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
        let p = b.build().expect("valid");
        let tiles = TileGrid::new(&p, 8);
        let edge = TileEdge::new(TileId { col: 0, row: 0 }, TileId { col: 1, row: 0 });
        let (layer, pairs) = tiles.edge_cells(edge, &p.base_grid());
        assert_eq!(layer, Layer::M1);
        assert_eq!(pairs.len(), 4, "rows 0-3 are blocked on the a-side");
        for (pa, pb) in pairs {
            assert_eq!(pa.x, 7);
            assert_eq!(pb.x, 8);
            assert!(pa.y >= 4);
        }
    }

    #[test]
    fn vertical_edges_cross_on_m2() {
        let p = toy(8, 16);
        let tiles = TileGrid::new(&p, 8);
        let edge = TileEdge::new(TileId { col: 0, row: 0 }, TileId { col: 0, row: 1 });
        let (layer, pairs) = tiles.edge_cells(edge, &p.base_grid());
        assert_eq!(layer, Layer::M2);
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tile_rejected() {
        let p = toy(8, 8);
        let _ = TileGrid::new(&p, 0);
    }
}
