//! Property tests for the tile grid and the global planner: tiles must
//! partition the grid exactly, and every planned net must cross a
//! connected, endpoint-correct set of tile edges.

use std::collections::{BTreeSet, HashMap, HashSet};

use route_benchdata::gen::{ChipGen, ObstructedGen, SwitchboxGen};
use route_benchdata::rng::SplitMix64;
use route_geom::Point;
use route_global::{plan, GlobalPlan, TileEdge, TileGrid, TileId};
use route_model::Problem;

/// Tiles cover every cell exactly once, and `tile_of` agrees with
/// `rect` for every point of the grid.
fn assert_exact_partition(problem: &Problem, tiles: &TileGrid) {
    let mut owner: HashMap<Point, TileId> = HashMap::new();
    for t in tiles.tiles() {
        for p in tiles.rect(t).cells() {
            let prev = owner.insert(p, t);
            assert!(prev.is_none(), "cell {p} covered by {prev:?} and {t:?}");
        }
    }
    let total = (problem.width() as usize) * (problem.height() as usize);
    assert_eq!(owner.len(), total, "tiles leave gaps");
    for (&p, &t) in &owner {
        assert_eq!(tiles.tile_of(p), t, "tile_of({p}) disagrees with rect coverage");
        assert!(tiles.rect(t).contains(p));
    }
}

/// Every planned net's edge set forms one connected subgraph of the
/// tile grid that touches every pin tile; unplanned nets have no edges.
fn assert_plan_connected(problem: &Problem, tiles: &TileGrid, plan: &GlobalPlan) {
    let unplanned: BTreeSet<_> = plan.unplanned().iter().copied().collect();
    for net in problem.nets() {
        let edges: Vec<TileEdge> = plan.edges_of(net.id).collect();
        let mut pin_tiles: BTreeSet<TileId> =
            net.pins.iter().map(|p| tiles.tile_of(p.at)).collect();
        if unplanned.contains(&net.id) {
            assert!(edges.is_empty(), "unplanned net {:?} still owns edges", net.id);
            continue;
        }
        if pin_tiles.len() <= 1 {
            assert!(edges.is_empty(), "intra-tile net {:?} needs no crossings", net.id);
            continue;
        }
        // Every edge joins grid-adjacent tiles.
        for e in &edges {
            assert!(tiles.neighbors(e.a).contains(&e.b), "edge {e:?} joins non-adjacent tiles");
        }
        // The edge set, seeded from one pin tile, reaches every other.
        let mut reached: HashSet<TileId> = HashSet::new();
        let start = *pin_tiles.iter().next().expect("non-empty");
        reached.insert(start);
        let mut grew = true;
        while grew {
            grew = false;
            for e in &edges {
                if reached.contains(&e.a) != reached.contains(&e.b) {
                    reached.insert(e.a);
                    reached.insert(e.b);
                    grew = true;
                }
            }
        }
        pin_tiles.retain(|t| !reached.contains(t));
        assert!(
            pin_tiles.is_empty(),
            "net {:?}: pin tiles {pin_tiles:?} unreached by planned edges {edges:?}",
            net.id
        );
    }
}

#[test]
fn tiles_partition_arbitrary_grids_exactly() {
    let mut rng = SplitMix64::new(0x7a11e5);
    for _ in 0..40 {
        let width = rng.range(5, 60) as u32;
        let height = rng.range(5, 60) as u32;
        let tile = rng.range(1, 24) as u32;
        let p = SwitchboxGen { width, height, nets: 2, seed: rng.next_u64() }.build();
        let tiles = TileGrid::new(&p, tile);
        assert_exact_partition(&p, &tiles);
    }
}

#[test]
fn planned_tile_paths_are_connected_and_endpoint_correct() {
    for seed in 0..12 {
        let p = SwitchboxGen { width: 40, height: 40, nets: 16, seed }.build();
        let tiles = TileGrid::new(&p, 8 + (seed as u32 % 3) * 4);
        let g = plan(&p, &tiles);
        assert_plan_connected(&p, &tiles, &g);
    }
}

#[test]
fn obstructed_plans_stay_consistent() {
    for seed in 0..8 {
        let p = ObstructedGen { width: 36, height: 36, nets: 12, obstacle_pct: 15, seed }.build();
        let tiles = TileGrid::new(&p, 12);
        assert_exact_partition(&p, &tiles);
        let g = plan(&p, &tiles);
        assert_plan_connected(&p, &tiles, &g);
    }
}

#[test]
fn chip_instances_plan_cleanly() {
    for seed in 0..4 {
        let p = ChipGen::small(seed).build();
        let tiles = TileGrid::new(&p, 16);
        assert_exact_partition(&p, &tiles);
        let g = plan(&p, &tiles);
        assert_plan_connected(&p, &tiles, &g);
    }
}
