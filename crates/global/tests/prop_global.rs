//! Property-based tests of the hierarchical pipeline: on arbitrary
//! floorplans the pasted global result is always legal, and never
//! completes fewer nets than the pure tiled phase.

use proptest::prelude::*;

use route_benchdata::gen::SwitchboxGen;
use route_global::{route_hierarchical, GlobalConfig, TileGrid};
use route_verify::verify;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary floorplans, arbitrary tile sizes: the hierarchical
    /// result is always legal and consistent with its failure report.
    #[test]
    fn hierarchical_routing_is_always_legal(
        side in 12u32..40,
        nets in 2u32..16,
        tile in 4u32..20,
        seed in 0u64..1000,
        fallback in any::<bool>(),
    ) {
        let nets = nets.min(side); // keep the boundary feasible
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let cfg = GlobalConfig { tile, fallback, ..GlobalConfig::default() };
        let out = route_hierarchical(&problem, &cfg);
        let report = verify(&problem, out.db());
        prop_assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "illegal hierarchical routing: {report}"
        );
        prop_assert_eq!(out.failed().len(), report.disconnected_nets());
        prop_assert_eq!(out.is_complete(), report.is_clean());
    }

    /// The fallback pass never loses nets.
    #[test]
    fn fallback_is_monotone(
        side in 16u32..36,
        nets in 4u32..14,
        seed in 0u64..500,
    ) {
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let tiled_only = route_hierarchical(
            &problem,
            &GlobalConfig { fallback: false, ..GlobalConfig::default() },
        );
        let with_fallback = route_hierarchical(
            &problem,
            &GlobalConfig { fallback: true, ..GlobalConfig::default() },
        );
        prop_assert!(with_fallback.failed().len() <= tiled_only.failed().len());
    }

    /// Parallel tile routing is bit-identical to serial tile routing.
    #[test]
    fn parallel_equals_serial(
        side in 16u32..40,
        nets in 4u32..14,
        seed in 0u64..200,
    ) {
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let serial = route_hierarchical(
            &problem,
            &GlobalConfig { parallel: false, ..GlobalConfig::default() },
        );
        let parallel = route_hierarchical(
            &problem,
            &GlobalConfig { parallel: true, ..GlobalConfig::default() },
        );
        prop_assert_eq!(serial.failed(), parallel.failed());
        prop_assert_eq!(serial.db().stats(), parallel.db().stats());
        prop_assert_eq!(serial.db().grid(), parallel.db().grid());
    }

    /// Tiling arithmetic: every grid point belongs to exactly one tile
    /// whose rectangle contains it, and tile rects partition the grid.
    #[test]
    fn tiles_partition_the_grid(
        w in 3u32..50,
        h in 3u32..50,
        tile in 1u32..20,
    ) {
        let mut b = route_model::ProblemBuilder::switchbox(w, h);
        b.net("a").pin_side(route_model::PinSide::Left, 0).pin_side(
            route_model::PinSide::Right,
            0,
        );
        let p = b.build().expect("valid");
        let tiles = TileGrid::new(&p, tile);
        let mut covered = 0u64;
        for t in tiles.tiles() {
            covered += tiles.rect(t).area();
        }
        prop_assert_eq!(covered, u64::from(w) * u64::from(h));
        for pt in p.base_grid().bounds().cells() {
            let t = tiles.tile_of(pt);
            prop_assert!(tiles.rect(t).contains(pt));
        }
    }
}
