//! Property-style tests of the hierarchical pipeline: on arbitrary
//! floorplans the pasted global result is always legal, and never
//! completes fewer nets than the pure tiled phase. Instances come from
//! the deterministic `route_benchdata` generator so the crate builds
//! with zero registry access.

use route_benchdata::gen::SwitchboxGen;
use route_benchdata::rng::SplitMix64;
use route_global::{route_hierarchical, GlobalConfig, TileGrid};
use route_verify::verify;

/// Arbitrary floorplans, arbitrary tile sizes: the hierarchical
/// result is always legal and consistent with its failure report.
#[test]
fn hierarchical_routing_is_always_legal() {
    let mut rng = SplitMix64::new(0x6701);
    for _ in 0..24 {
        let side = rng.range(12, 40) as u32;
        let nets = (rng.range(2, 16) as u32).min(side);
        let tile = rng.range(4, 20) as u32;
        let seed = rng.below(1000);
        let fallback = rng.chance(50);
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let cfg = GlobalConfig { tile, fallback, ..GlobalConfig::default() };
        let out = route_hierarchical(&problem, &cfg);
        let report = verify(&problem, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "illegal hierarchical routing: {report}"
        );
        assert_eq!(out.failed().len(), report.disconnected_nets());
        assert_eq!(out.is_complete(), report.is_clean());
    }
}

/// The fallback pass never loses nets.
#[test]
fn fallback_is_monotone() {
    let mut rng = SplitMix64::new(0x6702);
    for _ in 0..16 {
        let side = rng.range(16, 36) as u32;
        let nets = rng.range(4, 14) as u32;
        let seed = rng.below(500);
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let tiled_only = route_hierarchical(
            &problem,
            &GlobalConfig { fallback: false, ..GlobalConfig::default() },
        );
        let with_fallback = route_hierarchical(
            &problem,
            &GlobalConfig { fallback: true, ..GlobalConfig::default() },
        );
        assert!(with_fallback.failed().len() <= tiled_only.failed().len());
    }
}

/// Parallel tile routing is bit-identical to serial tile routing.
#[test]
fn parallel_equals_serial() {
    let mut rng = SplitMix64::new(0x6703);
    for _ in 0..12 {
        let side = rng.range(16, 40) as u32;
        let nets = rng.range(4, 14) as u32;
        let seed = rng.below(200);
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let serial = route_hierarchical(
            &problem,
            &GlobalConfig { parallel: false, ..GlobalConfig::default() },
        );
        let parallel = route_hierarchical(
            &problem,
            &GlobalConfig { parallel: true, ..GlobalConfig::default() },
        );
        assert_eq!(serial.failed(), parallel.failed());
        assert_eq!(serial.db().stats(), parallel.db().stats());
        assert_eq!(serial.db().grid(), parallel.db().grid());
    }
}

/// Tiling arithmetic: every grid point belongs to exactly one tile
/// whose rectangle contains it, and tile rects partition the grid.
#[test]
fn tiles_partition_the_grid() {
    let mut rng = SplitMix64::new(0x6704);
    for _ in 0..48 {
        let w = rng.range(3, 50) as u32;
        let h = rng.range(3, 50) as u32;
        let tile = rng.range(1, 20) as u32;
        let mut b = route_model::ProblemBuilder::switchbox(w, h);
        b.net("a").pin_side(route_model::PinSide::Left, 0).pin_side(route_model::PinSide::Right, 0);
        let p = b.build().expect("valid");
        let tiles = TileGrid::new(&p, tile);
        let mut covered = 0u64;
        for t in tiles.tiles() {
            covered += tiles.rect(t).area();
        }
        assert_eq!(covered, u64::from(w) * u64::from(h));
        for pt in p.base_grid().bounds().cells() {
            let t = tiles.tile_of(pt);
            assert!(tiles.rect(t).contains(pt));
        }
    }
}
