//! Observer-layer contract tests for the rip-up/reroute router.
//!
//! Three properties back the observability layer:
//!
//! 1. **Determinism / golden sequence** — a fixed-seed congested
//!    switchbox produces the same event sequence on every run, and the
//!    sequence obeys the protocol (a net is scheduled before any of its
//!    terminal events; every search belongs to a scheduled net).
//! 2. **Observation is inert** — attaching any observer never changes
//!    the routed database ([`RouteDb::checksum`] equality).
//! 3. **Events are truthful** — metrics reconstructed from the event
//!    stream agree with the router's own work counters wherever the
//!    event vocabulary covers them.

use mighty::{MightyRouter, RouterConfig};
use route_benchdata::gen::SwitchboxGen;
use route_benchdata::rng::SplitMix64;
use route_model::{EventLog, MetricsRecorder, PinSide, Problem, ProblemBuilder, RouteEvent};

/// A dense fixed-seed switchbox that forces weak and strong
/// modification without being unroutable.
fn congested_box() -> Problem {
    SwitchboxGen { width: 12, height: 10, nets: 12, seed: 23 }.build()
}

/// Arbitrary switchboxes, mirroring the prop_router generator.
fn random_problems(seed: u64, cases: usize) -> Vec<Problem> {
    let mut rng = SplitMix64::new(seed);
    let sides = [PinSide::Left, PinSide::Right, PinSide::Top, PinSide::Bottom];
    let mut out = Vec::new();
    while out.len() < cases {
        let w = rng.range(5, 14) as u32;
        let h = rng.range(5, 12) as u32;
        let pairs = rng.range(1, 10) as usize;
        let clamp = |side: PinSide, o: u32| match side {
            PinSide::Left | PinSide::Right => o % h,
            PinSide::Top | PinSide::Bottom => o % w,
        };
        let mut b = ProblemBuilder::switchbox(w, h);
        for i in 0..pairs {
            let s1 = sides[rng.below(4) as usize];
            let s2 = sides[rng.below(4) as usize];
            let o1 = rng.below(12) as u32;
            let o2 = rng.below(12) as u32;
            b.net(format!("n{i}")).pin_side(s1, clamp(s1, o1)).pin_side(s2, clamp(s2, o2));
        }
        if let Ok(p) = b.build() {
            out.push(p);
        }
    }
    out
}

#[test]
fn fixed_seed_event_sequence_is_stable() {
    let problem = congested_box();
    let router = MightyRouter::new(RouterConfig::default());
    let mut first = EventLog::new();
    let outcome = router.route_observed(&problem, &mut first);
    assert!(outcome.is_complete(), "the golden instance routes completely");

    // Bit-identical event stream on a second run.
    let mut second = EventLog::new();
    router.route_observed(&problem, &mut second);
    assert_eq!(first.events(), second.events());

    // The instrumented run exercised the full vocabulary.
    let stats = outcome.stats();
    assert!(stats.weak_pushes > 0, "golden instance must force weak modification: {stats:?}");
    assert!(stats.rips > 0, "golden instance must force strong rip-up: {stats:?}");
    assert_eq!(first.count_kind("weak_modification") as u64, stats.weak_pushes);
    assert_eq!(first.count_kind("strong_ripup") as u64, stats.rips);
    assert!(first.count_kind("penalty_escalation") > 0);
    assert!(first.count_kind("search_done") > 0);

    // Protocol shape: terminal and search events only for nets already
    // scheduled, and the accounting balances — every schedule reaches
    // exactly one terminal event.
    let mut scheduled = std::collections::BTreeSet::new();
    let mut open = 0i64;
    for ev in first.events() {
        match *ev {
            RouteEvent::NetScheduled { net } => {
                scheduled.insert(net);
                open += 1;
            }
            RouteEvent::SearchDone { net, .. } => {
                assert!(scheduled.contains(&net), "search for an unscheduled net");
            }
            RouteEvent::NetCommitted { net } | RouteEvent::NetFailed { net } => {
                assert!(scheduled.contains(&net), "terminal event for an unscheduled net");
                open -= 1;
            }
            RouteEvent::WeakModification { net, .. } => {
                assert!(scheduled.contains(&net));
            }
            RouteEvent::StrongRipup { net, .. } => {
                assert!(scheduled.contains(&net));
            }
            RouteEvent::PenaltyEscalation { .. } => {}
        }
    }
    assert_eq!(open, 0, "every scheduled net must reach a terminal event");
    assert_eq!(scheduled.len(), problem.nets().len());
}

#[test]
fn observation_never_changes_the_routing() {
    for (i, problem) in random_problems(0x0B5E, 32).iter().enumerate() {
        let router = MightyRouter::new(RouterConfig::default());
        let plain = router.route(problem);
        let mut log = EventLog::new();
        let logged = router.route_observed(problem, &mut log);
        let mut metrics = MetricsRecorder::new();
        let metered = router.route_observed(problem, &mut metrics);
        assert_eq!(
            plain.db().checksum(),
            logged.db().checksum(),
            "case {i}: event log changed the routing"
        );
        assert_eq!(
            plain.db().checksum(),
            metered.db().checksum(),
            "case {i}: metrics recorder changed the routing"
        );
        assert_eq!(plain.failed(), logged.failed(), "case {i}");
        assert_eq!(plain.stats(), logged.stats(), "case {i}");
    }
}

#[test]
fn event_derived_metrics_agree_with_router_stats() {
    for (i, problem) in random_problems(0x0DD5, 24).iter().enumerate() {
        let router = MightyRouter::new(RouterConfig::default());
        let mut log = EventLog::new();
        let outcome = router.route_observed(problem, &mut log);
        let mut rec = MetricsRecorder::new();
        log.replay(&mut rec);
        let derived = rec.router();
        let actual = outcome.stats();
        // `hard_routes`, `reroutes` and `weak_rollbacks` intentionally
        // differ (see MetricsRecorder::router docs); everything the
        // event vocabulary covers must match exactly.
        assert_eq!(derived.soft_routes, actual.soft_routes, "case {i}");
        assert_eq!(derived.weak_pushes, actual.weak_pushes, "case {i}");
        assert_eq!(derived.rips, actual.rips, "case {i}");
        assert_eq!(derived.expanded, actual.expanded, "case {i}");
        assert_eq!(derived.events, actual.events, "case {i}");
        assert_eq!(rec.nets_committed() + rec.nets_failed(), rec.nets_scheduled(), "case {i}");
        assert_eq!(
            rec.nets_failed() as usize,
            outcome.failed().len(),
            "case {i}: terminal failure events match the failed-net list"
        );
    }
}
