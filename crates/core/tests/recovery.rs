//! Supervised recovery contract tests: every recovery path fires under
//! fault injection, deadline edge cases salvage instead of discarding,
//! counters are deterministic across thread counts, and a journal
//! "killed" mid-run resumes to the exact uninterrupted outcome.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use mighty::engine::{EngineConfig, RouteEngine, SupervisedBatch};
use mighty::{
    EngineFault, FallbackChain, FaultPlan, InstanceStatus, RecoveryPath, RetryPolicy, RouterConfig,
    RunJournal, Supervisor,
};
use route_benchdata::gen::routable_switchbox;
use route_model::Problem;

fn batch(count: u64) -> Vec<Problem> {
    (0..count).map(|i| routable_switchbox(12, 12, 5, 0xfa11 ^ i)).collect()
}

fn keys(problems: &[Problem]) -> Vec<(String, u64)> {
    (0..problems.len()).map(|i| (format!("inst-{i}.sb"), 1000 + i as u64)).collect()
}

/// The deterministic slice of [`mighty::EngineStats`]: everything but
/// wall-clock timings and thread bookkeeping.
fn counters(s: &mighty::EngineStats) -> [u64; 12] {
    [
        s.instances as u64,
        s.complete as u64,
        s.salvaged as u64,
        s.infeasible as u64,
        s.errored as u64,
        s.panicked as u64,
        s.timed_out as u64,
        s.retried as u64,
        s.fell_back as u64,
        s.failed_nets as u64,
        s.wirelength,
        s.vias,
    ]
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vroute-recovery-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_recovery_path_fires_with_deterministic_stats() {
    let problems = batch(6);
    // Spurious failures on the first attempt of instances 1 and 4: the
    // retry completes them. Everything else routes directly.
    let fault = FaultPlan::new(EngineFault::SpuriousFail, Some(vec![1, 4]), 1);
    let run = |jobs: usize| -> SupervisedBatch {
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(2))
            .with_fallbacks(FallbackChain::lee())
            .with_fault(fault.clone());
        RouteEngine::with_jobs(jobs).route_batch_supervised(&sup, &problems, None)
    };

    let serial = run(1);
    assert_eq!(serial.stats.complete, 6);
    assert_eq!(serial.stats.retried, 2);
    assert_eq!(serial.entries[1].path, RecoveryPath::Retried { attempt: 1 });
    assert_eq!(serial.entries[4].path, RecoveryPath::Retried { attempt: 1 });
    assert_eq!(serial.entries[0].path, RecoveryPath::Direct);

    // The same batch across thread counts: identical counters, paths
    // and checksums (satellite requirement: --jobs 1 vs --jobs N).
    let parallel = run(4);
    assert_eq!(counters(&serial.stats), counters(&parallel.stats));
    for (a, b) in serial.entries.iter().zip(&parallel.entries) {
        assert_eq!(a.path, b.path, "instance {}", a.index);
        assert_eq!(a.checksum, b.checksum, "instance {}", a.index);
        assert_eq!(a.attempts, b.attempts, "instance {}", a.index);
    }
}

#[test]
fn exhausted_retries_fall_back_to_lee() {
    let problems = batch(3);
    // Fail the primary on every attempt of instance 2 (retries
    // included); the Lee fallback rescues it.
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(1))
        .with_fallbacks(FallbackChain::lee())
        .with_fault(FaultPlan::new(EngineFault::SpuriousFail, Some(vec![2]), 2));
    let out = RouteEngine::with_jobs(2).route_batch_supervised(&sup, &problems, None);
    assert_eq!(out.entries[2].path, RecoveryPath::FellBack { router: "lee".to_string() });
    assert_eq!(out.entries[2].status, InstanceStatus::Complete);
    assert_eq!(out.stats.fell_back, 1);
    assert_eq!(out.stats.complete, 3);
}

#[test]
fn zero_deadline_salvages_every_instance() {
    // A zero wall-clock budget disqualifies even instant attempts, but
    // the engine must return the routed metal as salvage, not nothing.
    let problems = batch(3);
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::default());
    let engine = RouteEngine::new(EngineConfig {
        jobs: 2,
        deadline: Some(Duration::ZERO),
        ..EngineConfig::default()
    });
    let out = engine.route_batch_supervised(&sup, &problems, None);
    assert_eq!(out.stats.complete, 0, "nothing may beat a zero deadline");
    assert_eq!(out.stats.salvaged, 3);
    assert_eq!(out.stats.timed_out, 0, "salvage absorbs the deadline failures");
    for (entry, outcome) in out.entries.iter().zip(&out.outcomes) {
        assert_eq!(entry.status, InstanceStatus::Salvaged);
        assert_eq!(entry.lint_findings, Some(0), "salvaged db must lint clean");
        assert!(entry.error.as_deref().is_some_and(|e| e.contains("deadline")));
        let outcome = outcome.as_ref().expect("live outcome");
        let salvage = outcome.salvage.as_ref().expect("salvage info");
        assert!(salvage.lint.is_legal());
    }
}

#[test]
fn deadline_on_the_final_retry_still_salvages() {
    let problems = batch(1);
    // Every attempt sleeps past the deadline, including the final one
    // of the retry chain; the routing from those disqualified attempts
    // must still be salvaged.
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(2))
        .with_fault(FaultPlan::new(EngineFault::Delay(25), None, 99));
    let engine = RouteEngine::new(EngineConfig {
        jobs: 1,
        deadline: Some(Duration::from_millis(5)),
        ..EngineConfig::default()
    });
    let out = engine.route_batch_supervised(&sup, &problems, None);
    assert_eq!(out.entries[0].status, InstanceStatus::Salvaged);
    assert_eq!(out.entries[0].attempts, 3, "the whole retry chain ran");
    let outcome = out.outcomes[0].as_ref().expect("live outcome");
    assert_eq!(outcome.path, RecoveryPath::Salvaged);
    let salvage = outcome.salvage.as_ref().expect("salvage info");
    assert!(salvage.lint.is_legal(), "salvaged snapshot must be legal");
    assert!(salvage.terminal.contains("deadline exceeded"), "{}", salvage.terminal);
}

#[test]
fn panicked_instances_without_snapshots_fail_terminally() {
    let problems = batch(2);
    // Panic on every attempt of instance 0; no routing ever exists, so
    // there is nothing to salvage and the panic surfaces.
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(3))
        .with_fault(FaultPlan::new(EngineFault::Panic, Some(vec![0]), 99));
    let out = RouteEngine::with_jobs(1).route_batch_supervised(&sup, &problems, None);
    assert_eq!(out.entries[0].status, InstanceStatus::Panicked);
    assert_eq!(out.entries[0].attempts, 2, "panics retry at most once");
    assert_eq!(out.entries[1].status, InstanceStatus::Complete);
    assert_eq!(out.stats.panicked, 1);
    assert_eq!(out.stats.complete, 1);
}

/// Routes a journaled batch, returning its entries.
fn journaled_run(problems: &[Problem], dir: &Path, resume: bool) -> (SupervisedBatch, RunJournal) {
    let instances = keys(problems);
    let journal = if resume {
        RunJournal::resume(dir, &instances).expect("journal opens")
    } else {
        RunJournal::create(dir, &instances).expect("journal opens")
    };
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(1));
    let out = RouteEngine::with_jobs(2).route_batch_supervised(&sup, problems, Some(&journal));
    assert_eq!(journal.take_error(), None);
    (out, journal)
}

#[test]
fn a_killed_run_resumes_to_the_identical_outcome() {
    let problems = batch(8);
    let dir = temp_dir("kill-resume");

    // The uninterrupted reference run.
    let (reference, _) = journaled_run(&problems, &dir, false);
    assert_eq!(reference.stats.complete, 8);

    // Simulate a SIGKILL mid-run: keep the first 3 completed records,
    // leave one in-flight marker and a torn half-line, exactly as a
    // dying process would.
    let log = dir.join(RunJournal::FILE_NAME);
    let text = fs::read_to_string(&log).expect("journal exists");
    let done: Vec<&str> = text.lines().filter(|l| l.contains("\"ev\":\"done\"")).collect();
    let begins: Vec<&str> = text.lines().filter(|l| l.contains("\"ev\":\"begin\"")).collect();
    let torn = &done[3][..done[3].len() / 2];
    let crashed = format!("{}\n{}\n{}", done[..3].join("\n"), begins[4], torn);
    fs::write(&log, crashed).expect("journal rewritten");

    // Resume: the three intact records are skipped, everything else —
    // including the in-flight and torn instances — re-runs.
    let (resumed, journal) = journaled_run(&problems, &dir, true);
    assert_eq!(resumed.stats.resumed_skips, 3);
    assert_eq!(journal.resumed_count(), 3);
    assert_eq!(resumed.stats.complete, 8);

    // The final per-instance records are identical to the
    // uninterrupted run, field for field.
    assert_eq!(resumed.entries, reference.entries);
    // Resumed slots have no live routing; re-run slots do.
    let live = resumed.outcomes.iter().filter(|o| o.is_some()).count();
    assert_eq!(live, 5);

    // A second resume skips everything and still reports identically.
    let (replayed, _) = journaled_run(&problems, &dir, true);
    assert_eq!(replayed.stats.resumed_skips, 8);
    assert_eq!(replayed.entries, reference.entries);
    assert!(replayed.outcomes.iter().all(Option::is_none));
}

#[test]
fn precheck_infeasibility_is_journaled_and_resumed() {
    use route_geom::Point;
    use route_model::{PinSide, ProblemBuilder};
    let mut b = ProblemBuilder::switchbox(5, 4);
    for y in 0..4 {
        b.obstacle(Point::new(2, y));
    }
    b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    let problems = vec![routable_switchbox(10, 10, 4, 3), b.build().expect("valid problem")];

    let dir = temp_dir("infeasible");
    let instances = keys(&problems);
    let journal = RunJournal::create(&dir, &instances).expect("journal opens");
    let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::default());
    let engine =
        RouteEngine::new(EngineConfig { jobs: 1, precheck: true, ..EngineConfig::default() });
    let out = engine.route_batch_supervised(&sup, &problems, Some(&journal));
    assert_eq!(out.entries[1].status, InstanceStatus::Infeasible);
    assert_eq!(out.entries[1].attempts, 0, "the proof spares the router entirely");
    assert_eq!(out.stats.infeasible, 1);
    drop(journal);

    let journal = RunJournal::resume(&dir, &instances).expect("journal reopens");
    let resumed = engine.route_batch_supervised(&sup, &problems, Some(&journal));
    assert_eq!(resumed.stats.resumed_skips, 2, "proofs are cached in the journal too");
    assert_eq!(resumed.entries, out.entries);
}
