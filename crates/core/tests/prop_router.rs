//! Property-style tests of the rip-up/reroute router: on arbitrary
//! problems the router terminates and produces legal (possibly
//! incomplete) routings, and modification never leaves damage behind.
//! Instances come from the deterministic `route_benchdata` generator so
//! the crate builds with zero registry access.

use mighty::{MightyRouter, NetOrder, RouterConfig};
use route_benchdata::rng::SplitMix64;
use route_geom::Point;
use route_model::{PinSide, Problem, ProblemBuilder};
use route_verify::verify;

/// Arbitrary switchbox with boundary pins; may be congested or even
/// unroutable — that is the point.
fn random_problem(rng: &mut SplitMix64) -> Option<Problem> {
    let w = rng.range(5, 14) as u32;
    let h = rng.range(5, 12) as u32;
    let pairs = rng.range(1, 10) as usize;
    let sides = [PinSide::Left, PinSide::Right, PinSide::Top, PinSide::Bottom];
    let clamp = |side: PinSide, o: u32| match side {
        PinSide::Left | PinSide::Right => o % h,
        PinSide::Top | PinSide::Bottom => o % w,
    };
    let mut b = ProblemBuilder::switchbox(w, h);
    for i in 0..pairs {
        let s1 = sides[rng.below(4) as usize];
        let s2 = sides[rng.below(4) as usize];
        let o1 = rng.below(12) as u32;
        let o2 = rng.below(12) as u32;
        b.net(format!("n{i}")).pin_side(s1, clamp(s1, o1)).pin_side(s2, clamp(s2, o2));
    }
    b.build().ok()
}

fn problems(seed: u64, cases: usize) -> Vec<Problem> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    while out.len() < cases {
        if let Some(p) = random_problem(&mut rng) {
            out.push(p);
        }
    }
    out
}

/// The router terminates on arbitrary input and its output verifies
/// as legal: complete nets clean, failed nets merely disconnected —
/// never shorts, never obstacle overlaps, never grid corruption.
#[test]
fn router_output_is_always_legal() {
    for problem in problems(0x2001, 48) {
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let report = verify(&problem, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "illegal routing: {report}");
        // Failure reporting is consistent with the verifier.
        assert_eq!(out.failed().len(), report.disconnected_nets());
        assert_eq!(out.is_complete(), report.is_clean());
    }
}

/// Every ablation configuration is equally legal.
#[test]
fn ablations_are_always_legal() {
    let configs = [
        RouterConfig::no_modification(),
        RouterConfig { strong: false, ..RouterConfig::default() },
        RouterConfig { weak: false, ..RouterConfig::default() },
        RouterConfig::default(),
    ];
    for (i, problem) in problems(0x2002, 48).into_iter().enumerate() {
        let cfg = configs[i % configs.len()];
        let out = MightyRouter::new(cfg).route(&problem);
        let report = verify(&problem, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "illegal routing: {report}");
    }
}

/// The full router never completes fewer nets than the
/// no-modification control on the same instance (the best-state
/// guarantee).
#[test]
fn modification_never_hurts() {
    for problem in problems(0x2003, 32) {
        let base = MightyRouter::new(RouterConfig::no_modification()).route(&problem);
        let full = MightyRouter::new(RouterConfig::default()).route(&problem);
        assert!(
            full.failed().len() <= base.failed().len(),
            "modification lost nets: {} vs {}",
            full.failed().len(),
            base.failed().len()
        );
    }
}

/// Determinism: the same problem and configuration produce the same
/// outcome.
#[test]
fn routing_is_deterministic() {
    for problem in problems(0x2004, 32) {
        let cfg = RouterConfig { order: NetOrder::Declared, ..RouterConfig::default() };
        let a = MightyRouter::new(cfg).route(&problem);
        let b = MightyRouter::new(cfg).route(&problem);
        assert_eq!(a.failed(), b.failed());
        assert_eq!(a.db().stats(), b.db().stats());
    }
}

#[test]
fn interior_pins_route_too() {
    // Regression-style deterministic case: interior macro pins.
    let mut b = ProblemBuilder::switchbox(10, 10);
    b.net("io").pin_at(Point::new(4, 4), route_geom::Layer::M1).pin_side(PinSide::Top, 8);
    b.net("x").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
    let p = b.build().expect("valid");
    let out = MightyRouter::new(RouterConfig::default()).route(&p);
    assert!(out.is_complete());
    assert!(verify(&p, out.db()).is_clean());
}
