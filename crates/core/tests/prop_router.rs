//! Property-based tests of the rip-up/reroute router: on arbitrary
//! problems the router terminates and produces legal (possibly
//! incomplete) routings, and modification never leaves damage behind.

use proptest::prelude::*;

use mighty::{MightyRouter, NetOrder, RouterConfig};
use route_geom::Point;
use route_model::{PinSide, Problem, ProblemBuilder};
use route_verify::verify;

/// Arbitrary switchbox with boundary pins; may be congested or even
/// unroutable — that is the point.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        5u32..14,
        5u32..12,
        prop::collection::vec((0usize..4, 0u32..12, 0usize..4, 0u32..12), 1..10),
    )
        .prop_filter_map("valid problem", |(w, h, pin_pairs)| {
            let sides = [PinSide::Left, PinSide::Right, PinSide::Top, PinSide::Bottom];
            let clamp = |side: PinSide, o: u32| match side {
                PinSide::Left | PinSide::Right => o % h,
                PinSide::Top | PinSide::Bottom => o % w,
            };
            let mut b = ProblemBuilder::switchbox(w, h);
            for (i, (s1, o1, s2, o2)) in pin_pairs.iter().enumerate() {
                let (s1, s2) = (sides[*s1], sides[*s2]);
                b.net(format!("n{i}"))
                    .pin_side(s1, clamp(s1, *o1))
                    .pin_side(s2, clamp(s2, *o2));
            }
            b.build().ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The router terminates on arbitrary input and its output verifies
    /// as legal: complete nets clean, failed nets merely disconnected —
    /// never shorts, never obstacle overlaps, never grid corruption.
    #[test]
    fn router_output_is_always_legal(problem in arb_problem()) {
        let out = MightyRouter::new(RouterConfig::default()).route(&problem);
        let report = verify(&problem, out.db());
        prop_assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "illegal routing: {report}"
        );
        // Failure reporting is consistent with the verifier.
        prop_assert_eq!(out.failed().len(), report.disconnected_nets());
        prop_assert_eq!(out.is_complete(), report.is_clean());
    }

    /// Every ablation configuration is equally legal.
    #[test]
    fn ablations_are_always_legal(problem in arb_problem(), which in 0usize..4) {
        let cfg = match which {
            0 => RouterConfig::no_modification(),
            1 => RouterConfig { strong: false, ..RouterConfig::default() },
            2 => RouterConfig { weak: false, ..RouterConfig::default() },
            _ => RouterConfig::default(),
        };
        let out = MightyRouter::new(cfg).route(&problem);
        let report = verify(&problem, out.db());
        prop_assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "illegal routing: {report}"
        );
    }

    /// The full router never completes fewer nets than the
    /// no-modification control on the same instance (the best-state
    /// guarantee).
    #[test]
    fn modification_never_hurts(problem in arb_problem()) {
        let base = MightyRouter::new(RouterConfig::no_modification()).route(&problem);
        let full = MightyRouter::new(RouterConfig::default()).route(&problem);
        prop_assert!(
            full.failed().len() <= base.failed().len(),
            "modification lost nets: {} vs {}",
            full.failed().len(),
            base.failed().len()
        );
    }

    /// Determinism: the same problem and configuration produce the same
    /// outcome.
    #[test]
    fn routing_is_deterministic(problem in arb_problem()) {
        let cfg = RouterConfig { order: NetOrder::Declared, ..RouterConfig::default() };
        let a = MightyRouter::new(cfg).route(&problem);
        let b = MightyRouter::new(cfg).route(&problem);
        prop_assert_eq!(a.failed(), b.failed());
        prop_assert_eq!(a.db().stats(), b.db().stats());
    }
}

#[test]
fn interior_pins_route_too() {
    // Regression-style deterministic case: interior macro pins.
    let mut b = ProblemBuilder::switchbox(10, 10);
    b.net("io").pin_at(Point::new(4, 4), route_geom::Layer::M1).pin_side(PinSide::Top, 8);
    b.net("x").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
    let p = b.build().expect("valid");
    let out = MightyRouter::new(RouterConfig::default()).route(&p);
    assert!(out.is_complete());
    assert!(verify(&p, out.db()).is_clean());
}
