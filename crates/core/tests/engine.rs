//! Batch engine contract tests: deterministic ordering across thread
//! counts, panic isolation, deadline disqualification and stats.

use std::time::Duration;

use mighty::engine::{EngineConfig, RouteEngine};
use mighty::{MightyRouter, RouterConfig};
use route_benchdata::gen::routable_switchbox;
use route_model::{DetailedRouter, Problem, RouteDb, RouteError, RouteResult, Routing};

fn batch(count: u64) -> Vec<Problem> {
    (0..count).map(|i| routable_switchbox(12, 12, 5, 0x5eed ^ i)).collect()
}

#[test]
fn results_are_identical_across_thread_counts() {
    let problems = batch(24);
    let router = MightyRouter::new(RouterConfig::default());
    let serial = RouteEngine::with_jobs(1).route_batch(&router, &problems);
    let parallel = RouteEngine::with_jobs(4).route_batch(&router, &problems);
    assert_eq!(serial.results.len(), problems.len());
    for (i, (a, b)) in serial.results.iter().zip(&parallel.results).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.db.checksum(), b.db.checksum(), "instance {i} diverged");
        assert_eq!(a.failed, b.failed, "instance {i} diverged");
    }
    assert_eq!(serial.stats.complete, parallel.stats.complete);
    assert_eq!(serial.stats.wirelength, parallel.stats.wirelength);
    assert_eq!(serial.stats.vias, parallel.stats.vias);
}

#[test]
fn results_keep_input_order() {
    // Problems of very different sizes, so completion order under
    // parallelism differs from input order.
    let problems: Vec<Problem> = (0..12)
        .map(|i| {
            let side = if i % 2 == 0 { 24 } else { 6 };
            routable_switchbox(side, side, 3, 7 + i)
        })
        .collect();
    let router = MightyRouter::new(RouterConfig::default());
    let out = RouteEngine::with_jobs(4).route_batch(&router, &problems);
    let reference = MightyRouter::new(RouterConfig::default());
    for (i, (problem, result)) in problems.iter().zip(&out.results).enumerate() {
        let direct = reference.route(problem);
        let routing = result.as_ref().unwrap();
        assert_eq!(routing.db.checksum(), direct.db().checksum(), "slot {i} misplaced");
    }
}

/// Panics on every problem whose first net is named the poison marker.
struct Trapped;

impl DetailedRouter for Trapped {
    fn name(&self) -> &str {
        "trapped"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        if problem.nets().iter().any(|n| n.name == "poison") {
            panic!("tripped on a poisoned instance");
        }
        Ok(Routing { db: RouteDb::new(problem), failed: Vec::new() })
    }
}

fn poisoned(name: &str) -> Problem {
    let mut b = route_model::ProblemBuilder::switchbox(6, 6);
    b.net(name).pin_side(route_model::PinSide::Left, 2).pin_side(route_model::PinSide::Right, 2);
    b.build().expect("valid problem")
}

#[test]
fn a_panicking_instance_does_not_kill_the_batch() {
    let problems = vec![poisoned("fine"), poisoned("poison"), poisoned("fine"), poisoned("poison")];
    let out = RouteEngine::with_jobs(2).route_batch(&Trapped, &problems);
    assert_eq!(out.results.len(), 4);
    assert!(out.results[0].is_ok());
    assert!(out.results[2].is_ok());
    for i in [1usize, 3] {
        match &out.results[i] {
            Err(RouteError::Panicked { message }) => {
                assert!(message.contains("poisoned"), "slot {i}: {message}");
            }
            other => panic!("slot {i}: expected Panicked, got {other:?}"),
        }
    }
    assert_eq!(out.stats.panicked, 2);
    assert_eq!(out.stats.complete, 2);
}

/// Sleeps long enough to blow any sub-sleep deadline.
struct Sleepy;

impl DetailedRouter for Sleepy {
    fn name(&self) -> &str {
        "sleepy"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        std::thread::sleep(Duration::from_millis(30));
        Ok(Routing { db: RouteDb::new(problem), failed: Vec::new() })
    }
}

#[test]
fn deadline_disqualifies_slow_instances() {
    let problems = vec![poisoned("fine")];
    let engine = RouteEngine::new(EngineConfig {
        jobs: 1,
        deadline: Some(Duration::from_millis(1)),
        ..EngineConfig::default()
    });
    let out = engine.route_batch(&Sleepy, &problems);
    match &out.results[0] {
        Err(RouteError::DeadlineExceeded { elapsed_ms, budget_ms }) => {
            assert!(*elapsed_ms >= *budget_ms);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(out.stats.timed_out, 1);
    // A generous deadline leaves the result alone.
    let lenient = RouteEngine::new(EngineConfig {
        jobs: 1,
        deadline: Some(Duration::from_secs(60)),
        ..EngineConfig::default()
    });
    assert!(lenient.route_batch(&Sleepy, &problems).results[0].is_ok());
}

#[test]
fn empty_batch_is_a_noop() {
    let router = MightyRouter::new(RouterConfig::default());
    let out = RouteEngine::with_jobs(8).route_batch(&router, &[]);
    assert!(out.results.is_empty());
    assert!(out.timings.is_empty());
    assert_eq!(out.stats.instances, 0);
}

#[test]
fn stats_add_up() {
    let problems = batch(8);
    let router = MightyRouter::new(RouterConfig::default());
    let out = RouteEngine::with_jobs(3).route_batch(&router, &problems);
    let s = out.stats;
    assert_eq!(s.instances, 8);
    assert_eq!(s.jobs, 3);
    assert_eq!(
        s.complete + s.incomplete + s.errored + s.panicked + s.timed_out + s.infeasible,
        s.instances
    );
    assert!(s.wirelength > 0);
    assert!(s.busy_ms >= s.max_instance_ms);
    assert_eq!(out.timings.len(), 8);
}

/// A switchbox with a full-stack wall between its two pins: provably
/// infeasible, and expensive for a rip-up router to discover by search.
fn walled() -> Problem {
    use route_geom::Point;
    use route_model::{PinSide, ProblemBuilder};
    let mut b = ProblemBuilder::switchbox(5, 4);
    for y in 0..4 {
        b.obstacle(Point::new(2, y));
    }
    b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    b.build().expect("valid problem")
}

#[test]
fn precheck_skips_provably_infeasible_instances() {
    let problems = vec![routable_switchbox(10, 10, 4, 7), walled()];
    let router = MightyRouter::new(RouterConfig::default());
    let engine =
        RouteEngine::new(EngineConfig { jobs: 1, precheck: true, ..EngineConfig::default() });
    let out = engine.route_batch(&router, &problems);
    assert!(out.results[0].is_ok(), "feasible instance routes normally");
    match &out.results[1] {
        Err(RouteError::Infeasible { reason }) => {
            assert!(!reason.is_empty(), "the certificate summary travels with the error");
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
    assert_eq!(out.stats.infeasible, 1);
    assert_eq!(out.stats.complete, 1);

    // Without the precheck the router runs — and never reports the
    // instance as infeasible, only as failed-after-search.
    let plain = RouteEngine::with_jobs(1).route_batch(&router, &problems);
    assert_eq!(plain.stats.infeasible, 0);
    if let Ok(routing) = &plain.results[1] {
        assert!(!routing.is_complete());
    }
}

#[test]
fn precheck_leaves_feasible_batches_untouched() {
    let problems = batch(4);
    let router = MightyRouter::new(RouterConfig::default());
    let checked =
        RouteEngine::new(EngineConfig { jobs: 2, precheck: true, ..EngineConfig::default() });
    let plain = RouteEngine::with_jobs(2).route_batch(&router, &problems);
    let gated = checked.route_batch(&router, &problems);
    for (a, b) in plain.results.iter().zip(&gated.results) {
        assert_eq!(a.as_ref().unwrap().db.checksum(), b.as_ref().unwrap().db.checksum());
    }
    assert_eq!(gated.stats.infeasible, 0);
}
