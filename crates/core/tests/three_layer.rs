//! Three-layer (HVH) routing through the full stack: model, maze and
//! the rip-up/reroute router.

use mighty::{MightyRouter, RouterConfig};
use route_geom::{Layer, Point};
use route_model::{PinSide, ProblemBuilder, Step, Trace};
use route_verify::verify;

#[test]
fn m3_is_blocked_in_two_layer_problems() {
    let mut b = ProblemBuilder::switchbox(4, 4);
    b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    let p = b.build().unwrap();
    let g = p.base_grid();
    assert_eq!(p.layers(), 2);
    for pt in g.points() {
        assert!(!g.is_free(pt, Layer::M3));
    }
}

#[test]
fn m3_pin_rejected_in_two_layer_problem() {
    let mut b = ProblemBuilder::switchbox(4, 4);
    b.net("a").pin_at(Point::new(1, 1), Layer::M3).pin_side(PinSide::Left, 0);
    assert!(matches!(b.build(), Err(route_model::ProblemError::PinOnDisabledLayer { .. })));
}

#[test]
fn direct_m1_to_m3_trace_rejected() {
    let jump = Trace::from_steps(vec![
        Step::new(Point::new(0, 0), Layer::M1),
        Step::new(Point::new(0, 0), Layer::M3),
    ]);
    assert!(jump.is_err(), "vias join adjacent layers only");
    let stacked = Trace::from_steps(vec![
        Step::new(Point::new(0, 0), Layer::M1),
        Step::new(Point::new(0, 0), Layer::M2),
        Step::new(Point::new(0, 0), Layer::M3),
    ]);
    assert!(stacked.is_ok(), "stacked vias through M2 are fine");
    assert_eq!(
        stacked.unwrap().via_points().collect::<Vec<_>>(),
        vec![(Point::new(0, 0), Layer::M1), (Point::new(0, 0), Layer::M2)]
    );
}

/// A single-row corridor where two nets must cross horizontally: with
/// two layers one horizontal lane exists (M1) and the crossing fails;
/// the third layer provides the second lane.
#[test]
fn third_layer_unlocks_an_unroutable_corridor() {
    let build = |layers: u8| {
        let mut b = ProblemBuilder::switchbox(6, 1);
        b.layers(layers);
        b.net("x").pin_at(Point::new(0, 0), Layer::M1).pin_at(Point::new(5, 0), Layer::M1);
        b.net("y").pin_at(Point::new(1, 0), Layer::M2).pin_at(Point::new(4, 0), Layer::M2);
        b.build().unwrap()
    };
    // Two layers: net x needs all of row 0 on M1 (its pins are at the
    // ends), net y must span columns 1..4 — M2 used for y, but x's M1
    // run passes under y's pins... x's path must cross y's M2 pins'
    // columns on M1 (allowed) while y routes on M2 (allowed): check what
    // actually happens rather than assuming.
    let two = MightyRouter::new(RouterConfig::default()).route(&build(2));
    let three = MightyRouter::new(RouterConfig::default()).route(&build(3));
    // The three-layer run must complete and verify.
    assert!(three.is_complete(), "third layer provides the second lane");
    let p3 = build(3);
    assert!(verify(&p3, three.db()).is_clean());
    // And it must be at least as good as the two-layer run.
    assert!(three.failed().len() <= two.failed().len());
}

#[test]
fn dense_three_layer_switchbox_routes_and_verifies() {
    let mut b = ProblemBuilder::switchbox(12, 12);
    b.layers(3);
    for i in 0..8 {
        b.net(format!("h{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, 11 - i);
    }
    for i in 2..8 {
        b.net(format!("v{i}")).pin_side(PinSide::Bottom, i).pin_side(PinSide::Top, 11 - i);
    }
    let p = b.build().unwrap();
    let out = MightyRouter::new(RouterConfig::default()).route(&p);
    assert!(out.is_complete(), "failed: {:?}", out.failed());
    let report = verify(&p, out.db());
    assert!(report.is_clean(), "{report}");
    // The router actually used the third layer on this congested box.
    let used_m3 =
        p.nets().iter().any(|n| out.db().net_slots(n.id).iter().any(|s| s.layer == Layer::M3));
    assert!(used_m3, "M3 should carry wiring under this pressure");
}

#[test]
fn three_layer_channel_beats_two_layer_tracks() {
    use route_channel::ChannelSpec;
    let spec =
        ChannelSpec::new(vec![1, 2, 3, 4, 0, 0, 0, 0], vec![0, 0, 0, 0, 1, 2, 3, 4]).unwrap();
    let router = MightyRouter::new(RouterConfig::default());
    let min_tracks = |layers: u8| -> Option<usize> {
        (1..=10).find(|&t| {
            let problem = spec.to_problem_with_layers(t, layers);
            let out = router.route(&problem);
            out.is_complete() && verify(&problem, out.db()).is_clean()
        })
    };
    let two = min_tracks(2).expect("2-layer routes");
    let three = min_tracks(3).expect("3-layer routes");
    assert!(three <= two, "3-layer ({three}) must not need more tracks than 2-layer ({two})");
}
