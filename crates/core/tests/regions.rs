//! The rip-up/reroute router on irregular rectilinear regions — the
//! "boundaries can be described by any rectilinear chains" capability.

use mighty::{MightyRouter, RouterConfig};
use route_geom::{Layer, Point, Rect, Region};
use route_model::{ProblemBuilder, RouteDb, Step, Trace};
use route_verify::verify;

/// An L-shaped region: a 12-wide, 4-tall base with a 4-wide, 12-tall
/// vertical arm on the left.
fn l_region() -> Region {
    Region::from_rects([
        Rect::with_size(Point::new(0, 0), 12, 4),
        Rect::with_size(Point::new(0, 0), 4, 12),
    ])
}

#[test]
fn routes_around_the_corner_of_an_l() {
    let mut b = ProblemBuilder::region(l_region());
    // From the top of the arm to the end of the base: the route must
    // turn the corner; the straight line is outside the region.
    b.net("corner").pin_at(Point::new(1, 11), Layer::M2).pin_at(Point::new(11, 1), Layer::M1);
    b.net("arm").pin_at(Point::new(0, 10), Layer::M1).pin_at(Point::new(3, 10), Layer::M1);
    b.net("base").pin_at(Point::new(5, 0), Layer::M2).pin_at(Point::new(5, 3), Layer::M2);
    let problem = b.build().expect("valid region problem");

    let out = MightyRouter::new(RouterConfig::default()).route(&problem);
    assert!(out.is_complete(), "failed: {:?}", out.failed());
    let report = verify(&problem, out.db());
    assert!(report.is_clean(), "{report}");

    // The corner net's wiring stays inside the region.
    let net = problem.net_by_name("corner").expect("declared").id;
    for (_, trace) in out.db().traces(net) {
        for step in trace.steps() {
            assert!(problem.in_region(step.at), "step {step} escaped the region");
        }
    }
}

#[test]
fn region_exterior_is_never_used() {
    let mut b = ProblemBuilder::region(l_region());
    for i in 0..4 {
        b.net(format!("n{i}"))
            .pin_at(Point::new(i, 11), Layer::M2)
            .pin_at(Point::new(11, i), Layer::M1);
    }
    let problem = b.build().expect("valid");
    let out = MightyRouter::new(RouterConfig::default()).route(&problem);
    let report = verify(&problem, out.db());
    assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    // Every occupied slot is inside the region.
    for net in problem.nets() {
        for slot in out.db().net_slots(net.id) {
            assert!(problem.in_region(slot.at), "{slot} outside region");
        }
    }
}

#[test]
fn congested_corner_requires_modification() {
    // A narrow U-shaped region where the single corridor around the
    // bend is contested: pre-route a net through it sub-optimally, then
    // let the incremental router fit a second net.
    let region = Region::from_rects([
        Rect::with_size(Point::new(0, 0), 12, 3),
        Rect::with_size(Point::new(0, 0), 3, 12),
        Rect::with_size(Point::new(9, 0), 3, 12),
    ]);
    let mut b = ProblemBuilder::region(region);
    b.net("u1").pin_at(Point::new(0, 11), Layer::M1).pin_at(Point::new(11, 11), Layer::M1);
    b.net("u2").pin_at(Point::new(1, 11), Layer::M2).pin_at(Point::new(10, 11), Layer::M2);
    let problem = b.build().expect("valid");

    // Pre-route u1 hogging both layers of the corridor's middle row.
    let u1 = problem.net_by_name("u1").expect("declared").id;
    let mut db = RouteDb::new(&problem);
    let hog: Vec<Step> = (3..9).map(|x| Step::new(Point::new(x, 1), Layer::M1)).collect();
    db.commit(u1, Trace::from_steps(hog).expect("contiguous")).expect("free row");
    let hog2: Vec<Step> = (3..9).map(|x| Step::new(Point::new(x, 1), Layer::M2)).collect();
    db.commit(u1, Trace::from_steps(hog2).expect("contiguous")).expect("free row");

    let out = MightyRouter::new(RouterConfig::default())
        .try_route_incremental(&problem, db)
        .expect("database built for this problem");
    assert!(out.is_complete(), "failed: {:?} ({})", out.failed(), out.stats());
    let report = verify(&problem, out.db());
    assert!(report.is_clean(), "{report}");
}
