use std::error::Error;
use std::fmt;

use route_maze::{CostModel, FrontierKind};

/// Order in which nets are first attempted.
///
/// Rip-up/reroute makes the router far less order-sensitive than the
/// sequential baseline, but the initial order still affects how much
/// modification work is needed; the ablation benches sweep this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrder {
    /// Smallest pin bounding box first (default; classic heuristic).
    #[default]
    ShortFirst,
    /// Largest pin bounding box first.
    LongFirst,
    /// Most pins first.
    PinCountDesc,
    /// Most-contested first: nets whose pin bounding boxes overlap the
    /// most other nets' boxes are routed before the easy ones.
    CongestionFirst,
    /// The order nets were declared in the problem.
    Declared,
}

/// How the interference penalty of a net grows with its rip count.
///
/// The growth schedule is the heart of the finite-termination argument:
/// as long as penalties are unbounded and monotone, every net eventually
/// becomes more expensive to rip than to detour around. Geometric growth
/// (the default) reaches that point exponentially faster than linear
/// growth; the ablation benches compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenaltyGrowth {
    /// `base << min(rips, cap)` — doubles per rip (default).
    #[default]
    Geometric,
    /// `base * (1 + min(rips, 2^cap))` — grows by `base` per rip.
    Linear,
}

/// Tuning parameters of the [`MightyRouter`](crate::MightyRouter).
///
/// Prefer [`RouterConfig::builder`] over filling fields directly: the
/// builder rejects configurations that would silently misbehave (a zero
/// attempt budget, a zero base penalty, an inverted penalty schedule),
/// while struct-literal construction accepts anything. Direct field
/// mutation remains available for ablation sweeps but is considered a
/// legacy interface and may lose fields to the builder in a future
/// revision.
///
/// # Examples
///
/// ```
/// use mighty::{RouterConfig, NetOrder};
///
/// // An ablation configuration: strong modification only.
/// let cfg = RouterConfig::builder()
///     .weak(false)
///     .order(NetOrder::LongFirst)
///     .build()?;
/// assert!(cfg.strong);
/// # Ok::<(), mighty::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Path-search cost weights.
    pub cost: CostModel,
    /// Enable weak modification (push blocking wiring aside in place).
    pub weak: bool,
    /// Enable strong modification (rip blocking wiring, re-enqueue it).
    pub strong: bool,
    /// Crossing penalty for a never-ripped net's slot.
    pub base_penalty: u64,
    /// Escalation schedule of the crossing penalty with rip count.
    pub penalty_growth: PenaltyGrowth,
    /// Cap on the escalation exponent (geometric) or on `log2` of the
    /// multiplier (linear). Growth is what guarantees termination.
    pub max_penalty_doublings: u32,
    /// Attempts allowed per net before it is declared failed.
    pub max_attempts: u32,
    /// Global cap on queue events; `0` selects `64 x nets` automatically.
    pub max_events: usize,
    /// Initial net order.
    pub order: NetOrder,
    /// Open-list implementation for every path search. The two kinds
    /// produce bit-identical routings; this is purely a speed knob.
    pub frontier: FrontierKind,
}

impl RouterConfig {
    /// Crossing penalty per slot of a net that has been ripped `rips`
    /// times, under the configured [`PenaltyGrowth`] schedule.
    pub fn penalty(&self, rips: u32) -> u64 {
        match self.penalty_growth {
            PenaltyGrowth::Geometric => self.base_penalty << rips.min(self.max_penalty_doublings),
            PenaltyGrowth::Linear => {
                let cap = 1u64 << self.max_penalty_doublings.min(32);
                self.base_penalty * (1 + u64::from(rips).min(cap))
            }
        }
    }

    /// A configuration with all modification disabled: behaves like the
    /// sequential baseline (used as the control in ablations).
    pub fn no_modification() -> Self {
        RouterConfig { weak: false, strong: false, ..RouterConfig::default() }
    }

    /// Starts a validating [`RouterConfigBuilder`] seeded with the
    /// defaults. See the type-level docs for why this is preferred over
    /// struct-literal construction.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder::default()
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            cost: CostModel::default(),
            weak: true,
            strong: true,
            base_penalty: 8,
            penalty_growth: PenaltyGrowth::Geometric,
            max_penalty_doublings: 12,
            max_attempts: 12,
            max_events: 0,
            order: NetOrder::ShortFirst,
            frontier: FrontierKind::default(),
        }
    }
}

/// A configuration that failed validation in a builder — shared by
/// [`RouterConfigBuilder::build`],
/// [`EngineConfigBuilder::build`](crate::engine::EngineConfigBuilder::build)
/// and
/// [`ServiceConfigBuilder::build`](crate::serve::ServiceConfigBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_attempts` was zero: every net would fail before its first
    /// search.
    ZeroAttemptBudget,
    /// `base_penalty` was zero: interference would be free, rip counts
    /// would never raise crossing costs, and termination would rest on
    /// the event budget alone.
    ZeroBasePenalty,
    /// `max_penalty_doublings` exceeded 63: the geometric schedule's
    /// shift would overflow `u64`.
    DoublingsOverflow {
        /// The requested exponent cap.
        doublings: u32,
    },
    /// A penalty schedule whose ceiling is below its initial value —
    /// penalties must be monotone in the rip count.
    InvertedPenaltySchedule {
        /// Penalty of a never-ripped net.
        initial: u64,
        /// The requested ceiling, which was smaller.
        ceiling: u64,
    },
    /// A zero wall-clock deadline: every instance would be disqualified
    /// before routing. Use `None` to disable the check instead.
    ZeroDeadline,
    /// A worker/job count beyond the thread-spawn cap.
    JobsOverCap {
        /// The requested count.
        jobs: usize,
        /// The cap it exceeded.
        cap: usize,
    },
    /// A zero admission-queue capacity: the service could never accept
    /// a request.
    ZeroQueueCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroAttemptBudget => {
                write!(f, "max_attempts must be at least 1")
            }
            ConfigError::ZeroBasePenalty => {
                write!(f, "base_penalty must be at least 1")
            }
            ConfigError::DoublingsOverflow { doublings } => {
                write!(f, "max_penalty_doublings {doublings} would overflow u64 (cap is 63)")
            }
            ConfigError::InvertedPenaltySchedule { initial, ceiling } => {
                write!(
                    f,
                    "inverted penalty schedule: ceiling {ceiling} is below initial penalty {initial}"
                )
            }
            ConfigError::ZeroDeadline => {
                write!(f, "deadline must be positive (use None to disable the check)")
            }
            ConfigError::JobsOverCap { jobs, cap } => {
                write!(f, "jobs {jobs} exceeds the thread cap {cap}")
            }
            ConfigError::ZeroQueueCapacity => {
                write!(f, "queue capacity must be at least 1")
            }
        }
    }
}

impl Error for ConfigError {}

/// Validating builder for [`RouterConfig`] — the supported construction
/// path. Obtained from [`RouterConfig::builder`].
///
/// # Examples
///
/// ```
/// use mighty::{ConfigError, RouterConfig};
///
/// let cfg = RouterConfig::builder().base_penalty(4).max_attempts(20).build()?;
/// assert_eq!(cfg.base_penalty, 4);
///
/// // Invalid combinations are rejected instead of misbehaving at
/// // routing time:
/// assert_eq!(
///     RouterConfig::builder().max_attempts(0).build(),
///     Err(ConfigError::ZeroAttemptBudget),
/// );
/// # Ok::<(), ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouterConfigBuilder {
    cfg: RouterConfig,
    penalty_ceiling: Option<u64>,
}

impl RouterConfigBuilder {
    /// Sets the path-search cost weights.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Enables or disables weak modification.
    pub fn weak(mut self, weak: bool) -> Self {
        self.cfg.weak = weak;
        self
    }

    /// Enables or disables strong modification.
    pub fn strong(mut self, strong: bool) -> Self {
        self.cfg.strong = strong;
        self
    }

    /// Sets the crossing penalty for a never-ripped net's slot.
    pub fn base_penalty(mut self, penalty: u64) -> Self {
        self.cfg.base_penalty = penalty;
        self
    }

    /// Sets the escalation schedule of the crossing penalty.
    pub fn penalty_growth(mut self, growth: PenaltyGrowth) -> Self {
        self.cfg.penalty_growth = growth;
        self
    }

    /// Sets the cap on the escalation exponent directly.
    pub fn max_penalty_doublings(mut self, doublings: u32) -> Self {
        self.cfg.max_penalty_doublings = doublings;
        self.penalty_ceiling = None;
        self
    }

    /// Describes the penalty schedule by its endpoints: `initial` is the
    /// crossing penalty of a never-ripped net, `ceiling` the value the
    /// schedule is allowed to saturate at. The exponent cap is derived
    /// from the ratio. A `ceiling` below `initial` is an inverted
    /// schedule and rejected by [`build`](RouterConfigBuilder::build).
    pub fn penalty_bounds(mut self, initial: u64, ceiling: u64) -> Self {
        self.cfg.base_penalty = initial;
        self.penalty_ceiling = Some(ceiling);
        self
    }

    /// Sets the attempts allowed per net before it is declared failed.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.cfg.max_attempts = attempts;
        self
    }

    /// Sets the global queue-event cap (`0` = `64 x nets`).
    pub fn max_events(mut self, events: usize) -> Self {
        self.cfg.max_events = events;
        self
    }

    /// Sets the initial net order.
    pub fn order(mut self, order: NetOrder) -> Self {
        self.cfg.order = order;
        self
    }

    /// Selects the open-list ([`FrontierKind`]) implementation used by
    /// every path search. Both kinds route bit-identically.
    pub fn frontier(mut self, frontier: FrontierKind) -> Self {
        self.cfg.frontier = frontier;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for a zero attempt budget, a zero base
    /// penalty, an exponent cap that would overflow `u64`, or an
    /// inverted [`penalty_bounds`](RouterConfigBuilder::penalty_bounds)
    /// schedule.
    pub fn build(self) -> Result<RouterConfig, ConfigError> {
        let mut cfg = self.cfg;
        if cfg.max_attempts == 0 {
            return Err(ConfigError::ZeroAttemptBudget);
        }
        if cfg.base_penalty == 0 {
            return Err(ConfigError::ZeroBasePenalty);
        }
        if let Some(ceiling) = self.penalty_ceiling {
            if ceiling < cfg.base_penalty {
                return Err(ConfigError::InvertedPenaltySchedule {
                    initial: cfg.base_penalty,
                    ceiling,
                });
            }
            // Smallest exponent cap whose saturated geometric penalty
            // stays within the ceiling (at least one doubling short of
            // overflow).
            let ratio = ceiling / cfg.base_penalty;
            cfg.max_penalty_doublings = 63 - ratio.leading_zeros();
        }
        if cfg.max_penalty_doublings > 63 {
            return Err(ConfigError::DoublingsOverflow { doublings: cfg.max_penalty_doublings });
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_escalates_and_saturates() {
        let cfg = RouterConfig { base_penalty: 4, max_penalty_doublings: 3, ..Default::default() };
        assert_eq!(cfg.penalty(0), 4);
        assert_eq!(cfg.penalty(1), 8);
        assert_eq!(cfg.penalty(3), 32);
        assert_eq!(cfg.penalty(100), 32);
    }

    #[test]
    fn linear_penalty_grows_by_base() {
        let cfg = RouterConfig {
            base_penalty: 4,
            penalty_growth: PenaltyGrowth::Linear,
            max_penalty_doublings: 3,
            ..Default::default()
        };
        assert_eq!(cfg.penalty(0), 4);
        assert_eq!(cfg.penalty(1), 8);
        assert_eq!(cfg.penalty(3), 16);
        // Saturates at base * (1 + 2^cap).
        assert_eq!(cfg.penalty(1000), 4 * 9);
    }

    #[test]
    fn geometric_eventually_dwarfs_linear() {
        let geo = RouterConfig::default();
        let lin = RouterConfig { penalty_growth: PenaltyGrowth::Linear, ..Default::default() };
        assert!(geo.penalty(10) > lin.penalty(10));
    }

    #[test]
    fn no_modification_control() {
        let cfg = RouterConfig::no_modification();
        assert!(!cfg.weak && !cfg.strong);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(RouterConfig::builder().build().unwrap(), RouterConfig::default());
    }

    #[test]
    fn builder_rejects_zero_budgets() {
        assert_eq!(
            RouterConfig::builder().max_attempts(0).build(),
            Err(ConfigError::ZeroAttemptBudget)
        );
        assert_eq!(
            RouterConfig::builder().base_penalty(0).build(),
            Err(ConfigError::ZeroBasePenalty)
        );
    }

    #[test]
    fn builder_rejects_shift_overflow() {
        assert_eq!(
            RouterConfig::builder().max_penalty_doublings(64).build(),
            Err(ConfigError::DoublingsOverflow { doublings: 64 })
        );
        assert!(RouterConfig::builder().max_penalty_doublings(63).build().is_ok());
    }

    #[test]
    fn builder_rejects_inverted_penalty_schedule() {
        assert_eq!(
            RouterConfig::builder().penalty_bounds(16, 4).build(),
            Err(ConfigError::InvertedPenaltySchedule { initial: 16, ceiling: 4 })
        );
    }

    #[test]
    fn penalty_bounds_derives_exponent_cap() {
        let cfg = RouterConfig::builder().penalty_bounds(4, 1024).build().unwrap();
        assert_eq!(cfg.base_penalty, 4);
        // 1024 / 4 = 256 = 2^8 doublings.
        assert_eq!(cfg.max_penalty_doublings, 8);
        assert_eq!(cfg.penalty(100), 1024);

        // Equal endpoints: a flat (but legal) schedule.
        let flat = RouterConfig::builder().penalty_bounds(8, 8).build().unwrap();
        assert_eq!(flat.max_penalty_doublings, 0);
        assert_eq!(flat.penalty(50), 8);
    }

    #[test]
    fn config_errors_render() {
        for e in [
            ConfigError::ZeroAttemptBudget,
            ConfigError::ZeroBasePenalty,
            ConfigError::DoublingsOverflow { doublings: 64 },
            ConfigError::InvertedPenaltySchedule { initial: 9, ceiling: 3 },
            ConfigError::ZeroDeadline,
            ConfigError::JobsOverCap { jobs: 9999, cap: 1024 },
            ConfigError::ZeroQueueCapacity,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
