use route_maze::CostModel;

/// Order in which nets are first attempted.
///
/// Rip-up/reroute makes the router far less order-sensitive than the
/// sequential baseline, but the initial order still affects how much
/// modification work is needed; the ablation benches sweep this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrder {
    /// Smallest pin bounding box first (default; classic heuristic).
    #[default]
    ShortFirst,
    /// Largest pin bounding box first.
    LongFirst,
    /// Most pins first.
    PinCountDesc,
    /// Most-contested first: nets whose pin bounding boxes overlap the
    /// most other nets' boxes are routed before the easy ones.
    CongestionFirst,
    /// The order nets were declared in the problem.
    Declared,
}

/// How the interference penalty of a net grows with its rip count.
///
/// The growth schedule is the heart of the finite-termination argument:
/// as long as penalties are unbounded and monotone, every net eventually
/// becomes more expensive to rip than to detour around. Geometric growth
/// (the default) reaches that point exponentially faster than linear
/// growth; the ablation benches compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenaltyGrowth {
    /// `base << min(rips, cap)` — doubles per rip (default).
    #[default]
    Geometric,
    /// `base * (1 + min(rips, 2^cap))` — grows by `base` per rip.
    Linear,
}

/// Tuning parameters of the [`MightyRouter`](crate::MightyRouter).
///
/// # Examples
///
/// ```
/// use mighty::{RouterConfig, NetOrder};
///
/// // An ablation configuration: strong modification only.
/// let cfg = RouterConfig {
///     weak: false,
///     order: NetOrder::LongFirst,
///     ..RouterConfig::default()
/// };
/// assert!(cfg.strong);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Path-search cost weights.
    pub cost: CostModel,
    /// Enable weak modification (push blocking wiring aside in place).
    pub weak: bool,
    /// Enable strong modification (rip blocking wiring, re-enqueue it).
    pub strong: bool,
    /// Crossing penalty for a never-ripped net's slot.
    pub base_penalty: u64,
    /// Escalation schedule of the crossing penalty with rip count.
    pub penalty_growth: PenaltyGrowth,
    /// Cap on the escalation exponent (geometric) or on `log2` of the
    /// multiplier (linear). Growth is what guarantees termination.
    pub max_penalty_doublings: u32,
    /// Attempts allowed per net before it is declared failed.
    pub max_attempts: u32,
    /// Global cap on queue events; `0` selects `64 x nets` automatically.
    pub max_events: usize,
    /// Initial net order.
    pub order: NetOrder,
}

impl RouterConfig {
    /// Crossing penalty per slot of a net that has been ripped `rips`
    /// times, under the configured [`PenaltyGrowth`] schedule.
    pub fn penalty(&self, rips: u32) -> u64 {
        match self.penalty_growth {
            PenaltyGrowth::Geometric => self.base_penalty << rips.min(self.max_penalty_doublings),
            PenaltyGrowth::Linear => {
                let cap = 1u64 << self.max_penalty_doublings.min(32);
                self.base_penalty * (1 + u64::from(rips).min(cap))
            }
        }
    }

    /// A configuration with all modification disabled: behaves like the
    /// sequential baseline (used as the control in ablations).
    pub fn no_modification() -> Self {
        RouterConfig { weak: false, strong: false, ..RouterConfig::default() }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            cost: CostModel::default(),
            weak: true,
            strong: true,
            base_penalty: 8,
            penalty_growth: PenaltyGrowth::Geometric,
            max_penalty_doublings: 12,
            max_attempts: 12,
            max_events: 0,
            order: NetOrder::ShortFirst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_escalates_and_saturates() {
        let cfg = RouterConfig { base_penalty: 4, max_penalty_doublings: 3, ..Default::default() };
        assert_eq!(cfg.penalty(0), 4);
        assert_eq!(cfg.penalty(1), 8);
        assert_eq!(cfg.penalty(3), 32);
        assert_eq!(cfg.penalty(100), 32);
    }

    #[test]
    fn linear_penalty_grows_by_base() {
        let cfg = RouterConfig {
            base_penalty: 4,
            penalty_growth: PenaltyGrowth::Linear,
            max_penalty_doublings: 3,
            ..Default::default()
        };
        assert_eq!(cfg.penalty(0), 4);
        assert_eq!(cfg.penalty(1), 8);
        assert_eq!(cfg.penalty(3), 16);
        // Saturates at base * (1 + 2^cap).
        assert_eq!(cfg.penalty(1000), 4 * 9);
    }

    #[test]
    fn geometric_eventually_dwarfs_linear() {
        let geo = RouterConfig::default();
        let lin = RouterConfig { penalty_growth: PenaltyGrowth::Linear, ..Default::default() };
        assert!(geo.penalty(10) > lin.penalty(10));
    }

    #[test]
    fn no_modification_control() {
        let cfg = RouterConfig::no_modification();
        assert!(!cfg.weak && !cfg.strong);
    }
}
