//! Connectivity analysis over a net's committed occupancy.

use std::collections::{HashMap, HashSet, VecDeque};

use route_geom::{Layer, Point};
use route_model::{NetId, RouteDb, Step};

/// The connected components of `net`'s occupancy that contain at least
/// one pin, as slot lists. A fully routed net has exactly one.
///
/// Two slots are connected when they are Manhattan-adjacent on one layer,
/// or stacked at a point where the net owns a via.
pub(crate) fn pin_components(db: &RouteDb, net: NetId) -> Vec<Vec<Step>> {
    let slots: HashSet<(Point, Layer)> =
        db.net_slots(net).into_iter().map(|s| (s.at, s.layer)).collect();
    let has_via = |p: Point, lower: Layer| {
        db.grid().in_bounds(p) && db.grid().via_between(p, lower) == Some(net)
    };

    let mut component_of: HashMap<(Point, Layer), usize> = HashMap::new();
    let mut components: Vec<Vec<Step>> = Vec::new();
    for pin in db.pins(net) {
        let start = (pin.at, pin.layer);
        if component_of.contains_key(&start) {
            continue;
        }
        let idx = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        component_of.insert(start, idx);
        while let Some((p, layer)) = queue.pop_front() {
            members.push(Step::new(p, layer));
            for n in p.neighbors() {
                let key = (n, layer);
                if slots.contains(&key) && !component_of.contains_key(&key) {
                    component_of.insert(key, idx);
                    queue.push_back(key);
                }
            }
            for adj in layer.adjacent() {
                let lower = layer.via_pair_with(adj).expect("adjacent layers pair");
                if has_via(p, lower) {
                    let key = (p, adj);
                    if slots.contains(&key) && !component_of.contains_key(&key) {
                        component_of.insert(key, idx);
                        queue.push_back(key);
                    }
                }
            }
        }
        components.push(members);
    }
    components
}

/// Whether every pin of `net` belongs to one connected component.
pub(crate) fn is_connected(db: &RouteDb, net: NetId) -> bool {
    db.is_net_connected(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, Trace};

    #[test]
    fn components_merge_as_wiring_lands() {
        let mut b = ProblemBuilder::switchbox(5, 3);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        assert_eq!(pin_components(&db, net).len(), 2);
        assert!(!is_connected(&db, net));
        let t = Trace::from_steps((0..5).map(|x| Step::new(Point::new(x, 1), Layer::M1)).collect())
            .unwrap();
        db.commit(net, t).unwrap();
        assert_eq!(pin_components(&db, net).len(), 1);
        assert!(is_connected(&db, net));
    }

    #[test]
    fn via_required_to_bridge_layers() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("a").pin_at(Point::new(0, 0), Layer::M1).pin_at(Point::new(0, 0), Layer::M2);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        // Stacked pins, no via: two components.
        assert_eq!(pin_components(&db, net).len(), 2);
        let via = Trace::from_steps(vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(0, 0), Layer::M2),
        ])
        .unwrap();
        db.commit(net, via).unwrap();
        assert_eq!(pin_components(&db, net).len(), 1);
    }
}
