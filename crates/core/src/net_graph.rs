//! Connectivity analysis over a net's committed occupancy.

use std::collections::VecDeque;

use route_geom::{Layer, Point, NUM_LAYERS};
use route_model::{NetId, Occupant, RouteDb, Step};

/// The connected components of `net`'s occupancy that contain at least
/// one pin, as slot lists. A fully routed net has exactly one.
///
/// Two slots are connected when they are Manhattan-adjacent on one layer,
/// or stacked at a point where the net owns a via.
///
/// Slot membership is read straight off the grid (a slot belongs to
/// `net` iff the grid occupant is `Net(net)` — the database keeps the
/// two representations coherent) and visited marks live in a dense
/// bitmap, so the walk performs no hashing.
pub(crate) fn pin_components(db: &RouteDb, net: NetId) -> Vec<Vec<Step>> {
    let grid = db.grid();
    let w = grid.width() as usize;
    let node =
        |p: Point, layer: Layer| (p.y as usize * w + p.x as usize) * NUM_LAYERS + layer.index();
    let mut seen = vec![0u64; (w * grid.height() as usize * NUM_LAYERS).div_ceil(64)];
    let owns =
        |p: Point, layer: Layer| grid.in_bounds(p) && grid.occupant(p, layer) == Occupant::Net(net);

    let mut components: Vec<Vec<Step>> = Vec::new();
    for pin in db.pins(net) {
        let start = node(pin.at, pin.layer);
        if seen[start >> 6] >> (start & 63) & 1 == 1 {
            continue;
        }
        seen[start >> 6] |= 1 << (start & 63);
        let mut members = Vec::new();
        let mut queue = VecDeque::from([(pin.at, pin.layer)]);
        while let Some((p, layer)) = queue.pop_front() {
            members.push(Step::new(p, layer));
            for n in p.neighbors() {
                if owns(n, layer) {
                    let key = node(n, layer);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((n, layer));
                    }
                }
            }
            for adj in layer.adjacent() {
                let lower = layer.via_pair_with(adj).expect("adjacent layers pair");
                if grid.via_between(p, lower) == Some(net) && owns(p, adj) {
                    let key = node(p, adj);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((p, adj));
                    }
                }
            }
        }
        components.push(members);
    }
    components
}

/// Whether every pin of `net` belongs to one connected component.
pub(crate) fn is_connected(db: &RouteDb, net: NetId) -> bool {
    db.is_net_connected(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, Trace};

    #[test]
    fn components_merge_as_wiring_lands() {
        let mut b = ProblemBuilder::switchbox(5, 3);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        assert_eq!(pin_components(&db, net).len(), 2);
        assert!(!is_connected(&db, net));
        let t = Trace::from_steps((0..5).map(|x| Step::new(Point::new(x, 1), Layer::M1)).collect())
            .unwrap();
        db.commit(net, t).unwrap();
        assert_eq!(pin_components(&db, net).len(), 1);
        assert!(is_connected(&db, net));
    }

    #[test]
    fn via_required_to_bridge_layers() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("a").pin_at(Point::new(0, 0), Layer::M1).pin_at(Point::new(0, 0), Layer::M2);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        // Stacked pins, no via: two components.
        assert_eq!(pin_components(&db, net).len(), 2);
        let via = Trace::from_steps(vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(0, 0), Layer::M2),
        ])
        .unwrap();
        db.commit(net, via).unwrap();
        assert_eq!(pin_components(&db, net).len(), 1);
    }
}
