//! Crash-safe run journal: an append-only LDJSON write-ahead log of
//! per-instance batch outcomes.
//!
//! A supervised batch run with a journal writes two kinds of records to
//! `DIR/journal.ldj`, one JSON object per line:
//!
//! * `begin` — appended *before* an instance is routed, marking it
//!   in-flight.
//! * `done` — appended (and fsync'd) *after* the instance's supervised
//!   outcome is known, carrying its status, recovery path, attempt
//!   count, [`RouteDb::checksum`](route_model::RouteDb::checksum),
//!   wirelength/via totals and any terminal error.
//!
//! Every line carries a trailing FNV-1a `crc` over its own bytes, so a
//! line torn by process death is detected and ignored on resume. A
//! resumed run ([`RunJournal::resume`]) replays the last valid `done`
//! record per instance — matched on index, label *and* a fingerprint of
//! the instance text, so edited inputs are re-routed — skips those
//! instances, and re-runs everything that was merely in flight. Replayed
//! records feed the final report verbatim, which is what makes a
//! killed-and-resumed batch report byte-identical to an uninterrupted
//! one (the report excludes wall-clock fields for exactly this reason).
//!
//! The routing service reuses the same machinery through
//! [`ServeJournal`]: one fsync'd `req` record per accepted request, one
//! `done` record per delivered response. A `req` without a matching
//! `done` was in flight when the daemon died, and
//! [`ServeJournal::resume`] returns it for replay.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::recover::{InstanceStatus, RecoveryPath, SupervisedOutcome};

/// One `done` record: everything the final report needs to describe an
/// instance without its live [`RouteDb`](route_model::RouteDb).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Batch index of the instance.
    pub index: usize,
    /// Instance label (the CLI uses the file path).
    pub label: String,
    /// Fingerprint of the instance text ([`RunJournal::fingerprint`]).
    pub fingerprint: u64,
    /// Terminal classification.
    pub status: InstanceStatus,
    /// How the result was obtained.
    pub path: RecoveryPath,
    /// Attempts spent across the recovery chain.
    pub attempts: u32,
    /// Database checksum, for completed and salvaged instances.
    pub checksum: Option<u64>,
    /// Total wirelength of the committed routing.
    pub wire: u64,
    /// Total vias of the committed routing.
    pub vias: u64,
    /// Unconnected nets (salvaged instances; zero when complete).
    pub failed_nets: usize,
    /// Salvage lint finding count (`None` unless salvaged).
    pub lint_findings: Option<u64>,
    /// Terminal error or salvage reason, if any.
    pub error: Option<String>,
}

impl JournalEntry {
    /// Builds the journal record for a live supervised outcome.
    pub fn from_outcome(
        index: usize,
        label: &str,
        fingerprint: u64,
        outcome: &SupervisedOutcome,
    ) -> JournalEntry {
        let mut entry = JournalEntry {
            index,
            label: label.to_string(),
            fingerprint,
            status: outcome.status(),
            path: outcome.path.clone(),
            attempts: outcome.attempts,
            checksum: None,
            wire: 0,
            vias: 0,
            failed_nets: 0,
            lint_findings: None,
            error: None,
        };
        match &outcome.result {
            Some(Ok(routing)) => {
                let stats = routing.db.stats();
                entry.checksum = Some(routing.db.checksum());
                entry.wire = stats.wirelength;
                entry.vias = stats.vias;
                entry.failed_nets = routing.failed.len();
            }
            Some(Err(e)) => entry.error = Some(e.to_string()),
            None => {}
        }
        if let Some(salvage) = &outcome.salvage {
            entry.lint_findings = Some(salvage.lint.findings().len() as u64);
            entry.error = Some(salvage.terminal.clone());
        }
        entry
    }
}

/// State of the append side of the journal. A write error latches: the
/// file is dropped, the message kept for the caller to surface after
/// the batch (workers cannot abort mid-flight without losing results).
struct Writer {
    file: Option<File>,
    error: Option<String>,
}

/// The run journal. See the [module docs](self) for the format and the
/// resume contract.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    writer: Mutex<Writer>,
    instances: Vec<(String, u64)>,
    replayed: Vec<Option<JournalEntry>>,
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Writer")
            .field("open", &self.file.is_some())
            .field("error", &self.error)
            .finish()
    }
}

impl RunJournal {
    /// File name of the log inside the journal directory.
    pub const FILE_NAME: &'static str = "journal.ldj";

    /// FNV-1a fingerprint of an instance's text, used to detect edited
    /// inputs on resume.
    pub fn fingerprint(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Starts a fresh journal for the given `(label, fingerprint)`
    /// instances, truncating any previous log in `dir`.
    pub fn create(dir: &Path, instances: &[(String, u64)]) -> io::Result<RunJournal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(RunJournal::FILE_NAME);
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(RunJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            instances: instances.to_vec(),
            replayed: vec![None; instances.len()],
        })
    }

    /// Opens a journal for resume: scans any existing log for valid
    /// `done` records matching the given instances, then appends. A
    /// missing log behaves like [`create`](RunJournal::create).
    pub fn resume(dir: &Path, instances: &[(String, u64)]) -> io::Result<RunJournal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(RunJournal::FILE_NAME);
        let mut replayed: Vec<Option<JournalEntry>> = vec![None; instances.len()];
        match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                for line in text.lines() {
                    let Some(entry) = parse_done_line(line) else { continue };
                    let matches = instances.get(entry.index).is_some_and(|(label, fp)| {
                        *label == entry.label && *fp == entry.fingerprint
                    });
                    if matches {
                        // Last valid record wins: a re-run supersedes.
                        let slot = entry.index;
                        replayed[slot] = Some(entry);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        Ok(RunJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            instances: instances.to_vec(),
            replayed,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The replayed `done` record for an instance, if resume found one.
    pub fn replay(&self, index: usize) -> Option<&JournalEntry> {
        self.replayed.get(index).and_then(Option::as_ref)
    }

    /// Instances resume will skip.
    pub fn resumed_count(&self) -> usize {
        self.replayed.iter().filter(|r| r.is_some()).count()
    }

    /// The label/fingerprint pair registered for an instance.
    pub fn key(&self, index: usize) -> Option<&(String, u64)> {
        self.instances.get(index)
    }

    /// Appends the in-flight marker for an instance. Errors latch (see
    /// [`take_error`](RunJournal::take_error)).
    pub fn begin(&self, index: usize) {
        let (label, fp) = match self.instances.get(index) {
            Some(pair) => pair,
            None => return,
        };
        let mut body = String::from("{\"ev\":\"begin\"");
        let _ = write!(body, ",\"idx\":{index},\"label\":\"{}\"", escape(label));
        let _ = write!(body, ",\"fp\":\"{fp:016x}\"");
        self.append(body, false);
    }

    /// Appends and fsyncs the terminal record for an instance. Errors
    /// latch (see [`take_error`](RunJournal::take_error)).
    pub fn finish(&self, entry: &JournalEntry) {
        let mut body = String::from("{\"ev\":\"done\"");
        let _ = write!(body, ",\"idx\":{},\"label\":\"{}\"", entry.index, escape(&entry.label));
        let _ = write!(body, ",\"fp\":\"{:016x}\"", entry.fingerprint);
        let _ = write!(body, ",\"status\":\"{}\"", entry.status.as_str());
        let _ = write!(body, ",\"path\":\"{}\"", escape(&entry.path.encode()));
        let _ = write!(body, ",\"attempts\":{}", entry.attempts);
        if let Some(checksum) = entry.checksum {
            let _ = write!(body, ",\"checksum\":\"{checksum:016x}\"");
        }
        let _ = write!(body, ",\"wire\":{},\"vias\":{}", entry.wire, entry.vias);
        let _ = write!(body, ",\"failed\":{}", entry.failed_nets);
        if let Some(lint) = entry.lint_findings {
            let _ = write!(body, ",\"lint\":{lint}");
        }
        if let Some(error) = &entry.error {
            let _ = write!(body, ",\"error\":\"{}\"", escape(error));
        }
        self.append(body, true);
    }

    /// The first write error, if any — callers check once per batch.
    pub fn take_error(&self) -> Option<String> {
        match self.writer.lock() {
            Ok(mut writer) => writer.error.take(),
            Err(_) => Some("journal writer mutex poisoned".to_string()),
        }
    }

    /// Seals `body` with its `crc` field and appends it as one line,
    /// optionally fsyncing. The crc covers every byte before `,"crc"`,
    /// which is how resume detects torn lines.
    fn append(&self, body: String, sync: bool) {
        append_sealed(&self.writer, body, sync);
    }
}

/// Seals `body` with its trailing `crc` field and appends it as one
/// line through `writer`, optionally fsyncing. Write errors latch into
/// the writer (see [`Writer`]).
fn append_sealed(writer: &Mutex<Writer>, body: String, sync: bool) {
    let mut line = body;
    let crc = RunJournal::fingerprint(&line);
    let _ = write!(line, ",\"crc\":\"{crc:016x}\"}}");
    line.push('\n');
    let Ok(mut writer) = writer.lock() else { return };
    if writer.error.is_some() {
        return;
    }
    let result =
        match writer.file.as_mut() {
            Some(file) => file.write_all(line.as_bytes()).and_then(|()| {
                if sync {
                    file.sync_data()
                } else {
                    Ok(())
                }
            }),
            None => return,
        };
    if let Err(e) = result {
        writer.error = Some(format!("journal write failed: {e}"));
        writer.file = None;
    }
}

/// Checks a journal line's trailing crc seal. Returns `true` iff the
/// line ends in a valid `,"crc":"..."}` covering everything before it.
fn crc_valid(line: &str) -> bool {
    let Some(crc_at) = line.rfind(",\"crc\":\"") else { return false };
    let Some(crc) = raw_field(line, "crc").and_then(|h| u64::from_str_radix(h, 16).ok()) else {
        return false;
    };
    RunJournal::fingerprint(&line[..crc_at]) == crc
}

/// A request the daemon accepted but never answered — found by
/// [`ServeJournal::resume`] after a crash, for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The journal's request id (also the replay order).
    pub rid: u64,
    /// The original request line, byte-for-byte as accepted.
    pub body: String,
}

/// Crash-safe request journal for the routing service (`vroute serve`).
///
/// Two record kinds, both crc-sealed and fsync'd like the batch
/// journal's:
///
/// * `req` — appended *before* a request is admitted, carrying the raw
///   request line.
/// * `done` — appended after the response for that request was written
///   to the client.
///
/// [`ServeJournal::resume`] returns every `req` without a matching
/// `done`, in acceptance order, so a restarted daemon can re-route
/// exactly the requests that were in flight when it died.
#[derive(Debug)]
pub struct ServeJournal {
    path: PathBuf,
    writer: Mutex<Writer>,
    next_rid: AtomicU64,
}

impl ServeJournal {
    /// File name of the log inside the journal directory.
    pub const FILE_NAME: &'static str = "serve.ldj";

    /// Starts a fresh service journal, truncating any previous log in
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn create(dir: &Path) -> io::Result<ServeJournal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(ServeJournal::FILE_NAME);
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(ServeJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            next_rid: AtomicU64::new(1),
        })
    }

    /// Opens a journal for resume: scans any existing log and returns
    /// the requests that were accepted but never answered, in
    /// acceptance order. A missing log behaves like
    /// [`create`](ServeJournal::create) with no pending requests.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, read and file-open failures.
    pub fn resume(dir: &Path) -> io::Result<(ServeJournal, Vec<PendingRequest>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(ServeJournal::FILE_NAME);
        let mut pending: BTreeMap<u64, String> = BTreeMap::new();
        let mut max_rid = 0u64;
        match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                for line in text.lines() {
                    if !crc_valid(line) {
                        continue;
                    }
                    let Some(rid) = raw_field(line, "rid").and_then(|r| r.parse().ok()) else {
                        continue;
                    };
                    max_rid = max_rid.max(rid);
                    match raw_field(line, "ev") {
                        Some("req") => {
                            if let Some(body) = raw_field(line, "body") {
                                pending.insert(rid, unescape(body));
                            }
                        }
                        Some("done") => {
                            pending.remove(&rid);
                        }
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        let journal = ServeJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            next_rid: AtomicU64::new(max_rid + 1),
        };
        let pending = pending.into_iter().map(|(rid, body)| PendingRequest { rid, body }).collect();
        Ok((journal, pending))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records an accepted request (fsync'd before returning, so an
    /// admitted request survives a crash) and assigns its rid. Errors
    /// latch (see [`take_error`](ServeJournal::take_error)).
    pub fn accept(&self, body: &str) -> u64 {
        let rid = self.next_rid.fetch_add(1, Ordering::Relaxed);
        let mut line = String::from("{\"ev\":\"req\"");
        let _ = write!(line, ",\"rid\":{rid},\"body\":\"{}\"", escape(body));
        append_sealed(&self.writer, line, true);
        rid
    }

    /// Records that the response for `rid` reached the client, with its
    /// terminal status word. Errors latch.
    pub fn done(&self, rid: u64, status: &str) {
        let mut line = String::from("{\"ev\":\"done\"");
        let _ = write!(line, ",\"rid\":{rid},\"status\":\"{}\"", escape(status));
        append_sealed(&self.writer, line, true);
    }

    /// The first write error, if any.
    pub fn take_error(&self) -> Option<String> {
        match self.writer.lock() {
            Ok(mut writer) => writer.error.take(),
            Err(_) => Some("journal writer mutex poisoned".to_string()),
        }
    }
}

/// One chip-tile `tile` record: everything the hierarchical flow needs
/// to replay a finished tile without re-routing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipTileRecord {
    /// Tile index in the chip's tile ordering.
    pub index: usize,
    /// Fingerprint of the tile sub-problem ([`RunJournal::fingerprint`]
    /// over its serialized form), so edited chips re-route.
    pub fingerprint: u64,
    /// Terminal classification of the tile's supervised outcome.
    pub status: InstanceStatus,
    /// How the tile's result was obtained.
    pub path: RecoveryPath,
    /// Attempts spent across the tile's recovery chain.
    pub attempts: u32,
    /// Tile-local committed wiring, serialized by the chip flow — the
    /// journal treats it as an opaque string.
    pub routes: String,
    /// Tile-local ids of the nets the tile left unconnected.
    pub failed: Vec<u32>,
    /// Terminal error or salvage reason, if any.
    pub error: Option<String>,
}

/// Crash-safe journal for the hierarchical chip flow (`vroute chip`).
///
/// Three record kinds, all crc-sealed like the batch journal's:
///
/// * `begin` — appended before a tile is routed, marking it in-flight.
/// * `tile` — appended (and fsync'd) after a tile's supervised outcome
///   is known, carrying its status, recovery path and the tile-local
///   wiring needed to replay it without re-routing.
/// * `mark` — a stage checkpoint (e.g. the post-stitch database
///   checksum), keyed by the chip fingerprint so stale chips never
///   validate.
///
/// The journal is opened *before* the chip's tile decomposition exists
/// ([`create`](ChipJournal::create) / [`resume`](ChipJournal::resume)
/// only touch the filesystem); once the flow has computed per-tile
/// fingerprints it calls [`establish`](ChipJournal::establish), which
/// matches any parsed records against them — index *and* fingerprint,
/// last valid record wins — and everything that matches replays.
#[derive(Debug)]
pub struct ChipJournal {
    path: PathBuf,
    writer: Mutex<Writer>,
    state: Mutex<ChipState>,
}

#[derive(Debug, Default)]
struct ChipState {
    /// Established per-tile fingerprints.
    tiles: Vec<u64>,
    /// Chip fingerprint (FNV over the tile fingerprints).
    chip_fp: u64,
    /// Parsed `tile` records awaiting [`ChipJournal::establish`].
    parsed: Vec<ChipTileRecord>,
    /// Parsed `mark` records awaiting [`ChipJournal::establish`],
    /// as `(chip fingerprint, stage, checksum)`.
    marks: Vec<(u64, String, u64)>,
    /// Post-establish replay set, one slot per tile.
    replayed: Vec<Option<ChipTileRecord>>,
    /// Post-establish stage checkpoints from the previous run.
    checkpoints: BTreeMap<String, u64>,
}

impl ChipJournal {
    /// File name of the log inside the journal directory.
    pub const FILE_NAME: &'static str = "chip.ldj";

    /// Starts a fresh chip journal, truncating any previous log in
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn create(dir: &Path) -> io::Result<ChipJournal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(ChipJournal::FILE_NAME);
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(ChipJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            state: Mutex::new(ChipState::default()),
        })
    }

    /// Opens a chip journal for resume: scans any existing log for
    /// valid records (candidates until
    /// [`establish`](ChipJournal::establish) validates them), then
    /// appends. A missing log behaves like
    /// [`create`](ChipJournal::create).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, read and file-open failures.
    pub fn resume(dir: &Path) -> io::Result<ChipJournal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(ChipJournal::FILE_NAME);
        let mut state = ChipState::default();
        match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                for line in text.lines() {
                    if !crc_valid(line) {
                        continue;
                    }
                    match raw_field(line, "ev") {
                        Some("tile") => {
                            if let Some(record) = parse_tile_line(line) {
                                state.parsed.push(record);
                            }
                        }
                        Some("mark") => {
                            let fp =
                                raw_field(line, "fp").and_then(|h| u64::from_str_radix(h, 16).ok());
                            let stage = raw_field(line, "stage").map(unescape);
                            let checksum = raw_field(line, "checksum")
                                .and_then(|h| u64::from_str_radix(h, 16).ok());
                            if let (Some(fp), Some(stage), Some(checksum)) = (fp, stage, checksum) {
                                state.marks.push((fp, stage, checksum));
                            }
                        }
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        Ok(ChipJournal {
            path,
            writer: Mutex::new(Writer { file: Some(file), error: None }),
            state: Mutex::new(state),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The chip fingerprint for a tile decomposition: FNV over the
    /// per-tile fingerprints.
    pub fn chip_fingerprint(tiles: &[u64]) -> u64 {
        let mut text = String::with_capacity(tiles.len() * 17);
        for fp in tiles {
            let _ = write!(text, "{fp:016x};");
        }
        RunJournal::fingerprint(&text)
    }

    /// Registers the chip's per-tile fingerprints and validates any
    /// records parsed at [`resume`](ChipJournal::resume) time against
    /// them: a `tile` record replays iff its index and fingerprint both
    /// match (last valid record wins); a `mark` checkpoint survives iff
    /// its chip fingerprint matches. Must be called before
    /// [`begin`](ChipJournal::begin)/[`finish`](ChipJournal::finish).
    pub fn establish(&self, tiles: &[u64]) {
        let Ok(mut state) = self.state.lock() else { return };
        state.tiles = tiles.to_vec();
        state.chip_fp = ChipJournal::chip_fingerprint(tiles);
        state.replayed = vec![None; tiles.len()];
        let parsed = std::mem::take(&mut state.parsed);
        for record in parsed {
            if state.tiles.get(record.index) == Some(&record.fingerprint) {
                let slot = record.index;
                state.replayed[slot] = Some(record);
            }
        }
        let marks = std::mem::take(&mut state.marks);
        let chip_fp = state.chip_fp;
        for (fp, stage, checksum) in marks {
            if fp == chip_fp {
                state.checkpoints.insert(stage, checksum);
            }
        }
    }

    /// The replayed record for a tile, if resume found a valid one.
    pub fn replay(&self, index: usize) -> Option<ChipTileRecord> {
        let state = self.state.lock().ok()?;
        state.replayed.get(index).and_then(|r| r.clone())
    }

    /// Tiles resume will skip.
    pub fn resumed_count(&self) -> usize {
        match self.state.lock() {
            Ok(state) => state.replayed.iter().filter(|r| r.is_some()).count(),
            Err(_) => 0,
        }
    }

    /// The established fingerprint for a tile.
    pub fn tile_fingerprint(&self, index: usize) -> Option<u64> {
        let state = self.state.lock().ok()?;
        state.tiles.get(index).copied()
    }

    /// The previous run's checkpoint for a stage, if one survived
    /// [`establish`](ChipJournal::establish).
    pub fn replayed_checkpoint(&self, stage: &str) -> Option<u64> {
        let state = self.state.lock().ok()?;
        state.checkpoints.get(stage).copied()
    }

    /// Appends the in-flight marker for a tile. Errors latch (see
    /// [`take_error`](ChipJournal::take_error)).
    pub fn begin(&self, index: usize) {
        let fp = match self.state.lock() {
            Ok(state) => match state.tiles.get(index) {
                Some(fp) => *fp,
                None => return,
            },
            Err(_) => return,
        };
        let mut body = String::from("{\"ev\":\"begin\"");
        let _ = write!(body, ",\"idx\":{index},\"fp\":\"{fp:016x}\"");
        append_sealed(&self.writer, body, false);
    }

    /// Appends and fsyncs the terminal record for a tile. Errors latch
    /// (see [`take_error`](ChipJournal::take_error)).
    pub fn finish(&self, record: &ChipTileRecord) {
        let mut body = String::from("{\"ev\":\"tile\"");
        let _ = write!(body, ",\"idx\":{},\"fp\":\"{:016x}\"", record.index, record.fingerprint);
        let _ = write!(body, ",\"status\":\"{}\"", record.status.as_str());
        let _ = write!(body, ",\"path\":\"{}\"", escape(&record.path.encode()));
        let _ = write!(body, ",\"attempts\":{}", record.attempts);
        let _ = write!(body, ",\"routes\":\"{}\"", escape(&record.routes));
        let failed: Vec<String> = record.failed.iter().map(u32::to_string).collect();
        let _ = write!(body, ",\"failed\":\"{}\"", failed.join(","));
        if let Some(error) = &record.error {
            let _ = write!(body, ",\"error\":\"{}\"", escape(error));
        }
        append_sealed(&self.writer, body, true);
    }

    /// Appends and fsyncs a stage checkpoint, keyed by the established
    /// chip fingerprint. Errors latch.
    pub fn checkpoint(&self, stage: &str, checksum: u64) {
        let fp = match self.state.lock() {
            Ok(state) => state.chip_fp,
            Err(_) => return,
        };
        let mut body = String::from("{\"ev\":\"mark\"");
        let _ = write!(body, ",\"fp\":\"{fp:016x}\",\"stage\":\"{}\"", escape(stage));
        let _ = write!(body, ",\"checksum\":\"{checksum:016x}\"");
        append_sealed(&self.writer, body, true);
    }

    /// The first write error, if any — callers check once per run.
    pub fn take_error(&self) -> Option<String> {
        match self.writer.lock() {
            Ok(mut writer) => writer.error.take(),
            Err(_) => Some("journal writer mutex poisoned".to_string()),
        }
    }
}

/// Parses one crc-checked journal line into a chip `tile` record.
fn parse_tile_line(line: &str) -> Option<ChipTileRecord> {
    let failed_raw = raw_field(line, "failed")?;
    let mut failed = Vec::new();
    for part in failed_raw.split(',') {
        if part.is_empty() {
            continue;
        }
        failed.push(part.parse().ok()?);
    }
    Some(ChipTileRecord {
        index: raw_field(line, "idx")?.parse().ok()?,
        fingerprint: u64::from_str_radix(raw_field(line, "fp")?, 16).ok()?,
        status: InstanceStatus::parse(raw_field(line, "status")?)?,
        path: RecoveryPath::parse(&unescape(raw_field(line, "path")?))?,
        attempts: raw_field(line, "attempts")?.parse().ok()?,
        routes: unescape(raw_field(line, "routes")?),
        failed,
        error: raw_field(line, "error").map(unescape),
    })
}

/// Escapes a string for embedding in a journal line: backslash, quote
/// and control characters.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts the raw (still-escaped) value of a top-level `"key":` pair,
/// scanning outside string context so a value containing `"key":`
/// cannot spoof a field.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\":");
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        if in_string {
            match bytes[i] {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            if line[i..].starts_with(&needle) {
                let start = i + needle.len();
                return Some(value_at(line, start));
            }
            in_string = true;
        }
        i += 1;
    }
    None
}

/// The value token starting at `start`: a quoted string's contents, or
/// a bare token up to the next comma or closing brace.
fn value_at(line: &str, start: usize) -> &str {
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let bytes = inner.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 1,
                b'"' => return &inner[..i],
                _ => {}
            }
            i += 1;
        }
        inner
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        &rest[..end]
    }
}

/// Parses one journal line into a `done` entry, returning `None` for
/// `begin` markers, torn lines (crc mismatch), and anything malformed.
fn parse_done_line(line: &str) -> Option<JournalEntry> {
    // crc check first: it covers everything before the crc field, and
    // escaped strings cannot contain a bare `,"crc":"`, so rfind is
    // unambiguous.
    let crc_at = line.rfind(",\"crc\":\"")?;
    let crc = u64::from_str_radix(raw_field(line, "crc")?, 16).ok()?;
    if RunJournal::fingerprint(&line[..crc_at]) != crc {
        return None;
    }
    if raw_field(line, "ev")? != "done" {
        return None;
    }
    Some(JournalEntry {
        index: raw_field(line, "idx")?.parse().ok()?,
        label: unescape(raw_field(line, "label")?),
        fingerprint: u64::from_str_radix(raw_field(line, "fp")?, 16).ok()?,
        status: InstanceStatus::parse(raw_field(line, "status")?)?,
        path: RecoveryPath::parse(&unescape(raw_field(line, "path")?))?,
        attempts: raw_field(line, "attempts")?.parse().ok()?,
        checksum: match raw_field(line, "checksum") {
            Some(hex) => Some(u64::from_str_radix(hex, 16).ok()?),
            None => None,
        },
        wire: raw_field(line, "wire")?.parse().ok()?,
        vias: raw_field(line, "vias")?.parse().ok()?,
        failed_nets: raw_field(line, "failed")?.parse().ok()?,
        lint_findings: match raw_field(line, "lint") {
            Some(n) => Some(n.parse().ok()?),
            None => None,
        },
        error: raw_field(line, "error").map(unescape),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: usize, label: &str) -> JournalEntry {
        JournalEntry {
            index,
            label: label.to_string(),
            fingerprint: RunJournal::fingerprint(label),
            status: InstanceStatus::Complete,
            path: RecoveryPath::Direct,
            attempts: 1,
            checksum: Some(0xdead_beef),
            wire: 42,
            vias: 3,
            failed_nets: 0,
            lint_findings: None,
            error: None,
        }
    }

    fn keys(labels: &[&str]) -> Vec<(String, u64)> {
        labels.iter().map(|l| (l.to_string(), RunJournal::fingerprint(l))).collect()
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vroute-journal-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entries_round_trip_through_the_log() {
        let dir = temp_dir("roundtrip");
        let instances = keys(&["a.sb", "b \"quoted\" \\path\n.sb"]);
        let journal = RunJournal::create(&dir, &instances).unwrap();
        journal.begin(0);
        journal.finish(&entry(0, "a.sb"));
        let mut salvaged = entry(1, "b \"quoted\" \\path\n.sb");
        salvaged.status = InstanceStatus::Salvaged;
        salvaged.path = RecoveryPath::Salvaged;
        salvaged.failed_nets = 2;
        salvaged.lint_findings = Some(0);
        salvaged.error = Some("deadline exceeded: 7 ms against a 5 ms budget".to_string());
        journal.begin(1);
        journal.finish(&salvaged);
        assert_eq!(journal.take_error(), None);
        drop(journal);

        let resumed = RunJournal::resume(&dir, &instances).unwrap();
        assert_eq!(resumed.resumed_count(), 2);
        assert_eq!(resumed.replay(0), Some(&entry(0, "a.sb")));
        assert_eq!(resumed.replay(1), Some(&salvaged));
    }

    #[test]
    fn torn_and_foreign_lines_are_ignored() {
        let dir = temp_dir("torn");
        let instances = keys(&["a.sb", "b.sb"]);
        let journal = RunJournal::create(&dir, &instances).unwrap();
        journal.finish(&entry(0, "a.sb"));
        journal.finish(&entry(1, "b.sb"));
        drop(journal);

        // Tear the final line mid-byte, as a crash would.
        let path = dir.join(RunJournal::FILE_NAME);
        let text = fs::read_to_string(&path).unwrap();
        let torn: String = text.chars().take(text.len() - 9).collect();
        fs::write(&path, torn).unwrap();

        let resumed = RunJournal::resume(&dir, &instances).unwrap();
        assert_eq!(resumed.resumed_count(), 1, "the torn record must be re-run");
        assert!(resumed.replay(0).is_some());
        assert!(resumed.replay(1).is_none());
    }

    #[test]
    fn edited_instances_are_not_replayed() {
        let dir = temp_dir("edited");
        let journal = RunJournal::create(&dir, &keys(&["a.sb"])).unwrap();
        journal.finish(&entry(0, "a.sb"));
        drop(journal);

        // Same label, different content fingerprint: must re-run.
        let edited = vec![("a.sb".to_string(), 0x1234u64)];
        let resumed = RunJournal::resume(&dir, &edited).unwrap();
        assert_eq!(resumed.resumed_count(), 0);
    }

    #[test]
    fn spoofed_fields_inside_values_do_not_parse() {
        // An error string that contains a fake status field must not
        // override the real one.
        let mut e = entry(0, "a.sb");
        e.status = InstanceStatus::Errored;
        e.path = RecoveryPath::Failed;
        e.checksum = None;
        e.error = Some("evil\",\"status\":\"complete".to_string());
        let dir = temp_dir("spoof");
        let instances = keys(&["a.sb"]);
        let journal = RunJournal::create(&dir, &instances).unwrap();
        journal.finish(&e);
        drop(journal);

        let resumed = RunJournal::resume(&dir, &instances).unwrap();
        let replayed = resumed.replay(0).expect("record replays");
        assert_eq!(replayed.status, InstanceStatus::Errored);
        assert_eq!(replayed.error, e.error);
    }

    #[test]
    fn serve_journal_replays_unanswered_requests() {
        let dir = temp_dir("serve");
        let journal = ServeJournal::create(&dir).unwrap();
        let tricky = "{\"v\":1,\"op\":\"route\",\"instance\":\"switchbox 4 4\\n\"}";
        let r1 = journal.accept(tricky);
        let r2 = journal.accept("{\"v\":1,\"op\":\"ping\",\"id\":\"p\"}");
        let r3 = journal.accept("{\"v\":1,\"op\":\"route\",\"id\":\"x\"}");
        assert_eq!((r1, r2, r3), (1, 2, 3));
        journal.done(r2, "complete");
        assert_eq!(journal.take_error(), None);
        drop(journal);

        let (resumed, pending) = ServeJournal::resume(&dir).unwrap();
        assert_eq!(pending.len(), 2, "answered requests must not replay");
        assert_eq!(pending[0].rid, 1);
        assert_eq!(pending[0].body, tricky, "bodies survive byte-for-byte");
        assert_eq!(pending[1].rid, 3);
        // New rids continue after the highest seen.
        assert_eq!(resumed.accept("{}"), 4);
    }

    #[test]
    fn serve_journal_ignores_torn_tail() {
        let dir = temp_dir("serve-torn");
        let journal = ServeJournal::create(&dir).unwrap();
        journal.accept("first");
        journal.accept("second");
        drop(journal);

        let path = dir.join(ServeJournal::FILE_NAME);
        let text = fs::read_to_string(&path).unwrap();
        let torn: String = text.chars().take(text.len() - 7).collect();
        fs::write(&path, torn).unwrap();

        let (_resumed, pending) = ServeJournal::resume(&dir).unwrap();
        assert_eq!(pending.len(), 1, "the torn record is not replayed");
        assert_eq!(pending[0].body, "first");
    }

    #[test]
    fn serve_journal_resume_on_empty_dir_is_fresh() {
        let dir = temp_dir("serve-fresh");
        let (journal, pending) = ServeJournal::resume(&dir).unwrap();
        assert!(pending.is_empty());
        assert_eq!(journal.accept("x"), 1);
    }

    fn tile_record(index: usize, fp: u64) -> ChipTileRecord {
        ChipTileRecord {
            index,
            fingerprint: fp,
            status: InstanceStatus::Complete,
            path: RecoveryPath::Direct,
            attempts: 1,
            routes: format!("0:1,2,0;3,2,0|1:0,0,1;0,1,1 tile {index}"),
            failed: vec![],
            error: None,
        }
    }

    #[test]
    fn chip_journal_replays_matching_tiles() {
        let dir = temp_dir("chip");
        let tiles = [0x11u64, 0x22, 0x33];
        let journal = ChipJournal::create(&dir).unwrap();
        journal.establish(&tiles);
        journal.begin(0);
        journal.finish(&tile_record(0, 0x11));
        let mut salvaged = tile_record(2, 0x33);
        salvaged.status = InstanceStatus::Salvaged;
        salvaged.path = RecoveryPath::Salvaged;
        salvaged.attempts = 3;
        salvaged.failed = vec![4, 9];
        salvaged.error = Some("incomplete after 3 attempt(s): 2 net(s) unrouted".to_string());
        journal.begin(2);
        journal.finish(&salvaged);
        journal.checkpoint("stitch", 0xfeed_f00d);
        assert_eq!(journal.take_error(), None);
        drop(journal);

        let resumed = ChipJournal::resume(&dir).unwrap();
        resumed.establish(&tiles);
        assert_eq!(resumed.resumed_count(), 2);
        assert_eq!(resumed.replay(0), Some(tile_record(0, 0x11)));
        assert_eq!(resumed.replay(1), None, "tile 1 never finished");
        assert_eq!(resumed.replay(2), Some(salvaged));
        assert_eq!(resumed.replayed_checkpoint("stitch"), Some(0xfeed_f00d));
        assert_eq!(resumed.replayed_checkpoint("final"), None);
    }

    #[test]
    fn chip_journal_rejects_stale_fingerprints() {
        let dir = temp_dir("chip-stale");
        let journal = ChipJournal::create(&dir).unwrap();
        journal.establish(&[0x11, 0x22]);
        journal.finish(&tile_record(0, 0x11));
        journal.finish(&tile_record(1, 0x22));
        journal.checkpoint("stitch", 0xabcd);
        drop(journal);

        // A different chip: tile 0 matches, tile 1 changed, and the
        // chip-level checkpoint must not validate.
        let resumed = ChipJournal::resume(&dir).unwrap();
        resumed.establish(&[0x11, 0x99]);
        assert_eq!(resumed.resumed_count(), 1);
        assert!(resumed.replay(0).is_some());
        assert!(resumed.replay(1).is_none(), "edited tile must re-route");
        assert_eq!(resumed.replayed_checkpoint("stitch"), None);
    }

    #[test]
    fn chip_journal_ignores_torn_tail_and_last_record_wins() {
        let dir = temp_dir("chip-torn");
        let tiles = [0x1u64, 0x2];
        let journal = ChipJournal::create(&dir).unwrap();
        journal.establish(&tiles);
        let mut first = tile_record(0, 0x1);
        first.attempts = 1;
        journal.finish(&first);
        let mut second = tile_record(0, 0x1);
        second.attempts = 2;
        journal.finish(&second);
        journal.finish(&tile_record(1, 0x2));
        drop(journal);

        // Tear the final line mid-byte, as a crash would.
        let path = dir.join(ChipJournal::FILE_NAME);
        let text = fs::read_to_string(&path).unwrap();
        let torn: String = text.chars().take(text.len() - 9).collect();
        fs::write(&path, torn).unwrap();

        let resumed = ChipJournal::resume(&dir).unwrap();
        resumed.establish(&tiles);
        assert_eq!(resumed.resumed_count(), 1, "the torn record must be re-run");
        let replayed = resumed.replay(0).expect("tile 0 replays");
        assert_eq!(replayed.attempts, 2, "last valid record wins");
        assert!(resumed.replay(1).is_none());
    }

    #[test]
    fn chip_journal_resume_on_empty_dir_is_fresh() {
        let dir = temp_dir("chip-fresh");
        let journal = ChipJournal::resume(&dir).unwrap();
        journal.establish(&[0x1]);
        assert_eq!(journal.resumed_count(), 0);
        assert!(journal.replay(0).is_none());
    }
}
