use std::collections::{BTreeSet, HashSet, VecDeque};

use route_geom::{Layer, Point, Rect};
use route_maze::search::{find_path_observed, find_path_soft_observed, Query, SearchArena};
use route_model::{
    NetId, NopObserver, Problem, RouteDb, RouteError, RouteObserver, SlotIndex, Step, Trace,
    TraceId,
};

use crate::net_graph::{is_connected, pin_components};
use crate::{NetOrder, RouterConfig, RouterStats};

/// The incremental rip-up/reroute detailed router.
///
/// See the [crate documentation](crate) for the algorithm; construct with
/// a [`RouterConfig`] and call [`MightyRouter::route`] (fresh problems)
/// or [`MightyRouter::try_route_incremental`] (partially routed areas).
#[derive(Debug, Clone, Default)]
pub struct MightyRouter {
    cfg: RouterConfig,
}

/// The result of a routing run: the final database, the nets that could
/// not be completed, and the work counters.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    db: RouteDb,
    failed: Vec<NetId>,
    stats: RouterStats,
}

impl RouteOutcome {
    /// Whether every net was fully connected.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The routing database with all committed wiring.
    pub fn db(&self) -> &RouteDb {
        &self.db
    }

    /// Consumes the outcome, returning the database.
    pub fn into_db(self) -> RouteDb {
        self.db
    }

    /// Nets that could not be completed, ascending.
    pub fn failed(&self) -> &[NetId] {
        &self.failed
    }

    /// Work counters for the run.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }
}

enum ConnectResult {
    Connected,
    Stuck,
}

impl MightyRouter {
    /// Creates a router with the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        MightyRouter { cfg }
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Routes every net of `problem` from scratch.
    pub fn route(&self, problem: &Problem) -> RouteOutcome {
        self.route_observed(problem, &mut NopObserver)
    }

    /// Like [`route`](MightyRouter::route), but streams the full
    /// [`RouteObserver`] event vocabulary — scheduling, every hard and
    /// soft search (with effort counters), weak modifications, strong
    /// rip-ups with their penalty escalations, and terminal per-net
    /// outcomes. Observation never changes the result: the returned
    /// database is bit-identical to the unobserved run's.
    pub fn route_observed(
        &self,
        problem: &Problem,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome {
        self.try_route_incremental_observed(problem, RouteDb::new(problem), observer)
            .expect("a fresh database always matches its problem")
    }

    /// Routes the incomplete nets of an existing database — the
    /// "partially routed area" mode. Pre-committed wiring of other nets
    /// is respected but *may be modified* (pushed or ripped) like any
    /// other wiring; ripped nets are re-routed.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DbMismatch`] when `db` was not created for
    /// `problem` (net counts differ). Routing failures are *not* errors:
    /// unconnected nets are reported in [`RouteOutcome::failed`].
    pub fn try_route_incremental(
        &self,
        problem: &Problem,
        db: RouteDb,
    ) -> Result<RouteOutcome, RouteError> {
        self.try_route_incremental_observed(problem, db, &mut NopObserver)
    }

    /// Like [`try_route_incremental`](MightyRouter::try_route_incremental),
    /// but streams [`RouteObserver`] events (see
    /// [`route_observed`](MightyRouter::route_observed)).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DbMismatch`] when `db` was not created for
    /// `problem` (net counts differ).
    pub fn try_route_incremental_observed(
        &self,
        problem: &Problem,
        db: RouteDb,
        observer: &mut dyn RouteObserver,
    ) -> Result<RouteOutcome, RouteError> {
        let mut arena = SearchArena::with_frontier(self.cfg.frontier);
        self.try_route_incremental_observed_in(problem, db, &mut arena, observer)
    }

    /// Routes every net of `problem` using a caller-owned
    /// [`SearchArena`] for search scratch. This is the warm-worker entry
    /// point: a long-running service hands each request the worker's
    /// arena, so steady-state routing performs no per-request scratch
    /// allocation (the arena grows to the largest grid it has seen and
    /// is reset, not reallocated, between requests). The routed result
    /// is bit-identical to [`route`](MightyRouter::route).
    pub fn route_warm(&self, problem: &Problem, arena: &mut SearchArena) -> RouteOutcome {
        self.route_warm_observed(problem, arena, &mut NopObserver)
    }

    /// Like [`route_warm`](MightyRouter::route_warm), but streams
    /// [`RouteObserver`] events.
    pub fn route_warm_observed(
        &self,
        problem: &Problem,
        arena: &mut SearchArena,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome {
        self.try_route_incremental_observed_in(problem, RouteDb::new(problem), arena, observer)
            .expect("a fresh database always matches its problem")
    }

    /// The most general entry point: incremental routing with an
    /// external observer *and* an external search arena. All other
    /// `route*` methods funnel here.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DbMismatch`] when `db` was not created for
    /// `problem` (net counts differ).
    pub fn try_route_incremental_observed_in(
        &self,
        problem: &Problem,
        db: RouteDb,
        arena: &mut SearchArena,
        observer: &mut dyn RouteObserver,
    ) -> Result<RouteOutcome, RouteError> {
        if db.net_count() != problem.nets().len() {
            return Err(RouteError::DbMismatch {
                expected: problem.nets().len(),
                found: db.net_count(),
            });
        }
        let mut run = Run::new(&self.cfg, problem, db, arena, observer);
        run.execute();
        // The outcome is the best configuration the run ever reached:
        // modification is speculative, so a late cascade of rips must not
        // degrade the delivered result below an earlier state.
        let final_connected = run.connected_count();
        let db = match run.best.take() {
            Some((best_count, best_db)) if best_count > final_connected => best_db,
            _ => run.db,
        };
        let failed: Vec<NetId> = (0..db.net_count() as u32)
            .map(NetId)
            .filter(|&id| pin_components(&db, id).len() > 1)
            .collect();
        Ok(RouteOutcome { db, failed, stats: run.stats })
    }
}

impl route_model::DetailedRouter for MightyRouter {
    fn name(&self) -> &str {
        "mighty"
    }

    fn route(&self, problem: &Problem) -> route_model::RouteResult {
        let out = MightyRouter::route(self, problem);
        Ok(route_model::Routing { db: out.db, failed: out.failed })
    }

    fn route_observed(
        &self,
        problem: &Problem,
        observer: &mut dyn RouteObserver,
    ) -> route_model::RouteResult {
        let out = MightyRouter::route_observed(self, problem, observer);
        Ok(route_model::Routing { db: out.db, failed: out.failed })
    }
}

struct Run<'a> {
    cfg: &'a RouterConfig,
    db: RouteDb,
    queue: VecDeque<NetId>,
    queued: Vec<bool>,
    attempts: Vec<u32>,
    rips: Vec<u32>,
    failed: Vec<bool>,
    /// Pin slots of every net: never passable in interference search.
    pin_slots: HashSet<(Point, Layer)>,
    max_events: usize,
    /// Set when the event budget runs out: modification is disabled and
    /// the queue drains with one hard-only attempt per net.
    exhausted: bool,
    /// Best state reached so far: `(connected nets, database snapshot)`.
    best: Option<(usize, RouteDb)>,
    /// Per-net connectivity cache; `conn[i]` is valid iff `!conn_dirty[i]`.
    /// Every database mutation touches exactly one net, so the cache lets
    /// [`connected_count`](Run::connected_count) re-walk only the nets
    /// whose wiring changed instead of sweeping the whole netlist.
    conn: Vec<bool>,
    conn_dirty: Vec<bool>,
    /// Scratch buffers shared by every search of the run; borrowed so a
    /// warm worker can amortize them across requests.
    arena: &'a mut SearchArena,
    stats: RouterStats,
    /// Event sink; a [`NopObserver`] on unobserved runs.
    obs: &'a mut dyn RouteObserver,
}

impl<'a> Run<'a> {
    fn new(
        cfg: &'a RouterConfig,
        problem: &'a Problem,
        db: RouteDb,
        arena: &'a mut SearchArena,
        obs: &'a mut dyn RouteObserver,
    ) -> Self {
        let n = problem.nets().len();
        let pin_slots = problem
            .nets()
            .iter()
            .flat_map(|net| net.pins.iter().map(|p| (p.at, p.layer)))
            .collect();
        let max_events = if cfg.max_events == 0 { 64 * n + 256 } else { cfg.max_events };

        let mut order: Vec<NetId> = problem.nets().iter().map(|net| net.id).collect();
        let bbox = |id: NetId| -> Rect {
            let net = problem.net(id);
            let first = net.pins[0].at;
            net.pins.iter().fold(Rect::cell(first), |acc, p| acc.union(&Rect::cell(p.at)))
        };
        let bbox_size = |id: NetId| -> u32 {
            let b = bbox(id);
            b.width() + b.height()
        };
        match cfg.order {
            NetOrder::ShortFirst => order.sort_by_key(|&id| (bbox_size(id), id.0)),
            NetOrder::LongFirst => {
                order.sort_by_key(|&id| (std::cmp::Reverse(bbox_size(id)), id.0))
            }
            NetOrder::PinCountDesc => {
                order.sort_by_key(|&id| (std::cmp::Reverse(problem.net(id).pins.len()), id.0))
            }
            NetOrder::CongestionFirst => {
                // Contested nets (whose boxes intersect many others) go
                // first while space is still plentiful.
                let boxes: Vec<Rect> = order.iter().map(|&id| bbox(id)).collect();
                let contention = |id: NetId| -> usize {
                    let own = boxes[id.index()];
                    boxes
                        .iter()
                        .enumerate()
                        .filter(|&(i, b)| i != id.index() && own.intersects(b))
                        .count()
                };
                order.sort_by_key(|&id| (std::cmp::Reverse(contention(id)), id.0));
            }
            NetOrder::Declared => {}
        }
        let mut queued = vec![false; n];
        let mut conn = vec![false; n];
        let queue: VecDeque<NetId> = order
            .into_iter()
            .filter(|&id| {
                let connected = is_connected(&db, id);
                conn[id.index()] = connected;
                if !connected {
                    queued[id.index()] = true;
                }
                !connected
            })
            .collect();

        Run {
            cfg,
            db,
            queue,
            queued,
            attempts: vec![0; n],
            rips: vec![0; n],
            failed: vec![false; n],
            pin_slots,
            max_events,
            exhausted: false,
            best: None,
            conn,
            conn_dirty: vec![false; n],
            arena,
            stats: RouterStats::default(),
            obs,
        }
    }

    /// Marks `net`'s cached connectivity stale after a database
    /// mutation.
    fn touch_net(&mut self, net: NetId) {
        self.conn_dirty[net.index()] = true;
    }

    /// Number of fully connected nets in the run's database, re-walking
    /// only the nets whose wiring changed since the last call.
    fn connected_count(&mut self) -> usize {
        // Same predicate as `pin_components(db, id).len() <= 1`, without
        // materializing the component slot lists.
        for i in 0..self.conn.len() {
            if self.conn_dirty[i] {
                self.conn[i] = is_connected(&self.db, NetId(i as u32));
                self.conn_dirty[i] = false;
            }
        }
        self.conn.iter().filter(|&&c| c).count()
    }

    /// Snapshots the current state if it connects more nets than any
    /// earlier state.
    fn remember_best(&mut self) {
        let count = self.connected_count();
        let improved = self.best.as_ref().is_none_or(|&(best, _)| count > best);
        if improved {
            self.best = Some((count, self.db.clone()));
        }
    }

    fn enqueue(&mut self, net: NetId) {
        if !self.queued[net.index()] && !self.failed[net.index()] {
            self.queued[net.index()] = true;
            self.queue.push_back(net);
        }
    }

    /// Queues a ripped victim for immediate re-routing, ahead of
    /// first-time work — re-routing while the surrounding wiring is
    /// fresh is what keeps modification local.
    fn enqueue_front(&mut self, net: NetId) {
        if !self.queued[net.index()] && !self.failed[net.index()] {
            self.queued[net.index()] = true;
            self.queue.push_front(net);
        }
    }

    /// Declares `net` failed and removes its wiring (the pins stay), so
    /// a hopeless net does not hold space hostage from the rest.
    fn fail(&mut self, net: NetId) {
        self.failed[net.index()] = true;
        self.db.rip_up_net(net);
        self.touch_net(net);
        self.obs.on_net_failed(net);
    }

    fn execute(&mut self) {
        while let Some(net) = self.queue.pop_front() {
            self.queued[net.index()] = false;
            self.stats.events += 1;
            if self.stats.events as usize > self.max_events {
                // Safety backstop: stop modifying, drain the queue with
                // one hard-only attempt per remaining net.
                self.exhausted = true;
            }
            if self.failed[net.index()] {
                continue;
            }
            self.obs.on_net_scheduled(net);
            if self.rips[net.index()] > 0 {
                self.stats.reroutes += 1;
            }
            match self.connect_fully(net) {
                ConnectResult::Connected => {
                    self.obs.on_net_committed(net);
                    self.remember_best();
                }
                ConnectResult::Stuck => {
                    self.attempts[net.index()] += 1;
                    if self.exhausted || self.attempts[net.index()] >= self.cfg.max_attempts {
                        self.fail(net);
                    } else {
                        self.enqueue(net);
                    }
                }
            }
        }
    }

    /// Merges the pin components of `net` until one remains, using the
    /// hard search first and the modification machinery when blocked.
    fn connect_fully(&mut self, net: NetId) -> ConnectResult {
        loop {
            let mut comps = pin_components(&self.db, net);
            if comps.len() <= 1 {
                return ConnectResult::Connected;
            }
            comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
            let sources = comps[0].clone();
            let targets: Vec<Step> = comps[1..].iter().flatten().copied().collect();
            let query = Query { grid: self.db.grid(), net, sources, targets, cost: self.cfg.cost };

            if let Some(found) = find_path_observed(self.arena, &query, &mut *self.obs) {
                self.stats.expanded += found.stats.expanded as u64;
                self.stats.hard_routes += 1;
                self.db.commit(net, found.trace).expect("hard paths commit");
                self.touch_net(net);
                continue;
            }

            if (!self.cfg.weak && !self.cfg.strong) || self.exhausted {
                return ConnectResult::Stuck;
            }

            // Interference search: foreign pins and over-ripped nets are
            // impassable; everything else pays the escalating penalty.
            let pin_slots = &self.pin_slots;
            let rips = &self.rips;
            let cfg = self.cfg;
            let soft_cost = move |p: Point, l: Layer, owner: NetId| -> Option<u64> {
                if pin_slots.contains(&(p, l)) || rips[owner.index()] >= cfg.max_attempts {
                    None
                } else {
                    Some(cfg.penalty(rips[owner.index()]))
                }
            };
            let Some(soft) =
                find_path_soft_observed(self.arena, &query, &soft_cost, &mut *self.obs)
            else {
                return ConnectResult::Stuck;
            };
            self.stats.expanded += soft.stats.expanded as u64;
            self.stats.soft_routes += 1;

            // Lift every victim trace covering a crossed slot. A spatial
            // index over the crossing owners' wiring replaces the per-slot
            // `traces_covering` scan; inserting owners in ascending order
            // and traces in slot order reproduces its output order, and
            // `rip_up` on an already-lifted id is a no-op, so the lifted
            // sequence is bit-identical.
            let mut lifted: Vec<(NetId, Trace)> = Vec::new();
            if !soft.crossings.is_empty() {
                let owners: BTreeSet<NetId> = soft.crossings.iter().map(|&(n, _)| n).collect();
                let grid = self.db.grid();
                let mut index: SlotIndex<(NetId, TraceId)> =
                    SlotIndex::new(grid.width(), grid.height());
                for &owner in &owners {
                    for (id, trace) in self.db.traces(owner) {
                        for &step in trace.steps() {
                            index.insert(step, (owner, id));
                        }
                    }
                }
                for &(owner, step) in &soft.crossings {
                    for &(o, id) in index.at(step.at, step.layer) {
                        if o != owner {
                            continue;
                        }
                        if let Some(trace) = self.db.rip_up(id) {
                            self.conn_dirty[owner.index()] = true;
                            lifted.push((owner, trace));
                        }
                    }
                }
            }
            let victims: BTreeSet<NetId> = lifted.iter().map(|&(n, _)| n).collect();

            // Commit our path into the gap.
            let our_id = match self.db.commit(net, soft.trace.clone()) {
                Ok(id) => id,
                Err(_) => {
                    // Defensive: restore the lifted wiring and give up on
                    // this merge for now.
                    for (owner, trace) in lifted {
                        let _ = self.db.commit(owner, trace);
                        self.conn_dirty[owner.index()] = true;
                    }
                    return ConnectResult::Stuck;
                }
            };
            self.touch_net(net);

            // Weak modification: repair each victim in place.
            let mut repairs: Vec<TraceId> = Vec::new();
            let mut unrepaired: Vec<NetId> = Vec::new();
            if self.cfg.weak {
                for &victim in &victims {
                    match self.reconnect_hard(victim) {
                        Ok(mut ids) => {
                            repairs.append(&mut ids);
                            self.stats.weak_pushes += 1;
                            self.obs.on_weak_modification(net, victim);
                        }
                        Err(mut ids) => {
                            repairs.append(&mut ids);
                            unrepaired.push(victim);
                        }
                    }
                }
            } else {
                unrepaired.extend(victims.iter().copied());
            }

            if unrepaired.is_empty() {
                continue; // weak modification fully absorbed the damage
            }

            if self.cfg.strong {
                for victim in unrepaired {
                    self.rips[victim.index()] += 1;
                    self.stats.rips += 1;
                    self.obs.on_strong_ripup(net, victim, self.rips[victim.index()]);
                    self.obs
                        .on_penalty_escalation(victim, self.cfg.penalty(self.rips[victim.index()]));
                    self.enqueue_front(victim);
                }
                continue;
            }

            // Weak-only configuration and some victim is unrepairable:
            // roll the whole step back.
            self.stats.weak_rollbacks += 1;
            for id in repairs {
                self.db.rip_up(id);
                self.conn_dirty[id.net.index()] = true;
            }
            self.db.rip_up(our_id);
            self.touch_net(net);
            for (owner, trace) in lifted {
                self.db.commit(owner, trace).expect("rollback restores the previous state");
                self.conn_dirty[owner.index()] = true;
            }
            return ConnectResult::Stuck;
        }
    }

    /// Re-merges the pin components of `victim` with the hard search
    /// only. On failure the committed partial repairs are returned for
    /// potential rollback; the victim stays partially routed.
    fn reconnect_hard(&mut self, victim: NetId) -> Result<Vec<TraceId>, Vec<TraceId>> {
        let mut committed = Vec::new();
        loop {
            let mut comps = pin_components(&self.db, victim);
            if comps.len() <= 1 {
                return Ok(committed);
            }
            comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
            let sources = comps[0].clone();
            let targets: Vec<Step> = comps[1..].iter().flatten().copied().collect();
            let query =
                Query { grid: self.db.grid(), net: victim, sources, targets, cost: self.cfg.cost };
            match find_path_observed(self.arena, &query, &mut *self.obs) {
                Some(found) => {
                    self.stats.expanded += found.stats.expanded as u64;
                    committed.push(self.db.commit(victim, found.trace).expect("hard paths commit"));
                    self.touch_net(victim);
                }
                None => return Err(committed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder};
    use route_verify::verify;

    fn default_router() -> MightyRouter {
        MightyRouter::new(RouterConfig::default())
    }

    #[test]
    fn routes_crossing_nets() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(out.is_complete());
        assert!(verify(&p, out.db()).is_clean());
    }

    #[test]
    fn routes_dense_parallel_nets() {
        let mut b = ProblemBuilder::switchbox(10, 8);
        for i in 0..8 {
            b.net(format!("h{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        for i in 0..10 {
            b.net(format!("v{i}")).pin_side(PinSide::Bottom, i).pin_side(PinSide::Top, i);
        }
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(out.is_complete(), "failed: {:?}", out.failed());
        assert!(verify(&p, out.db()).is_clean());
    }

    /// Builds the "enclosed pin" scenario: net `a`'s debris wiring walls
    /// net `b`'s bottom pin in on both layers. Only a router that can rip
    /// or push `a`'s wiring can free `b`.
    fn enclosed_pin_problem() -> (Problem, RouteDb) {
        let mut builder = ProblemBuilder::switchbox(6, 6);
        builder.net("a").pin_side(PinSide::Top, 0).pin_side(PinSide::Top, 5);
        builder.net("b").pin_side(PinSide::Bottom, 2).pin_side(PinSide::Top, 2);
        let problem = builder.build().unwrap();
        let a = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        // Debris ring on M2 around (2,0): blocks west, north, east exits.
        let ring = Trace::from_steps(vec![
            Step::new(Point::new(1, 0), Layer::M2),
            Step::new(Point::new(1, 1), Layer::M2),
            Step::new(Point::new(2, 1), Layer::M2),
            Step::new(Point::new(3, 1), Layer::M2),
            Step::new(Point::new(3, 0), Layer::M2),
        ])
        .unwrap();
        db.commit(a, ring).unwrap();
        // And the via escape hatch on M1.
        let lid = Trace::from_steps(vec![Step::new(Point::new(2, 0), Layer::M1)]).unwrap();
        db.commit(a, lid).unwrap();
        (problem, db)
    }

    #[test]
    fn no_modification_cannot_free_enclosed_pin() {
        let (problem, db) = enclosed_pin_problem();
        let router = MightyRouter::new(RouterConfig::no_modification());
        let out = router.try_route_incremental(&problem, db).unwrap();
        let b = problem.nets()[1].id;
        assert!(out.failed().contains(&b), "b must be stuck without modification");
    }

    #[test]
    fn rip_up_frees_enclosed_pin() {
        let (problem, db) = enclosed_pin_problem();
        let out = default_router().try_route_incremental(&problem, db).unwrap();
        assert!(out.is_complete(), "failed: {:?} ({})", out.failed(), out.stats());
        assert!(verify(&problem, out.db()).is_clean());
        assert!(out.stats().modifications() > 0, "must have modified: {}", out.stats());
    }

    #[test]
    fn strong_only_also_frees_enclosed_pin() {
        let (problem, db) = enclosed_pin_problem();
        let cfg = RouterConfig { weak: false, ..RouterConfig::default() };
        let out = MightyRouter::new(cfg).try_route_incremental(&problem, db).unwrap();
        assert!(out.is_complete(), "failed: {:?}", out.failed());
        assert!(verify(&problem, out.db()).is_clean());
        assert!(out.stats().rips > 0);
    }

    #[test]
    fn weak_only_frees_enclosed_pin_or_rolls_back_legally() {
        let (problem, db) = enclosed_pin_problem();
        let cfg = RouterConfig { strong: false, ..RouterConfig::default() };
        let out = MightyRouter::new(cfg).try_route_incremental(&problem, db).unwrap();
        // Weak modification suffices here (the debris is not pin-connected,
        // so "repair" is trivial), but either way the result must be legal.
        let report = verify(&problem, out.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "illegal result: {report}");
    }

    #[test]
    fn truly_unroutable_single_layer_crossing_fails_finitely() {
        // Both layers collapse to one by blocking M2 entirely: two
        // crossing nets are then impossible; the router must terminate
        // and report failure rather than live-lock.
        let mut b = ProblemBuilder::switchbox(5, 5);
        for y in 0..5 {
            for x in 0..5 {
                b.obstacle_on(Point::new(x, y), Layer::M2);
            }
        }
        b.net("h").pin_at(Point::new(0, 2), Layer::M1).pin_at(Point::new(4, 2), Layer::M1);
        b.net("v").pin_at(Point::new(2, 0), Layer::M1).pin_at(Point::new(2, 4), Layer::M1);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(!out.is_complete());
        assert_eq!(out.failed().len(), 1, "one of the two nets completes");
        let report = verify(&p, out.db());
        assert!(report.is_legal_but_incomplete(), "{report}");
    }

    #[test]
    fn multi_pin_nets_route() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("t")
            .pin_side(PinSide::Left, 4)
            .pin_side(PinSide::Right, 4)
            .pin_side(PinSide::Top, 4)
            .pin_side(PinSide::Bottom, 4);
        b.net("u").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 6);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(out.is_complete());
        assert!(verify(&p, out.db()).is_clean());
    }

    #[test]
    fn single_pin_net_is_trivial() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("solo").pin_at(Point::new(1, 1), Layer::M1);
        b.net("pair").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(out.is_complete());
    }

    #[test]
    fn outcome_accessors() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        assert!(out.failed().is_empty());
        assert!(out.stats().hard_routes >= 1);
        let db = out.into_db();
        assert_eq!(db.net_count(), 1);
    }

    #[test]
    fn mismatched_db_is_an_error() {
        let mut b1 = ProblemBuilder::switchbox(4, 4);
        b1.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p1 = b1.build().unwrap();
        let mut b2 = ProblemBuilder::switchbox(4, 4);
        b2.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b2.net("b").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p2 = b2.build().unwrap();
        let db2 = RouteDb::new(&p2);
        let result = default_router().try_route_incremental(&p1, db2);
        assert!(
            matches!(result, Err(RouteError::DbMismatch { expected: 1, found: 2 })),
            "expected DbMismatch {{ expected: 1, found: 2 }}, got {result:?}"
        );
    }

    #[test]
    fn trait_route_matches_inherent_route() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();
        let router = default_router();
        assert_eq!(route_model::DetailedRouter::name(&router), "mighty");
        let inherent = router.route(&p);
        let routing = route_model::DetailedRouter::route(&router, &p).unwrap();
        assert_eq!(routing.failed, inherent.failed().to_vec());
        assert_eq!(routing.db.checksum(), inherent.db().checksum());
    }

    #[test]
    fn tiny_event_budget_degrades_gracefully() {
        // With an absurdly small event budget the router must still
        // terminate and leave a legal (possibly incomplete) database.
        let mut b = ProblemBuilder::switchbox(10, 10);
        for i in 0..8 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, 9 - i);
        }
        let p = b.build().unwrap();
        let cfg = RouterConfig { max_events: 3, ..RouterConfig::default() };
        let out = MightyRouter::new(cfg).route(&p);
        let report = verify(&p, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "exhausted run left illegal state: {report}"
        );
        assert!(out.stats().events >= 3);
    }

    #[test]
    fn failed_nets_release_their_wiring() {
        // An unroutable net must not hold space hostage: its partial
        // wiring is ripped when it is declared failed.
        let mut b = ProblemBuilder::switchbox(7, 5);
        for y in 0..5 {
            b.obstacle(Point::new(5, y)); // wall isolating the right edge
        }
        b.net("doomed").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        b.net("fine").pin_side(PinSide::Left, 0).pin_side(PinSide::Bottom, 3);
        let p = b.build().unwrap();
        let out = default_router().route(&p);
        let doomed = p.net_by_name("doomed").unwrap().id;
        assert!(out.failed().contains(&doomed));
        // Only the pins remain for the failed net.
        assert_eq!(out.db().net_slots(doomed).len(), 2);
        assert_eq!(out.db().traces(doomed).count(), 0);
    }

    #[test]
    fn warm_arena_reuse_is_bit_identical() {
        // One arena serving many requests of different grid sizes must
        // not change any result: warm runs are bit-identical to cold
        // runs, and a second warm pass over the same instance is
        // bit-identical to the first (stale scratch never leaks).
        let router = default_router();
        let mut arena = SearchArena::new();
        for (w, h) in [(6u32, 6u32), (11, 9), (5, 8)] {
            let mut b = ProblemBuilder::switchbox(w, h);
            b.net("h").pin_side(PinSide::Left, h / 2).pin_side(PinSide::Right, h / 2);
            b.net("v").pin_side(PinSide::Bottom, w / 2).pin_side(PinSide::Top, w / 2);
            let p = b.build().unwrap();
            let cold = router.route(&p);
            let warm1 = router.route_warm(&p, &mut arena);
            let warm2 = router.route_warm(&p, &mut arena);
            assert_eq!(cold.db().checksum(), warm1.db().checksum(), "{w}x{h} cold vs warm");
            assert_eq!(warm1.db().checksum(), warm2.db().checksum(), "{w}x{h} warm vs warm");
            assert_eq!(cold.failed(), warm1.failed());
        }
    }

    #[test]
    fn order_configurations_all_route() {
        for order in [
            NetOrder::ShortFirst,
            NetOrder::LongFirst,
            NetOrder::PinCountDesc,
            NetOrder::CongestionFirst,
            NetOrder::Declared,
        ] {
            let mut b = ProblemBuilder::switchbox(8, 8);
            b.net("h").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
            b.net("v").pin_side(PinSide::Bottom, 5).pin_side(PinSide::Top, 5);
            let p = b.build().unwrap();
            let cfg = RouterConfig { order, ..RouterConfig::default() };
            let out = MightyRouter::new(cfg).route(&p);
            assert!(out.is_complete(), "order {order:?} failed");
        }
    }
}
