use std::fmt;

/// Counters describing how much work — and how much modification — a
/// routing run needed. The ablation experiments report these directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Connections routed through free space on the first try.
    pub hard_routes: u64,
    /// Connections that needed an interference (soft) path.
    pub soft_routes: u64,
    /// Weak modifications: blocking wiring pushed aside and immediately
    /// re-routed in place.
    pub weak_pushes: u64,
    /// Weak modifications rolled back because a victim could not be
    /// repaired in place (weak-only configurations).
    pub weak_rollbacks: u64,
    /// Strong modifications: victim traces ripped and re-enqueued.
    pub rips: u64,
    /// Re-route tasks processed for previously ripped nets.
    pub reroutes: u64,
    /// Total search nodes settled across all searches.
    pub expanded: u64,
    /// Total queue events processed.
    pub events: u64,
}

impl RouterStats {
    /// Total modification events (weak pushes plus rips).
    pub fn modifications(&self) -> u64 {
        self.weak_pushes + self.rips
    }
}

impl fmt::Display for RouterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hard {}, soft {}, weak {} (rollback {}), rips {}, reroutes {}, expanded {}, events {}",
            self.hard_routes,
            self.soft_routes,
            self.weak_pushes,
            self.weak_rollbacks,
            self.rips,
            self.reroutes,
            self.expanded,
            self.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modifications_sum() {
        let s = RouterStats { weak_pushes: 3, rips: 2, ..Default::default() };
        assert_eq!(s.modifications(), 5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RouterStats::default().to_string().is_empty());
    }
}
