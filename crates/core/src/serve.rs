//! The warm routing service: a resident worker pool with admission
//! control, priorities, deadlines and streamed observation.
//!
//! [`RouteService`] is the engine behind `vroute serve`. Where
//! [`RouteEngine`](crate::RouteEngine) routes one finite batch and
//! returns, the service runs until told to stop and accepts work one
//! request at a time:
//!
//! * **Warm workers** — each worker owns a [`MightyRouter`] and one
//!   [`SearchArena`] for its whole lifetime and routes requests through
//!   [`MightyRouter::route_warm`], so steady-state requests perform no
//!   per-request scratch allocation (the arena grows to the largest
//!   grid seen, then is only reset). Warm results are bit-identical to
//!   cold ones.
//! * **Admission control** — the queue is bounded. [`RouteService::submit`]
//!   never blocks: a full queue rejects with
//!   [`SubmitError::Saturated`], which the protocol layer turns into a
//!   structured `overloaded` response (backpressure, not buffering).
//! * **Priorities** — queued jobs are served highest
//!   [`JobSpec::priority`] first, FIFO within a priority class.
//! * **Deadlines** — a per-job wall-clock budget covering queue wait
//!   *plus* routing. A job that expires while queued is failed without
//!   routing; a result delivered late is disqualified exactly like the
//!   batch engine does ([`RouteError::DeadlineExceeded`]).
//! * **Panic isolation** — a router panic poisons neither the worker
//!   nor the service: the job fails with [`RouteError::Panicked`], the
//!   worker replaces its arena and keeps serving.
//! * **Streamed observation** — jobs with [`JobSpec::stream_events`]
//!   forward every [`RouteObserver`] event to the job's reply channel
//!   before the terminal [`ServiceReply::Done`].
//!
//! Replies are delivered over a caller-supplied [`mpsc::Sender`]; a
//! vanished receiver (client hung up) never stalls a worker.
//!
//! # Examples
//!
//! ```
//! use std::sync::mpsc;
//! use route_model::{PinSide, ProblemBuilder};
//! use mighty::serve::{JobSpec, RouteService, ServiceConfig, ServiceReply};
//!
//! let service = RouteService::start(ServiceConfig::default())?;
//! let (tx, rx) = mpsc::channel();
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! let problem = b.build().unwrap();
//!
//! service.submit(JobSpec::new(7, problem), tx).unwrap();
//! match rx.recv().unwrap() {
//!     ServiceReply::Done(done) => {
//!         assert_eq!(done.tag, 7);
//!         assert!(done.result.unwrap().is_complete());
//!     }
//!     other => panic!("expected Done, got {other:?}"),
//! }
//! service.shutdown();
//! # Ok::<(), mighty::ConfigError>(())
//! ```

use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use route_maze::search::SearchArena;
use route_model::{
    DetailedRouter, NetId, Problem, RouteError, RouteObserver, RouteResult, Routing, SearchKind,
    SearchProbe,
};

use crate::engine::{panic_text, MAX_JOBS};
use crate::{ConfigError, MightyRouter, RouterConfig};

/// Knobs for [`RouteService`]. Prefer [`ServiceConfig::builder`], which
/// validates; [`RouteService::start`] re-checks the invariants either
/// way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Warm worker threads. `0` means one per available hardware thread.
    pub workers: usize,
    /// Bound on jobs waiting in the admission queue (jobs being routed
    /// do not count). Must be at least 1.
    pub queue_capacity: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Configuration of each worker's warm [`MightyRouter`].
    pub router: RouterConfig,
    /// Test/CI fault hook: sleep this long before routing each job,
    /// keeping jobs in flight long enough to kill mid-request.
    pub fault_delay: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            default_deadline: None,
            router: RouterConfig::default(),
            fault_delay: None,
        }
    }
}

impl ServiceConfig {
    /// Starts a validating [`ServiceConfigBuilder`] seeded with the
    /// defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.workers > MAX_JOBS {
            return Err(ConfigError::JobsOverCap { jobs: self.workers, cap: MAX_JOBS });
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        Ok(())
    }
}

/// Validating builder for [`ServiceConfig`], sharing [`ConfigError`]
/// with the router and engine builders.
///
/// # Examples
///
/// ```
/// use mighty::serve::ServiceConfig;
/// use mighty::ConfigError;
///
/// let cfg = ServiceConfig::builder().workers(2).queue_capacity(16).build()?;
/// assert_eq!(cfg.queue_capacity, 16);
/// assert_eq!(
///     ServiceConfig::builder().queue_capacity(0).build(),
///     Err(ConfigError::ZeroQueueCapacity),
/// );
/// # Ok::<(), ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the worker count (`0` = one per hardware thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Sets the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Sets the deadline applied to jobs without their own.
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.cfg.default_deadline = deadline;
        self
    }

    /// Sets the warm router configuration.
    pub fn router(mut self, router: RouterConfig) -> Self {
        self.cfg.router = router;
        self
    }

    /// Sets the test/CI fault delay.
    pub fn fault_delay(mut self, delay: Option<Duration>) -> Self {
        self.cfg.fault_delay = delay;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroQueueCapacity`],
    /// [`ConfigError::JobsOverCap`] or [`ConfigError::ZeroDeadline`].
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One unit of work for the service.
#[derive(Clone)]
pub struct JobSpec {
    /// Caller's correlation tag, echoed in every reply for this job.
    pub tag: u64,
    /// The instance to route.
    pub problem: Problem,
    /// Router override. `None` routes through the worker's warm
    /// [`MightyRouter`]; `Some` routes cold through the given router
    /// (baseline routers have no warm path).
    pub router: Option<Arc<dyn DetailedRouter + Send + Sync>>,
    /// Priority `0..=255`, higher first out of the queue.
    pub priority: u8,
    /// Wall-clock budget covering queue wait plus routing; `None` uses
    /// the service default.
    pub deadline: Option<Duration>,
    /// Forward [`RouteObserver`] events to the reply channel.
    pub stream_events: bool,
}

impl JobSpec {
    /// A job with default priority, no deadline override, the warm
    /// router and no event streaming.
    pub fn new(tag: u64, problem: Problem) -> JobSpec {
        JobSpec { tag, problem, router: None, priority: 4, deadline: None, stream_events: false }
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("tag", &self.tag)
            .field("router", &self.router.as_ref().map(|r| r.name().to_string()))
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("stream_events", &self.stream_events)
            .finish_non_exhaustive()
    }
}

/// One message on a job's reply channel. Every submitted job produces
/// exactly one [`ServiceReply::Done`], preceded by events iff
/// [`JobSpec::stream_events`] was set.
#[derive(Debug)]
pub enum ServiceReply {
    /// A forwarded [`RouteObserver`] event.
    Event {
        /// The job's correlation tag.
        tag: u64,
        /// The event.
        event: route_model::RouteEvent,
    },
    /// The terminal result (boxed: it carries the whole database).
    Done(Box<JobDone>),
}

/// The terminal reply for one job.
#[derive(Debug)]
pub struct JobDone {
    /// The job's correlation tag.
    pub tag: u64,
    /// The routing result, with the same error vocabulary as the batch
    /// engine (deadline, panic, infeasible...).
    pub result: RouteResult,
    /// Time spent waiting in the queue, in milliseconds.
    pub queued_ms: u64,
    /// Total time from admission to completion, in milliseconds.
    pub total_ms: u64,
    /// Index of the worker that served the job.
    pub worker: usize,
}

/// Why [`RouteService::submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load or retry later.
    Saturated {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The service no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated { capacity } => {
                write!(f, "admission queue full ({capacity} waiting)")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A snapshot of the service's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// The admission-queue bound.
    pub queue_capacity: usize,
    /// Jobs waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue has been.
    pub max_queue_depth: usize,
    /// Jobs admitted.
    pub accepted: u64,
    /// Jobs refused by admission control (saturated or shutting down).
    pub rejected: u64,
    /// Terminal replies delivered (every admitted job gets exactly one).
    pub completed: u64,
    /// Jobs that blew their deadline (queued or routed too long).
    pub expired: u64,
    /// Jobs whose router panicked.
    pub panicked: u64,
}

struct QueuedJob {
    seq: u64,
    admitted: Instant,
    spec: JobSpec,
    reply: mpsc::Sender<ServiceReply>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO (smaller seq first).
        self.spec.priority.cmp(&other.spec.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct Counters {
    accepted: u64,
    rejected: u64,
    completed: u64,
    expired: u64,
    panicked: u64,
    max_queue_depth: usize,
}

struct State {
    queue: BinaryHeap<QueuedJob>,
    shutting_down: bool,
    counters: Counters,
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
    default_deadline: Option<Duration>,
    fault_delay: Option<Duration>,
    router: RouterConfig,
}

/// The resident routing service. See the [module docs](self) for the
/// contract; construct with [`RouteService::start`].
pub struct RouteService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    capacity: usize,
    seq: AtomicU64,
}

impl fmt::Debug for RouteService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteService")
            .field("workers", &self.worker_count)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl RouteService {
    /// Validates `config` and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`]s as
    /// [`ServiceConfigBuilder::build`].
    pub fn start(config: ServiceConfig) -> Result<RouteService, ConfigError> {
        config.validate()?;
        let worker_count = if config.workers == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                shutting_down: false,
                counters: Counters::default(),
            }),
            available: Condvar::new(),
            default_deadline: config.default_deadline,
            fault_delay: config.fault_delay,
            router: config.router,
        });
        let workers = (0..worker_count)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared, idx))
            })
            .collect();
        Ok(RouteService {
            shared,
            workers: Mutex::new(workers),
            worker_count,
            capacity: config.queue_capacity,
            seq: AtomicU64::new(0),
        })
    }

    /// Submits a job. Never blocks: the queue either admits the job or
    /// the call fails immediately (backpressure). All replies for the
    /// job — streamed events, then exactly one [`ServiceReply::Done`] —
    /// are delivered on `reply`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after
    /// [`begin_shutdown`](RouteService::begin_shutdown).
    pub fn submit(
        &self,
        spec: JobSpec,
        reply: mpsc::Sender<ServiceReply>,
    ) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("service state mutex");
        if state.shutting_down {
            state.counters.rejected += 1;
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.capacity {
            state.counters.rejected += 1;
            return Err(SubmitError::Saturated { capacity: self.capacity });
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        state.queue.push(QueuedJob { seq, admitted: Instant::now(), spec, reply });
        state.counters.accepted += 1;
        let depth = state.queue.len();
        state.counters.max_queue_depth = state.counters.max_queue_depth.max(depth);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("service state mutex");
        ServiceStats {
            workers: self.worker_count,
            queue_capacity: self.capacity,
            queue_depth: state.queue.len(),
            max_queue_depth: state.counters.max_queue_depth,
            accepted: state.counters.accepted,
            rejected: state.counters.rejected,
            completed: state.counters.completed,
            expired: state.counters.expired,
            panicked: state.counters.panicked,
        }
    }

    /// Stops admission. Already-queued jobs still drain; workers exit
    /// once the queue is empty. Idempotent.
    pub fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().expect("service state mutex");
        state.shutting_down = true;
        drop(state);
        self.shared.available.notify_all();
    }

    /// Graceful shutdown: stops admission, drains the queue, joins
    /// every worker, and returns the final counters.
    pub fn shutdown(&self) -> ServiceStats {
        self.begin_shutdown();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("service worker list"));
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for RouteService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let router = MightyRouter::new(shared.router);
    let mut arena = SearchArena::with_frontier(shared.router.frontier);
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service state mutex");
            loop {
                if let Some(job) = state.queue.pop() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.available.wait(state).expect("service state mutex");
            }
        };
        serve_job(shared, &router, &mut arena, worker, job);
    }
}

fn serve_job(
    shared: &Shared,
    router: &MightyRouter,
    arena: &mut SearchArena,
    worker: usize,
    job: QueuedJob,
) {
    let QueuedJob { admitted, spec, reply, .. } = job;
    let budget = spec.deadline.or(shared.default_deadline);
    let queued = admitted.elapsed();

    // A job that expired while waiting is failed without routing it:
    // burning a worker on a result nobody may use starves the live jobs
    // behind it.
    if let Some(budget) = budget {
        if queued > budget {
            let done = JobDone {
                tag: spec.tag,
                result: Err(RouteError::DeadlineExceeded {
                    elapsed_ms: queued.as_millis() as u64,
                    budget_ms: budget.as_millis() as u64,
                }),
                queued_ms: queued.as_millis() as u64,
                total_ms: queued.as_millis() as u64,
                worker,
            };
            let _ = reply.send(ServiceReply::Done(Box::new(done)));
            let mut state = shared.state.lock().expect("service state mutex");
            state.counters.completed += 1;
            state.counters.expired += 1;
            return;
        }
    }

    if let Some(delay) = shared.fault_delay {
        thread::sleep(delay);
    }

    let mut forwarder =
        Forwarder { tag: spec.tag, tx: if spec.stream_events { Some(&reply) } else { None } };
    let caught = catch_unwind(AssertUnwindSafe(|| match &spec.router {
        Some(custom) => {
            if spec.stream_events {
                custom.route_observed(&spec.problem, &mut forwarder)
            } else {
                custom.route(&spec.problem)
            }
        }
        None => {
            let out = if spec.stream_events {
                router.route_warm_observed(&spec.problem, arena, &mut forwarder)
            } else {
                router.route_warm(&spec.problem, arena)
            };
            let failed = out.failed().to_vec();
            Ok(Routing { db: out.into_db(), failed })
        }
    }));
    let (result, did_panic) = match caught {
        Ok(result) => (result, false),
        Err(payload) => (Err(RouteError::Panicked { message: panic_text(payload.as_ref()) }), true),
    };
    if did_panic {
        // The unwound search may have left the arena mid-flight; a
        // fresh one is cheap and provably clean.
        *arena = SearchArena::with_frontier(arena.frontier_kind());
    }

    let total = admitted.elapsed();
    let result = match (budget, result) {
        (Some(budget), Ok(_)) if total > budget => Err(RouteError::DeadlineExceeded {
            elapsed_ms: total.as_millis() as u64,
            budget_ms: budget.as_millis() as u64,
        }),
        (_, r) => r,
    };

    let expired = matches!(result, Err(RouteError::DeadlineExceeded { .. }));
    let done = JobDone {
        tag: spec.tag,
        result,
        queued_ms: queued.as_millis() as u64,
        total_ms: total.as_millis() as u64,
        worker,
    };
    let _ = reply.send(ServiceReply::Done(Box::new(done)));
    let mut state = shared.state.lock().expect("service state mutex");
    state.counters.completed += 1;
    if expired {
        state.counters.expired += 1;
    }
    if did_panic {
        state.counters.panicked += 1;
    }
}

/// Forwards observer callbacks to the job's reply channel as
/// [`ServiceReply::Event`]s. A `None` sink (streaming off) makes every
/// callback a no-op; a vanished receiver is ignored — the routing still
/// completes and is journaled/accounted normally.
struct Forwarder<'a> {
    tag: u64,
    tx: Option<&'a mpsc::Sender<ServiceReply>>,
}

impl Forwarder<'_> {
    fn send(&mut self, event: route_model::RouteEvent) {
        if let Some(tx) = self.tx {
            let _ = tx.send(ServiceReply::Event { tag: self.tag, event });
        }
    }
}

impl RouteObserver for Forwarder<'_> {
    fn on_net_scheduled(&mut self, net: NetId) {
        self.send(route_model::RouteEvent::NetScheduled { net });
    }

    fn on_search_done(&mut self, net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.send(route_model::RouteEvent::SearchDone { net, kind, probe });
    }

    fn on_weak_modification(&mut self, net: NetId, victim: NetId) {
        self.send(route_model::RouteEvent::WeakModification { net, victim });
    }

    fn on_strong_ripup(&mut self, net: NetId, victim: NetId, rip_count: u32) {
        self.send(route_model::RouteEvent::StrongRipup { net, victim, rip_count });
    }

    fn on_penalty_escalation(&mut self, victim: NetId, penalty: u64) {
        self.send(route_model::RouteEvent::PenaltyEscalation { victim, penalty });
    }

    fn on_net_committed(&mut self, net: NetId) {
        self.send(route_model::RouteEvent::NetCommitted { net });
    }

    fn on_net_failed(&mut self, net: NetId) {
        self.send(route_model::RouteEvent::NetFailed { net });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, RouteEvent};

    fn switchbox(w: u32, h: u32, seed: u32) -> Problem {
        let mut b = ProblemBuilder::switchbox(w, h);
        b.net("a").pin_side(PinSide::Left, seed % h).pin_side(PinSide::Right, (seed + 2) % h);
        b.net("b").pin_side(PinSide::Bottom, seed % w).pin_side(PinSide::Top, (seed + 3) % w);
        b.build().unwrap()
    }

    fn start(cfg: ServiceConfig) -> RouteService {
        RouteService::start(cfg).expect("valid test config")
    }

    fn recv_done(rx: &mpsc::Receiver<ServiceReply>) -> Box<JobDone> {
        loop {
            match rx.recv().expect("reply channel open") {
                ServiceReply::Done(done) => return done,
                ServiceReply::Event { .. } => {}
            }
        }
    }

    #[test]
    fn service_results_match_direct_routing() {
        let service = start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let (tx, rx) = mpsc::channel();
        let problems: Vec<Problem> = (0..6).map(|i| switchbox(8, 8, i)).collect();
        for (i, p) in problems.iter().enumerate() {
            service.submit(JobSpec::new(i as u64, p.clone()), tx.clone()).unwrap();
        }
        let mut sums = vec![0u64; problems.len()];
        for _ in 0..problems.len() {
            let done = recv_done(&rx);
            sums[done.tag as usize] = done.result.unwrap().db.checksum();
        }
        let router = MightyRouter::new(RouterConfig::default());
        for (p, sum) in problems.iter().zip(&sums) {
            assert_eq!(router.route(p).db().checksum(), *sum);
        }
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn saturated_queue_rejects_instead_of_buffering() {
        let service = start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            fault_delay: Some(Duration::from_millis(150)),
            ..ServiceConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        // First job: give the worker a moment to claim it so it is in
        // flight, not queued.
        service.submit(JobSpec::new(0, switchbox(6, 6, 0)), tx.clone()).unwrap();
        thread::sleep(Duration::from_millis(50));
        // Second job fills the queue; third must bounce.
        service.submit(JobSpec::new(1, switchbox(6, 6, 1)), tx.clone()).unwrap();
        let err = service.submit(JobSpec::new(2, switchbox(6, 6, 2)), tx.clone()).unwrap_err();
        assert_eq!(err, SubmitError::Saturated { capacity: 1 });
        assert!(err.to_string().contains("full"));
        for _ in 0..2 {
            assert!(recv_done(&rx).result.is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.max_queue_depth, 1);
    }

    #[test]
    fn priorities_order_the_queue() {
        let service = start(ServiceConfig {
            workers: 1,
            fault_delay: Some(Duration::from_millis(60)),
            ..ServiceConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        // Blocker occupies the only worker; then a low- and a
        // high-priority job queue up.
        service.submit(JobSpec::new(0, switchbox(6, 6, 0)), tx.clone()).unwrap();
        thread::sleep(Duration::from_millis(20));
        let low = JobSpec { priority: 1, ..JobSpec::new(1, switchbox(6, 6, 1)) };
        let high = JobSpec { priority: 9, ..JobSpec::new(2, switchbox(6, 6, 2)) };
        service.submit(low, tx.clone()).unwrap();
        service.submit(high, tx.clone()).unwrap();
        let order: Vec<u64> = (0..3).map(|_| recv_done(&rx).tag).collect();
        assert_eq!(order, vec![0, 2, 1], "high priority must overtake FIFO");
        service.shutdown();
    }

    #[test]
    fn deadlines_expire_queued_and_slow_jobs() {
        let service = start(ServiceConfig {
            workers: 1,
            fault_delay: Some(Duration::from_millis(80)),
            ..ServiceConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        // The first job routes (80 ms fault delay) but carries a 10 ms
        // budget: disqualified after routing.
        let slow = JobSpec {
            deadline: Some(Duration::from_millis(10)),
            ..JobSpec::new(0, switchbox(6, 6, 0))
        };
        // The second waits >80 ms in the queue against a 20 ms budget:
        // expired at dequeue, never routed.
        let stale = JobSpec {
            deadline: Some(Duration::from_millis(20)),
            ..JobSpec::new(1, switchbox(6, 6, 1))
        };
        service.submit(slow, tx.clone()).unwrap();
        service.submit(stale, tx.clone()).unwrap();
        for _ in 0..2 {
            let done = recv_done(&rx);
            assert!(
                matches!(done.result, Err(RouteError::DeadlineExceeded { .. })),
                "tag {} should be disqualified, got {:?}",
                done.tag,
                done.result
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.expired, 2);
    }

    struct PanicRouter;
    impl DetailedRouter for PanicRouter {
        fn name(&self) -> &str {
            "panic"
        }
        fn route(&self, _problem: &Problem) -> RouteResult {
            panic!("boom");
        }
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_worker() {
        let service = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (tx, rx) = mpsc::channel();
        let bad =
            JobSpec { router: Some(Arc::new(PanicRouter)), ..JobSpec::new(0, switchbox(6, 6, 0)) };
        service.submit(bad, tx.clone()).unwrap();
        let done = recv_done(&rx);
        match done.result {
            Err(RouteError::Panicked { message }) => assert!(message.contains("boom")),
            other => panic!("expected panic error, got {other:?}"),
        }
        // The same (only) worker must still serve the next job.
        service.submit(JobSpec::new(1, switchbox(6, 6, 1)), tx.clone()).unwrap();
        assert!(recv_done(&rx).result.is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn streamed_events_precede_done_and_replay_consistently() {
        let service = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (tx, rx) = mpsc::channel();
        let spec = JobSpec { stream_events: true, ..JobSpec::new(5, switchbox(8, 8, 0)) };
        service.submit(spec, tx.clone()).unwrap();
        let mut events: Vec<RouteEvent> = Vec::new();
        let done = loop {
            match rx.recv().unwrap() {
                ServiceReply::Event { tag, event } => {
                    assert_eq!(tag, 5);
                    events.push(event);
                }
                ServiceReply::Done(done) => break done,
            }
        };
        let routing = done.result.unwrap();
        assert!(routing.is_complete());
        let committed =
            events.iter().filter(|e| matches!(e, RouteEvent::NetCommitted { .. })).count();
        assert_eq!(committed, 2, "both nets commit exactly once: {events:?}");
        // Events never trail the terminal reply.
        assert!(rx.try_recv().is_err());
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new() {
        let service = start(ServiceConfig {
            workers: 1,
            fault_delay: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            service.submit(JobSpec::new(i, switchbox(6, 6, i as u32)), tx.clone()).unwrap();
        }
        service.begin_shutdown();
        let err = service.submit(JobSpec::new(9, switchbox(6, 6, 0)), tx.clone()).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4, "queued jobs drain before workers exit");
        for _ in 0..4 {
            assert!(recv_done(&rx).result.is_ok());
        }
    }

    #[test]
    fn start_rejects_invalid_configs() {
        assert_eq!(
            RouteService::start(ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() })
                .err(),
            Some(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            ServiceConfig::builder().workers(MAX_JOBS + 1).build(),
            Err(ConfigError::JobsOverCap { jobs: MAX_JOBS + 1, cap: MAX_JOBS })
        );
        assert_eq!(
            ServiceConfig::builder().default_deadline(Some(Duration::ZERO)).build(),
            Err(ConfigError::ZeroDeadline)
        );
    }
}
