//! Parallel batch routing engine.
//!
//! [`RouteEngine`] routes many [`Problem`]s through any
//! [`DetailedRouter`] concurrently on a scoped [`std::thread`] pool —
//! no external dependencies. The contract:
//!
//! * **Deterministic ordering** — `results[i]` always belongs to
//!   `problems[i]`, no matter how many workers ran or in which order
//!   instances finished.
//! * **Panic isolation** — a router panic on one instance is caught and
//!   reported as [`RouteError::Panicked`] in that instance's slot; the
//!   rest of the batch routes normally.
//! * **Per-instance budgets** — an optional wall-clock deadline
//!   disqualifies instances that finish too late
//!   ([`RouteError::DeadlineExceeded`]). Attempt/event budgets are the
//!   router's own business (see
//!   [`RouterConfig`](crate::RouterConfig) for the rip-up router); the
//!   engine measures and reports per-instance time either way.
//! * **Aggregate accounting** — [`EngineStats`] totals completions,
//!   failures, wirelength, vias and wall-clock/busy time for the batch.
//!
//! # Examples
//!
//! ```
//! use route_model::{PinSide, ProblemBuilder};
//! use mighty::engine::{EngineConfig, RouteEngine};
//! use mighty::{MightyRouter, RouterConfig};
//!
//! let problems: Vec<_> = (0..4)
//!     .map(|i| {
//!         let mut b = ProblemBuilder::switchbox(8, 8);
//!         b.net("a").pin_side(PinSide::Left, 1 + i).pin_side(PinSide::Right, 6 - i);
//!         b.build().unwrap()
//!     })
//!     .collect();
//!
//! let router = MightyRouter::new(RouterConfig::default());
//! let engine = RouteEngine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
//! let batch = engine.route_batch(&router, &problems);
//! assert_eq!(batch.results.len(), 4);
//! assert_eq!(batch.stats.complete, 4);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use route_model::{
    DetailedRouter, EventLog, Histogram, MetricsRecorder, Problem, RouteError, RouteEvent,
    RouteResult, RouterStats,
};

use crate::journal::{JournalEntry, RunJournal};
use crate::recover::{InstanceStatus, RecoveryPath, SupervisedOutcome, Supervisor};
use crate::ConfigError;

/// How much the engine observes of each instance's routing run.
///
/// Observation is strictly additive: the routed databases are
/// bit-identical across modes (the [`route_model::RouteObserver`]
/// contract); only the reporting changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ObserveMode {
    /// No observers attached — the zero-cost default.
    #[default]
    Off,
    /// One [`MetricsRecorder`] per instance, merged into
    /// [`BatchOutcome::observation`] and [`EngineStats::router`].
    Metrics,
    /// One [`EventLog`] per instance: full event sequences are kept
    /// (in input order) *and* folded into the same aggregate metrics.
    Trace,
}

/// Knobs for [`RouteEngine`].
///
/// The default is `0` jobs (one worker per available hardware thread),
/// no deadline, and observation off.
///
/// Prefer [`EngineConfig::builder`] over filling fields directly: the
/// builder rejects configurations that would silently misbehave (a zero
/// deadline disqualifying every instance, a runaway thread count),
/// mirroring [`RouterConfig::builder`](crate::RouterConfig::builder)
/// with the same shared [`ConfigError`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `0` means one per available hardware thread.
    pub jobs: usize,
    /// Wall-clock budget per instance. A result delivered after the
    /// deadline is replaced by [`RouteError::DeadlineExceeded`]; errors
    /// keep their original diagnosis. `None` disables the check.
    pub deadline: Option<Duration>,
    /// Per-instance observation attached by the workers.
    pub observe: ObserveMode,
    /// Run the static feasibility analysis (`route-analyze`) before
    /// routing each instance. Instances with an infeasibility
    /// certificate are skipped with [`RouteError::Infeasible`] instead
    /// of burning the router's budget on a provably lost cause.
    pub precheck: bool,
}

/// Hard cap on explicitly requested worker threads — far above any sane
/// configuration, low enough to catch a units mistake (milliseconds in
/// the jobs field) before it spawns thousands of threads.
pub const MAX_JOBS: usize = 1024;

impl EngineConfig {
    /// Starts a validating [`EngineConfigBuilder`] seeded with the
    /// defaults. See the type-level docs for why this is preferred over
    /// struct-literal construction.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Validating builder for [`EngineConfig`] — the supported construction
/// path, obtained from [`EngineConfig::builder`]. Shares [`ConfigError`]
/// with [`RouterConfig::builder`](crate::RouterConfig::builder).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mighty::{ConfigError, EngineConfig, ObserveMode};
///
/// let cfg = EngineConfig::builder()
///     .jobs(4)
///     .deadline(Some(Duration::from_millis(200)))
///     .observe(ObserveMode::Metrics)
///     .build()?;
/// assert_eq!(cfg.jobs, 4);
///
/// assert_eq!(
///     EngineConfig::builder().deadline(Some(Duration::ZERO)).build(),
///     Err(ConfigError::ZeroDeadline),
/// );
/// # Ok::<(), ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the worker-thread count (`0` = one per hardware thread).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.cfg.jobs = jobs;
        self
    }

    /// Sets the per-instance wall-clock budget (`None` disables).
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.cfg.deadline = deadline;
        self
    }

    /// Sets the per-instance wall-clock budget in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.cfg.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Sets the observation mode.
    pub fn observe(mut self, observe: ObserveMode) -> Self {
        self.cfg.observe = observe;
        self
    }

    /// Enables or disables the pre-route feasibility analysis.
    pub fn precheck(mut self, precheck: bool) -> Self {
        self.cfg.precheck = precheck;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDeadline`] for a zero deadline and
    /// [`ConfigError::JobsOverCap`] for a job count beyond [`MAX_JOBS`].
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        if self.cfg.deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        if self.cfg.jobs > MAX_JOBS {
            return Err(ConfigError::JobsOverCap { jobs: self.cfg.jobs, cap: MAX_JOBS });
        }
        Ok(self.cfg)
    }
}

/// Aggregate accounting for one [`RouteEngine::route_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instances in the batch.
    pub instances: usize,
    /// Instances routed with every net connected.
    pub complete: usize,
    /// Instances routed legally but with at least one failed net.
    pub incomplete: usize,
    /// Instances that returned a [`RouteError`] other than a panic, a
    /// blown deadline, or an infeasibility proof.
    pub errored: usize,
    /// Instances skipped because [`EngineConfig::precheck`] proved them
    /// unroutable before the router ran.
    pub infeasible: usize,
    /// Instances whose router panicked.
    pub panicked: usize,
    /// Instances disqualified by the per-instance deadline.
    pub timed_out: usize,
    /// Total unconnected nets across all routed instances.
    pub failed_nets: usize,
    /// Total wirelength across all routed instances.
    pub wirelength: u64,
    /// Total vias across all routed instances.
    pub vias: u64,
    /// Wall-clock time for the whole batch, in milliseconds.
    pub batch_ms: u64,
    /// Sum of per-instance routing times, in milliseconds. The ratio
    /// `busy_ms / batch_ms` approximates achieved parallelism.
    pub busy_ms: u64,
    /// The slowest single instance, in milliseconds.
    pub max_instance_ms: u64,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Supervised batches only: instances completed by a retry of the
    /// primary router (see [`crate::recover::RetryPolicy`]).
    pub retried: usize,
    /// Supervised batches only: instances completed by a fallback
    /// router (see [`crate::recover::FallbackChain`]).
    pub fell_back: usize,
    /// Supervised batches only: instances whose terminal failure was
    /// softened into a salvaged partial routing. Never counted in
    /// [`complete`](EngineStats::complete).
    pub salvaged: usize,
    /// Supervised batches only: instances skipped because a resumed
    /// run journal already held their completed record.
    pub resumed_skips: usize,
    /// Router work counters summed over all observed instances.
    /// Stays at zero when [`EngineConfig::observe`] is
    /// [`ObserveMode::Off`] — observation is what sources it.
    pub router: RouterStats,
}

/// Per-batch observation data, present when [`EngineConfig::observe`]
/// is not [`ObserveMode::Off`].
///
/// Instances that panicked contribute nothing (their observer died with
/// the worker closure); timed-out instances still contribute — the work
/// was done, even if the result was disqualified.
#[derive(Debug, Clone)]
pub struct BatchObservation {
    /// Every instance's recorder merged into one.
    pub metrics: MetricsRecorder,
    /// Per-instance routing latency, in milliseconds.
    pub latency: Histogram,
    /// Per-instance event sequences, in input order ([`ObserveMode::Trace`]
    /// only — empty otherwise; a panicked instance leaves an empty slot).
    pub events: Vec<Vec<RouteEvent>>,
}

/// What [`RouteEngine::route_batch`] returns.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-instance results, in input order: `results[i]` routes
    /// `problems[i]`.
    pub results: Vec<RouteResult>,
    /// Per-instance routing time, in input order.
    pub timings: Vec<Duration>,
    /// Aggregate accounting.
    pub stats: EngineStats,
    /// Merged per-instance observation; `None` when
    /// [`EngineConfig::observe`] is [`ObserveMode::Off`].
    pub observation: Option<BatchObservation>,
}

/// Routes batches of problems concurrently through any
/// [`DetailedRouter`]. See the [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteEngine {
    config: EngineConfig,
}

impl RouteEngine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        RouteEngine { config }
    }

    /// Shorthand for an engine with `jobs` workers and no deadline.
    pub fn with_jobs(jobs: usize) -> Self {
        RouteEngine::new(EngineConfig { jobs, ..EngineConfig::default() })
    }

    /// The worker count the engine will use: the configured `jobs`, or
    /// one per available hardware thread when configured as `0`.
    pub fn jobs(&self) -> usize {
        if self.config.jobs == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.jobs
        }
    }

    /// Routes every problem in the batch, fanning instances out over the
    /// worker pool. Workers claim instances from a shared counter, so a
    /// slow instance never stalls the others; results are delivered in
    /// input order regardless.
    pub fn route_batch<R: DetailedRouter + Sync + ?Sized>(
        &self,
        router: &R,
        problems: &[Problem],
    ) -> BatchOutcome {
        let started = Instant::now();
        let n = problems.len();
        let jobs = self.jobs().min(n).max(1);
        let deadline = self.config.deadline;
        let observe = self.config.observe;
        let precheck = self.config.precheck;

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Duration, RouteResult, Observed)>();
        thread::scope(|s| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    if precheck {
                        let feasibility = route_analyze::analyze_problem(&problems[i]);
                        if let Some(cert) = feasibility.certificates().first() {
                            let err = Err(RouteError::Infeasible { reason: cert.summary() });
                            if tx.send((i, t0.elapsed(), err, Observed::None)).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                    let (result, observed) = catch_unwind(AssertUnwindSafe(|| match observe {
                        ObserveMode::Off => (router.route(&problems[i]), Observed::None),
                        ObserveMode::Metrics => {
                            let mut rec = Box::new(MetricsRecorder::new());
                            let r = router.route_observed(&problems[i], rec.as_mut());
                            (r, Observed::Metrics(rec))
                        }
                        ObserveMode::Trace => {
                            let mut log = EventLog::new();
                            let r = router.route_observed(&problems[i], &mut log);
                            (r, Observed::Events(log.into_events()))
                        }
                    }))
                    .unwrap_or_else(|payload| {
                        (
                            Err(RouteError::Panicked { message: panic_text(payload.as_ref()) }),
                            Observed::None,
                        )
                    });
                    let took = t0.elapsed();
                    let result = match (deadline, result) {
                        (Some(budget), Ok(_)) if took > budget => {
                            Err(RouteError::DeadlineExceeded {
                                elapsed_ms: took.as_millis() as u64,
                                budget_ms: budget.as_millis() as u64,
                            })
                        }
                        (_, r) => r,
                    };
                    if tx.send((i, took, result, observed)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });

        let mut slots: Vec<Option<RouteResult>> = (0..n).map(|_| None).collect();
        let mut observed_slots: Vec<Observed> = (0..n).map(|_| Observed::None).collect();
        let mut timings = vec![Duration::ZERO; n];
        for (i, took, result, observed) in rx {
            slots[i] = Some(result);
            observed_slots[i] = observed;
            timings[i] = took;
        }
        let results: Vec<RouteResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every claimed instance reports exactly once"))
            .collect();

        let mut stats = EngineStats {
            instances: n,
            jobs,
            batch_ms: started.elapsed().as_millis() as u64,
            ..EngineStats::default()
        };
        for (result, took) in results.iter().zip(&timings) {
            let ms = took.as_millis() as u64;
            stats.busy_ms += ms;
            stats.max_instance_ms = stats.max_instance_ms.max(ms);
            match result {
                Ok(routing) => {
                    if routing.is_complete() {
                        stats.complete += 1;
                    } else {
                        stats.incomplete += 1;
                    }
                    stats.failed_nets += routing.failed.len();
                    let db = routing.db.stats();
                    stats.wirelength += db.wirelength;
                    stats.vias += db.vias;
                }
                Err(RouteError::Panicked { .. }) => stats.panicked += 1,
                Err(RouteError::DeadlineExceeded { .. }) => stats.timed_out += 1,
                Err(RouteError::Infeasible { .. }) => stats.infeasible += 1,
                Err(_) => stats.errored += 1,
            }
        }

        // Merge per-instance observation in input order — deterministic
        // regardless of worker count or completion order.
        let observation = if observe == ObserveMode::Off {
            None
        } else {
            let mut metrics = MetricsRecorder::new();
            let mut latency = Histogram::new();
            let mut events: Vec<Vec<RouteEvent>> = Vec::new();
            for (observed, took) in observed_slots.into_iter().zip(&timings) {
                latency.record(took.as_millis() as u64);
                match observed {
                    Observed::None => {
                        if observe == ObserveMode::Trace {
                            events.push(Vec::new());
                        }
                    }
                    Observed::Metrics(rec) => metrics.merge(&rec),
                    Observed::Events(instance_events) => {
                        let mut rec = MetricsRecorder::new();
                        for e in &instance_events {
                            e.replay(&mut rec);
                        }
                        metrics.merge(&rec);
                        events.push(instance_events);
                    }
                }
            }
            stats.router = *metrics.router();
            Some(BatchObservation { metrics, latency, events })
        };

        BatchOutcome { results, timings, stats, observation }
    }
}

/// What [`RouteEngine::route_batch_supervised`] returns.
#[derive(Debug)]
pub struct SupervisedBatch {
    /// Per-instance outcomes, in input order. `None` marks an instance
    /// skipped by journal resume — its result lives only in `entries`.
    pub outcomes: Vec<Option<SupervisedOutcome>>,
    /// Per-instance journal-shaped summaries, in input order — present
    /// for every instance (resumed ones replay their stored record),
    /// so reports never depend on whether a run was resumed.
    pub entries: Vec<JournalEntry>,
    /// Per-instance routing time, in input order (zero for resumed
    /// skips).
    pub timings: Vec<Duration>,
    /// Aggregate accounting, including the recovery counters
    /// ([`EngineStats::retried`], [`EngineStats::fell_back`],
    /// [`EngineStats::salvaged`], [`EngineStats::resumed_skips`]).
    pub stats: EngineStats,
}

impl RouteEngine {
    /// Routes every problem under supervision: each instance runs
    /// through `supervisor`'s retry/fallback/salvage chain instead of a
    /// single attempt, and (optionally) streams its outcome through a
    /// crash-safe [`RunJournal`].
    ///
    /// Differences from [`route_batch`](RouteEngine::route_batch):
    ///
    /// * [`EngineConfig::deadline`] bounds each *attempt*, and a
    ///   deadline-disqualified routing still feeds the salvage
    ///   snapshot.
    /// * [`EngineConfig::observe`] is ignored — supervision re-runs
    ///   instances, so per-attempt observation would not merge into a
    ///   meaningful batch trace.
    /// * With a journal opened via [`RunJournal::resume`], instances
    ///   with a valid completed record are skipped and their stored
    ///   entries replayed verbatim ([`EngineStats::resumed_skips`]).
    ///
    /// Journal write failures never abort the batch; they latch inside
    /// the journal for the caller to check
    /// ([`RunJournal::take_error`]).
    pub fn route_batch_supervised(
        &self,
        supervisor: &Supervisor,
        problems: &[Problem],
        journal: Option<&RunJournal>,
    ) -> SupervisedBatch {
        let started = Instant::now();
        let n = problems.len();
        let jobs = self.jobs().min(n).max(1);
        let deadline = self.config.deadline;
        let precheck = self.config.precheck;

        let next = AtomicUsize::new(0);
        type Report = (usize, Duration, JournalEntry, Option<SupervisedOutcome>);
        let (tx, rx) = mpsc::channel::<Report>();
        thread::scope(|s| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if let Some(entry) = journal.and_then(|j| j.replay(i)) {
                        if tx.send((i, Duration::ZERO, entry.clone(), None)).is_err() {
                            break;
                        }
                        continue;
                    }
                    let (label, fingerprint) = journal
                        .and_then(|j| j.key(i).cloned())
                        .unwrap_or_else(|| (format!("instance-{i}"), 0));
                    let t0 = Instant::now();
                    let outcome = if precheck {
                        match route_analyze::analyze_problem(&problems[i]).certificates().first() {
                            Some(cert) => SupervisedOutcome::infeasible(cert.summary()),
                            None => {
                                if let Some(j) = journal {
                                    j.begin(i);
                                }
                                supervisor.route_supervised(&problems[i], i, deadline)
                            }
                        }
                    } else {
                        if let Some(j) = journal {
                            j.begin(i);
                        }
                        supervisor.route_supervised(&problems[i], i, deadline)
                    };
                    let entry = JournalEntry::from_outcome(i, &label, fingerprint, &outcome);
                    if let Some(j) = journal {
                        j.finish(&entry);
                    }
                    if tx.send((i, t0.elapsed(), entry, Some(outcome))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });

        let mut entry_slots: Vec<Option<JournalEntry>> = (0..n).map(|_| None).collect();
        let mut outcomes: Vec<Option<SupervisedOutcome>> = (0..n).map(|_| None).collect();
        let mut timings = vec![Duration::ZERO; n];
        let mut resumed_flags = vec![false; n];
        for (i, took, entry, outcome) in rx {
            resumed_flags[i] = outcome.is_none();
            entry_slots[i] = Some(entry);
            outcomes[i] = outcome;
            timings[i] = took;
        }
        let entries: Vec<JournalEntry> = entry_slots
            .into_iter()
            .map(|slot| slot.expect("every claimed instance reports exactly once"))
            .collect();

        let mut stats = EngineStats {
            instances: n,
            jobs,
            batch_ms: started.elapsed().as_millis() as u64,
            ..EngineStats::default()
        };
        for ((entry, took), resumed) in entries.iter().zip(&timings).zip(&resumed_flags) {
            let ms = took.as_millis() as u64;
            stats.busy_ms += ms;
            stats.max_instance_ms = stats.max_instance_ms.max(ms);
            if *resumed {
                stats.resumed_skips += 1;
            }
            match entry.status {
                InstanceStatus::Complete => stats.complete += 1,
                InstanceStatus::Salvaged => stats.salvaged += 1,
                InstanceStatus::Infeasible => stats.infeasible += 1,
                InstanceStatus::Panicked => stats.panicked += 1,
                InstanceStatus::TimedOut => stats.timed_out += 1,
                InstanceStatus::Errored => stats.errored += 1,
            }
            match entry.path {
                RecoveryPath::Retried { .. } => stats.retried += 1,
                RecoveryPath::FellBack { .. } => stats.fell_back += 1,
                _ => {}
            }
            stats.failed_nets += entry.failed_nets;
            stats.wirelength += entry.wire;
            stats.vias += entry.vias;
        }

        SupervisedBatch { outcomes, entries, timings, stats }
    }
}

/// Per-instance observation payload shipped back from a worker. The
/// recorder is boxed: it holds inline histograms, and the enum would
/// otherwise be recorder-sized in every slot.
enum Observed {
    None,
    Metrics(Box<MetricsRecorder>),
    Events(Vec<RouteEvent>),
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
