//! Parallel batch routing engine.
//!
//! [`RouteEngine`] routes many [`Problem`]s through any
//! [`DetailedRouter`] concurrently on a scoped [`std::thread`] pool —
//! no external dependencies. The contract:
//!
//! * **Deterministic ordering** — `results[i]` always belongs to
//!   `problems[i]`, no matter how many workers ran or in which order
//!   instances finished.
//! * **Panic isolation** — a router panic on one instance is caught and
//!   reported as [`RouteError::Panicked`] in that instance's slot; the
//!   rest of the batch routes normally.
//! * **Per-instance budgets** — an optional wall-clock deadline
//!   disqualifies instances that finish too late
//!   ([`RouteError::DeadlineExceeded`]). Attempt/event budgets are the
//!   router's own business (see
//!   [`RouterConfig`](crate::RouterConfig) for the rip-up router); the
//!   engine measures and reports per-instance time either way.
//! * **Aggregate accounting** — [`EngineStats`] totals completions,
//!   failures, wirelength, vias and wall-clock/busy time for the batch.
//!
//! # Examples
//!
//! ```
//! use route_model::{PinSide, ProblemBuilder};
//! use mighty::engine::{EngineConfig, RouteEngine};
//! use mighty::{MightyRouter, RouterConfig};
//!
//! let problems: Vec<_> = (0..4)
//!     .map(|i| {
//!         let mut b = ProblemBuilder::switchbox(8, 8);
//!         b.net("a").pin_side(PinSide::Left, 1 + i).pin_side(PinSide::Right, 6 - i);
//!         b.build().unwrap()
//!     })
//!     .collect();
//!
//! let router = MightyRouter::new(RouterConfig::default());
//! let engine = RouteEngine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
//! let batch = engine.route_batch(&router, &problems);
//! assert_eq!(batch.results.len(), 4);
//! assert_eq!(batch.stats.complete, 4);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use route_model::{DetailedRouter, Problem, RouteError, RouteResult};

/// Knobs for [`RouteEngine`].
///
/// The default is `0` jobs (one worker per available hardware thread)
/// and no deadline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `0` means one per available hardware thread.
    pub jobs: usize,
    /// Wall-clock budget per instance. A result delivered after the
    /// deadline is replaced by [`RouteError::DeadlineExceeded`]; errors
    /// keep their original diagnosis. `None` disables the check.
    pub deadline: Option<Duration>,
}

/// Aggregate accounting for one [`RouteEngine::route_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instances in the batch.
    pub instances: usize,
    /// Instances routed with every net connected.
    pub complete: usize,
    /// Instances routed legally but with at least one failed net.
    pub incomplete: usize,
    /// Instances that returned a [`RouteError`] other than a panic or
    /// a blown deadline.
    pub errored: usize,
    /// Instances whose router panicked.
    pub panicked: usize,
    /// Instances disqualified by the per-instance deadline.
    pub timed_out: usize,
    /// Total unconnected nets across all routed instances.
    pub failed_nets: usize,
    /// Total wirelength across all routed instances.
    pub wirelength: u64,
    /// Total vias across all routed instances.
    pub vias: u64,
    /// Wall-clock time for the whole batch, in milliseconds.
    pub batch_ms: u64,
    /// Sum of per-instance routing times, in milliseconds. The ratio
    /// `busy_ms / batch_ms` approximates achieved parallelism.
    pub busy_ms: u64,
    /// The slowest single instance, in milliseconds.
    pub max_instance_ms: u64,
    /// Worker threads actually used.
    pub jobs: usize,
}

/// What [`RouteEngine::route_batch`] returns.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-instance results, in input order: `results[i]` routes
    /// `problems[i]`.
    pub results: Vec<RouteResult>,
    /// Per-instance routing time, in input order.
    pub timings: Vec<Duration>,
    /// Aggregate accounting.
    pub stats: EngineStats,
}

/// Routes batches of problems concurrently through any
/// [`DetailedRouter`]. See the [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteEngine {
    config: EngineConfig,
}

impl RouteEngine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        RouteEngine { config }
    }

    /// Shorthand for an engine with `jobs` workers and no deadline.
    pub fn with_jobs(jobs: usize) -> Self {
        RouteEngine::new(EngineConfig { jobs, ..EngineConfig::default() })
    }

    /// The worker count the engine will use: the configured `jobs`, or
    /// one per available hardware thread when configured as `0`.
    pub fn jobs(&self) -> usize {
        if self.config.jobs == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.jobs
        }
    }

    /// Routes every problem in the batch, fanning instances out over the
    /// worker pool. Workers claim instances from a shared counter, so a
    /// slow instance never stalls the others; results are delivered in
    /// input order regardless.
    pub fn route_batch<R: DetailedRouter + Sync + ?Sized>(
        &self,
        router: &R,
        problems: &[Problem],
    ) -> BatchOutcome {
        let started = Instant::now();
        let n = problems.len();
        let jobs = self.jobs().min(n).max(1);
        let deadline = self.config.deadline;

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Duration, RouteResult)>();
        thread::scope(|s| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| router.route(&problems[i])))
                        .unwrap_or_else(|payload| {
                            Err(RouteError::Panicked { message: panic_text(payload.as_ref()) })
                        });
                    let took = t0.elapsed();
                    let result = match (deadline, result) {
                        (Some(budget), Ok(_)) if took > budget => {
                            Err(RouteError::DeadlineExceeded {
                                elapsed_ms: took.as_millis() as u64,
                                budget_ms: budget.as_millis() as u64,
                            })
                        }
                        (_, r) => r,
                    };
                    if tx.send((i, took, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });

        let mut slots: Vec<Option<RouteResult>> = (0..n).map(|_| None).collect();
        let mut timings = vec![Duration::ZERO; n];
        for (i, took, result) in rx {
            slots[i] = Some(result);
            timings[i] = took;
        }
        let results: Vec<RouteResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every claimed instance reports exactly once"))
            .collect();

        let mut stats = EngineStats {
            instances: n,
            jobs,
            batch_ms: started.elapsed().as_millis() as u64,
            ..EngineStats::default()
        };
        for (result, took) in results.iter().zip(&timings) {
            let ms = took.as_millis() as u64;
            stats.busy_ms += ms;
            stats.max_instance_ms = stats.max_instance_ms.max(ms);
            match result {
                Ok(routing) => {
                    if routing.is_complete() {
                        stats.complete += 1;
                    } else {
                        stats.incomplete += 1;
                    }
                    stats.failed_nets += routing.failed.len();
                    let db = routing.db.stats();
                    stats.wirelength += db.wirelength;
                    stats.vias += db.vias;
                }
                Err(RouteError::Panicked { .. }) => stats.panicked += 1,
                Err(RouteError::DeadlineExceeded { .. }) => stats.timed_out += 1,
                Err(_) => stats.errored += 1,
            }
        }

        BatchOutcome { results, timings, stats }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
