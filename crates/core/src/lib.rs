//! Incremental rip-up/reroute detailed router with weak and strong
//! modification.
//!
//! This crate is the workspace's primary contribution: a general
//! two-layer detailed router for switchboxes, channels, and irregular
//! partially-routed regions. It routes nets **incrementally** — one
//! pin-to-component connection at a time — and, unlike the sequential
//! baseline, it is allowed to *modify* wiring committed earlier:
//!
//! * When a connection finds no free path, an **interference search**
//!   finds the cheapest path that crosses other nets' wiring, paying an
//!   escalating penalty per crossed slot.
//! * **Weak modification** then tries to push the blocking wiring aside:
//!   the crossed traces are lifted, the new connection committed, and
//!   each victim is immediately re-routed around it with a plain search.
//!   If every victim re-routes, nothing was ripped from the queue's
//!   point of view — wiring just moved.
//! * **Strong modification** (rip-up and re-route proper) handles the
//!   victims that could not be locally repaired: their connection goes
//!   back on the work queue and their crossing penalty grows, so the
//!   same wiring cannot be ripped indefinitely.
//!
//! Termination is guaranteed by two mechanisms mirroring the published
//! argument: the per-net crossing penalty grows geometrically with its
//! rip count (so every net is eventually cheaper to detour around than to
//! rip), and a per-net attempt budget bounds the total number of queue
//! events; see [`RouterConfig`].
//!
//! # Examples
//!
//! ```
//! use route_model::{ProblemBuilder, PinSide};
//! use mighty::{MightyRouter, RouterConfig};
//! use route_verify::verify;
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! b.net("b").pin_side(PinSide::Bottom, 2).pin_side(PinSide::Top, 6);
//! let problem = b.build()?;
//!
//! let outcome = MightyRouter::new(RouterConfig::default()).route(&problem);
//! assert!(outcome.is_complete());
//! assert!(verify(&problem, outcome.db()).is_clean());
//! # Ok::<(), route_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod config;
pub mod engine;
pub mod journal;
mod net_graph;
pub mod recover;
mod router;
pub mod serve;

pub use config::{ConfigError, NetOrder, PenaltyGrowth, RouterConfig, RouterConfigBuilder};
pub use engine::{
    BatchObservation, BatchOutcome, EngineConfig, EngineConfigBuilder, EngineStats, ObserveMode,
    RouteEngine, SupervisedBatch, MAX_JOBS,
};
pub use journal::{
    ChipJournal, ChipTileRecord, JournalEntry, PendingRequest, RunJournal, ServeJournal,
};
pub use recover::{
    EngineFault, FallbackChain, FaultPlan, InstanceStatus, RecoveryPath, RetryPolicy, SalvageInfo,
    SupervisedOutcome, Supervisor,
};
pub use route_maze::FrontierKind;
/// Work-accounting counters, re-exported from [`route_model`] — the
/// router fills them and the engine/bench tables consume them.
pub use route_model::RouterStats;
pub use router::{MightyRouter, RouteOutcome};
pub use serve::{
    JobDone, JobSpec, RouteService, ServiceConfig, ServiceConfigBuilder, ServiceReply,
    ServiceStats, SubmitError,
};
