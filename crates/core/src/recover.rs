//! Supervised recovery around the batch engine.
//!
//! The router's headline guarantee — it always terminates with the best
//! routing found so far — deserves an engine with the same
//! degrade-gracefully discipline. This module supplies it:
//!
//! * [`RetryPolicy`] re-attempts a failed instance under escalated
//!   budgets (more rip-up attempts, more queue events, a higher penalty
//!   ceiling) with a deterministic per-attempt perturbation of the
//!   initial net order, so a retry explores a genuinely different
//!   schedule instead of replaying the same loss.
//! * [`FallbackChain`] hands the instance to progressively simpler
//!   routers (classically: rip-up router → sequential Lee baseline)
//!   once retries are exhausted.
//! * **Salvage**: when every attempt fails, the [`Supervisor`] returns
//!   the best snapshot it saw — the routing with the most connected
//!   nets — as a [`RecoveryPath::Salvaged`] outcome carrying its
//!   completed-net count and a legality lint report from
//!   `route-analyze`, instead of discarding real metal.
//! * [`FaultPlan`] injects panics, delays and spurious failures into
//!   chosen instances and attempts, so tests (and the `VROUTE_FAULT`
//!   environment hook in the CLI) can prove every recovery path fires.
//!
//! The decision sequence per instance:
//!
//! ```text
//! attempt 0 (base config) ──complete──▶ Direct
//!   │ retryable failure / incomplete
//!   ▼
//! attempts 1..R (escalated) ──complete──▶ Retried
//!   │ exhausted or non-retryable
//!   ▼
//! fallback chain, in order ──complete──▶ FellBack
//!   │ exhausted
//!   ▼
//! best snapshot seen? ──yes──▶ Salvaged (+ lint report)
//!   │ no                         (never counted complete)
//!   ▼
//! Failed (terminal error; Infeasible proofs land here directly)
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

use route_analyze::LintReport;
use route_model::{DetailedRouter, Problem, RouteError, RouteResult, Routing};

use crate::engine::panic_text;
use crate::{MightyRouter, NetOrder, RouterConfig};

/// Budget escalation applied on each retry of the primary router.
///
/// `attempts` counts *total* primary attempts (the first run plus
/// retries), so the default of `1` disables retrying entirely. Retry
/// `k` (1-based) multiplies the rip-up attempt budget by
/// `attempt_factor^k`, multiplies an explicit event budget by
/// `event_factor^k` (the automatic `0` budget is left automatic — it
/// already scales with the problem), raises the penalty-doubling cap by
/// `extra_doublings * k`, and perturbs the initial net order with a
/// SplitMix64 stream seeded by `seed ^ k` — deterministic, so a
/// supervised batch routes identically on every run and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total primary attempts (first run + retries); minimum 1.
    pub attempts: u32,
    /// Multiplier on [`RouterConfig::max_attempts`] per retry.
    pub attempt_factor: u32,
    /// Multiplier on an explicit [`RouterConfig::max_events`] per retry.
    pub event_factor: u32,
    /// Added to [`RouterConfig::max_penalty_doublings`] per retry
    /// (capped so the geometric schedule cannot overflow).
    pub extra_doublings: u32,
    /// Seed of the per-attempt net-order perturbation.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 1, attempt_factor: 2, event_factor: 2, extra_doublings: 2, seed: 0 }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` re-attempts after the first run.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy { attempts: retries.saturating_add(1), ..RetryPolicy::default() }
    }

    /// The configuration for retry `retry` (1-based) of a primary
    /// router whose first attempt used `base`.
    pub fn escalated(&self, base: &RouterConfig, retry: u32) -> RouterConfig {
        let mut cfg = *base;
        let power = |f: u32| f.max(1).saturating_pow(retry);
        cfg.max_attempts = base.max_attempts.saturating_mul(power(self.attempt_factor)).max(1);
        if base.max_events > 0 {
            cfg.max_events = base.max_events.saturating_mul(power(self.event_factor) as usize);
        }
        // Keep the geometric schedule's shift in range: the cap may not
        // exceed the base penalty's headroom in a u64.
        let ceiling = base.base_penalty.leading_zeros();
        cfg.max_penalty_doublings = base
            .max_penalty_doublings
            .saturating_add(self.extra_doublings.saturating_mul(retry))
            .min(ceiling);
        cfg.order = perturbed_order(base.order, self.seed, retry);
        cfg
    }
}

/// Picks a different initial net order for each retry, deterministically
/// from `(seed, retry)`. Retry 0 is never perturbed (callers use the
/// base config for the first attempt); retries always get an order
/// different from the base, so a schedule-sensitive failure is not
/// replayed verbatim.
fn perturbed_order(base: NetOrder, seed: u64, retry: u32) -> NetOrder {
    const ORDERS: [NetOrder; 5] = [
        NetOrder::ShortFirst,
        NetOrder::LongFirst,
        NetOrder::PinCountDesc,
        NetOrder::CongestionFirst,
        NetOrder::Declared,
    ];
    if retry == 0 {
        return base;
    }
    let at = ORDERS.iter().position(|o| *o == base).unwrap_or(0);
    let step = 1 + (split_mix(seed ^ u64::from(retry)) % (ORDERS.len() as u64 - 1)) as usize;
    ORDERS[(at + step) % ORDERS.len()]
}

/// SplitMix64 finalizer — the workspace's standard cheap bit mixer.
fn split_mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An ordered chain of simpler routers tried after the primary's
/// retries are exhausted.
#[derive(Default)]
pub struct FallbackChain {
    routers: Vec<Box<dyn DetailedRouter + Sync>>,
}

impl FallbackChain {
    /// An empty chain: no fallback, failures go straight to salvage.
    pub fn none() -> Self {
        FallbackChain::default()
    }

    /// The classic chain: fall back to the sequential Lee baseline.
    pub fn lee() -> Self {
        let mut chain = FallbackChain::none();
        chain.push(Box::new(route_maze::LeeRouter::default()));
        chain
    }

    /// Appends a router to the end of the chain.
    pub fn push(&mut self, router: Box<dyn DetailedRouter + Sync>) {
        self.routers.push(router);
    }

    /// Routers in the chain.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the chain holds no routers.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }
}

impl fmt::Debug for FallbackChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.routers.iter().map(|r| r.name()).collect();
        f.debug_tuple("FallbackChain").field(&names).finish()
    }
}

/// A fault the [`Supervisor`] injects into selected attempts, for
/// recovery-path testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Panic instead of routing (exercises panic isolation + retry cap).
    Panic,
    /// Return [`RouteError::Unroutable`] instead of routing.
    SpuriousFail,
    /// Sleep this many milliseconds before routing (blows deadlines).
    Delay(u64),
}

/// Which instances and attempts an [`EngineFault`] hits.
///
/// The spec grammar (used by the CLI's `VROUTE_FAULT` environment
/// variable and by [`FaultPlan::parse`]) is
/// `KIND[@TARGETS[@ATTEMPTS]]`:
///
/// * `KIND` — `panic`, `fail`, or `delay-MS` (milliseconds).
/// * `TARGETS` — `*` for everything, a comma-separated list of 0-based
///   batch indices (`0,2`), a comma-separated list of chip tiles
///   (`tile:3,tile:7`), or the chip seam stage (`seam`). Defaults to
///   `*`. Index lists target only batch instances; `tile:` lists
///   target only chip tiles; `seam` targets only seam-repair rungs —
///   a bare or `*` plan hits batch instances *and* tiles, but never
///   the seam stage (the seam ladder must be opted into explicitly).
/// * `ATTEMPTS` — inject into the first this-many attempts of each
///   target (counted across retries *and* fallbacks; for `seam`,
///   across the escalation-ladder rungs of each seam). Defaults to
///   `1`, so the first attempt fails and recovery runs.
///
/// `panic@0,2@1` panics the first attempt of instances 0 and 2;
/// `delay-200@*@2` delays the first two attempts of every instance;
/// `panic@tile:3` panics tile 3's first attempt; `fail@seam@2` fails
/// the first two rungs of every seam repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    fault: EngineFault,
    instances: Option<Vec<usize>>,
    tiles: Option<Vec<usize>>,
    seam: bool,
    attempts: u32,
}

impl FaultPlan {
    /// A plan injecting `fault` into the first `attempts` attempts of
    /// the given batch instances (`None` targets every instance).
    pub fn new(fault: EngineFault, instances: Option<Vec<usize>>, attempts: u32) -> Self {
        FaultPlan { fault, instances, tiles: None, seam: false, attempts }
    }

    /// Parses the `KIND[@TARGETS[@ATTEMPTS]]` spec described on the
    /// type. Errors are human-readable and name the offending part.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split('@');
        let kind = parts.next().unwrap_or_default();
        let fault = if kind == "panic" {
            EngineFault::Panic
        } else if kind == "fail" {
            EngineFault::SpuriousFail
        } else if let Some(ms) = kind.strip_prefix("delay-") {
            let ms = ms.parse::<u64>().map_err(|_| format!("bad delay milliseconds: {ms:?}"))?;
            EngineFault::Delay(ms)
        } else {
            return Err(format!("unknown fault kind {kind:?} (panic, fail, delay-MS)"));
        };
        let mut instances: Option<Vec<usize>> = None;
        let mut tiles: Option<Vec<usize>> = None;
        let mut seam = false;
        match parts.next() {
            None | Some("*") => {}
            Some("seam") => seam = true,
            Some(list) => {
                for part in list.split(',') {
                    if part == "seam" {
                        return Err("seam must be the sole fault target".to_string());
                    } else if let Some(t) = part.strip_prefix("tile:") {
                        let t =
                            t.parse::<usize>().map_err(|_| format!("bad tile index {part:?}"))?;
                        tiles.get_or_insert_with(Vec::new).push(t);
                    } else {
                        let i = part
                            .parse::<usize>()
                            .map_err(|_| format!("bad instance index {part:?}"))?;
                        instances.get_or_insert_with(Vec::new).push(i);
                    }
                }
                if instances.is_some() && tiles.is_some() {
                    return Err("cannot mix instance and tile fault targets".to_string());
                }
            }
        }
        let attempts = match parts.next() {
            None => 1,
            Some(n) => n.parse::<u32>().map_err(|_| format!("bad attempt count {n:?}"))?,
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing fault spec part {extra:?}"));
        }
        Ok(FaultPlan { fault, instances, tiles, seam, attempts })
    }

    /// Whether the plan fires for attempt `attempt` (0-based, counted
    /// across the whole recovery chain) of batch instance `instance`.
    /// Tile- and seam-targeted plans never hit batch instances.
    pub fn applies(&self, instance: usize, attempt: u32) -> bool {
        attempt < self.attempts
            && !self.seam
            && self.tiles.is_none()
            && self.instances.as_ref().is_none_or(|list| list.contains(&instance))
    }

    /// Whether the plan fires for attempt `attempt` of chip tile
    /// `tile`. Bare plans hit every tile; instance- and seam-targeted
    /// plans never hit tiles.
    pub fn applies_tile(&self, tile: usize, attempt: u32) -> bool {
        attempt < self.attempts
            && !self.seam
            && self.instances.is_none()
            && self.tiles.as_ref().is_none_or(|list| list.contains(&tile))
    }

    /// Whether the plan fires for escalation rung `rung` (0-based) of a
    /// chip seam repair. Only explicit `@seam` plans ever fire here.
    pub fn applies_seam(&self, rung: u32) -> bool {
        self.seam && rung < self.attempts
    }

    /// The injected fault.
    pub fn fault(&self) -> EngineFault {
        self.fault
    }
}

/// How an instance's final result was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPath {
    /// The first attempt of the primary router completed.
    Direct,
    /// A retry of the primary router completed (`attempt` is the
    /// 1-based retry index that succeeded).
    Retried {
        /// Which retry succeeded.
        attempt: u32,
    },
    /// A fallback router completed.
    FellBack {
        /// [`DetailedRouter::name`] of the router that completed.
        router: String,
    },
    /// No attempt completed; the best partial snapshot was salvaged.
    Salvaged,
    /// No attempt completed and nothing was salvageable.
    Failed,
}

impl RecoveryPath {
    /// Stable one-token encoding, used by the run journal and reports:
    /// `direct`, `retried:K`, `fallback:NAME`, `salvaged`, `failed`.
    pub fn encode(&self) -> String {
        match self {
            RecoveryPath::Direct => "direct".to_string(),
            RecoveryPath::Retried { attempt } => format!("retried:{attempt}"),
            RecoveryPath::FellBack { router } => format!("fallback:{router}"),
            RecoveryPath::Salvaged => "salvaged".to_string(),
            RecoveryPath::Failed => "failed".to_string(),
        }
    }

    /// Parses [`encode`](RecoveryPath::encode)'s output.
    pub fn parse(text: &str) -> Option<RecoveryPath> {
        if text == "direct" {
            Some(RecoveryPath::Direct)
        } else if text == "salvaged" {
            Some(RecoveryPath::Salvaged)
        } else if text == "failed" {
            Some(RecoveryPath::Failed)
        } else if let Some(k) = text.strip_prefix("retried:") {
            k.parse().ok().map(|attempt| RecoveryPath::Retried { attempt })
        } else {
            text.strip_prefix("fallback:")
                .map(|router| RecoveryPath::FellBack { router: router.to_string() })
        }
    }
}

/// The terminal classification of a supervised instance, used by
/// engine accounting and the run journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Every net connected (via any recovery path).
    Complete,
    /// A partial routing was salvaged; never counted complete.
    Salvaged,
    /// Skipped or rejected on an infeasibility proof.
    Infeasible,
    /// Terminal failure was a panic.
    Panicked,
    /// Terminal failure was a blown deadline.
    TimedOut,
    /// Terminal failure was any other router error.
    Errored,
}

impl InstanceStatus {
    /// Stable token used in journals and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            InstanceStatus::Complete => "complete",
            InstanceStatus::Salvaged => "salvaged",
            InstanceStatus::Infeasible => "infeasible",
            InstanceStatus::Panicked => "panicked",
            InstanceStatus::TimedOut => "timed-out",
            InstanceStatus::Errored => "error",
        }
    }

    /// Parses [`as_str`](InstanceStatus::as_str)'s output.
    pub fn parse(text: &str) -> Option<InstanceStatus> {
        [
            InstanceStatus::Complete,
            InstanceStatus::Salvaged,
            InstanceStatus::Infeasible,
            InstanceStatus::Panicked,
            InstanceStatus::TimedOut,
            InstanceStatus::Errored,
        ]
        .into_iter()
        .find(|s| s.as_str() == text)
    }
}

/// What a salvage carries beyond the partial [`Routing`] itself.
#[derive(Debug, Clone)]
pub struct SalvageInfo {
    /// Nets fully connected in the salvaged snapshot.
    pub connected: usize,
    /// Human-readable description of the terminal failure that forced
    /// the salvage.
    pub terminal: String,
    /// Legality lint of the snapshot ([`route_analyze::lint_salvage`]):
    /// disconnections of declared-failed nets are excused, everything
    /// else must be clean for the salvage to be trustworthy.
    pub lint: LintReport,
}

/// The result of routing one instance under supervision.
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// How the result was obtained.
    pub path: RecoveryPath,
    /// Attempts spent (primary runs + retries + fallbacks).
    pub attempts: u32,
    /// The final result: the completed or salvaged [`Routing`], or the
    /// terminal error. `None` only for journal-resumed skips, which
    /// have no live database.
    pub result: Option<RouteResult>,
    /// Present iff `path` is [`RecoveryPath::Salvaged`].
    pub salvage: Option<SalvageInfo>,
}

impl SupervisedOutcome {
    /// An outcome for an instance rejected by the feasibility precheck.
    pub(crate) fn infeasible(reason: String) -> SupervisedOutcome {
        SupervisedOutcome {
            path: RecoveryPath::Failed,
            attempts: 0,
            result: Some(Err(RouteError::Infeasible { reason })),
            salvage: None,
        }
    }

    /// The terminal classification of this outcome.
    pub fn status(&self) -> InstanceStatus {
        match &self.path {
            RecoveryPath::Direct | RecoveryPath::Retried { .. } | RecoveryPath::FellBack { .. } => {
                InstanceStatus::Complete
            }
            RecoveryPath::Salvaged => InstanceStatus::Salvaged,
            RecoveryPath::Failed => match &self.result {
                Some(Err(RouteError::Infeasible { .. })) => InstanceStatus::Infeasible,
                Some(Err(RouteError::Panicked { .. })) => InstanceStatus::Panicked,
                Some(Err(RouteError::DeadlineExceeded { .. })) => InstanceStatus::TimedOut,
                _ => InstanceStatus::Errored,
            },
        }
    }
}

/// The primary router an instance is first attempted with.
enum Primary {
    /// The rip-up router; retries escalate its budget knobs.
    Mighty(RouterConfig),
    /// Any other router; retries re-run it unchanged (still meaningful
    /// under injected or environmental transients).
    Fixed(Box<dyn DetailedRouter + Sync>),
}

/// Drives one instance through retry, fallback and salvage. See the
/// [module docs](self) for the decision sequence.
pub struct Supervisor {
    primary: Primary,
    retry: RetryPolicy,
    fallbacks: FallbackChain,
    fault: Option<FaultPlan>,
    /// When set, the `instance` passed to
    /// [`route_supervised`](Supervisor::route_supervised) is a chip
    /// tile index and faults match via [`FaultPlan::applies_tile`].
    fault_on_tiles: bool,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("primary", &self.primary_name())
            .field("retry", &self.retry)
            .field("fallbacks", &self.fallbacks)
            .field("fault", &self.fault)
            .finish()
    }
}

impl Supervisor {
    /// A supervisor over the rip-up router with the given base
    /// configuration; retries escalate it per `retry`.
    pub fn new(base: RouterConfig, retry: RetryPolicy) -> Self {
        Supervisor {
            primary: Primary::Mighty(base),
            retry,
            fallbacks: FallbackChain::none(),
            fault: None,
            fault_on_tiles: false,
        }
    }

    /// A supervisor over an arbitrary primary router; retries re-run it
    /// with the same configuration.
    pub fn with_primary(router: Box<dyn DetailedRouter + Sync>, retry: RetryPolicy) -> Self {
        Supervisor {
            primary: Primary::Fixed(router),
            retry,
            fallbacks: FallbackChain::none(),
            fault: None,
            fault_on_tiles: false,
        }
    }

    /// Attaches a fallback chain.
    pub fn with_fallbacks(mut self, fallbacks: FallbackChain) -> Self {
        self.fallbacks = fallbacks;
        self
    }

    /// Attaches a fault-injection plan (testing / `VROUTE_FAULT`).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a fault-injection plan scoped to chip tiles: the
    /// `instance` argument of
    /// [`route_supervised`](Supervisor::route_supervised) is treated as
    /// a tile index and matched via [`FaultPlan::applies_tile`].
    pub fn with_tile_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self.fault_on_tiles = true;
        self
    }

    /// Name of the primary router.
    pub fn primary_name(&self) -> &str {
        match &self.primary {
            Primary::Mighty(_) => "mighty",
            Primary::Fixed(r) => r.name(),
        }
    }

    /// Routes `problem` (batch index `instance`, used for fault
    /// targeting) through the full recovery chain. `deadline` is the
    /// per-*attempt* wall-clock budget: an attempt delivering after it
    /// is disqualified ([`RouteError::DeadlineExceeded`]) but its
    /// routing still feeds the salvage snapshot.
    pub fn route_supervised(
        &self,
        problem: &Problem,
        instance: usize,
        deadline: Option<Duration>,
    ) -> SupervisedOutcome {
        let mut best: Option<Routing> = None;
        let mut last_error: Option<RouteError> = None;
        let mut attempts = 0u32;
        let mut panics = 0u32;
        let mut proof = false;

        for k in 0..self.retry.attempts.max(1) {
            let result = match &self.primary {
                Primary::Mighty(base) => {
                    let cfg = if k == 0 { *base } else { self.retry.escalated(base, k) };
                    self.attempt(
                        &MightyRouter::new(cfg),
                        problem,
                        instance,
                        attempts,
                        deadline,
                        &mut best,
                    )
                }
                Primary::Fixed(r) => {
                    self.attempt(r.as_ref(), problem, instance, attempts, deadline, &mut best)
                }
            };
            attempts += 1;
            match result {
                Ok(routing) if routing.is_complete() => {
                    let path = if k == 0 {
                        RecoveryPath::Direct
                    } else {
                        RecoveryPath::Retried { attempt: k }
                    };
                    return SupervisedOutcome {
                        path,
                        attempts,
                        result: Some(Ok(routing)),
                        salvage: None,
                    };
                }
                Ok(routing) => {
                    // Incomplete-but-legal: a retryable failure by the
                    // completion contract, and a salvage candidate.
                    remember_best(&mut best, routing);
                    last_error = None;
                }
                Err(e) => {
                    let retry_allowed = match &e {
                        // A deterministic router panics the same way
                        // twice; one re-attempt covers transients.
                        RouteError::Panicked { .. } => {
                            panics += 1;
                            panics <= 1
                        }
                        RouteError::Infeasible { .. } => {
                            proof = true;
                            false
                        }
                        other => other.is_retryable(),
                    };
                    last_error = Some(e);
                    if !retry_allowed {
                        break;
                    }
                }
            }
        }

        // Infeasibility is a proof, not a budget problem: no fallback
        // router can complete the instance and there is nothing to
        // salvage (nothing was routed).
        if !proof {
            for fb in &self.fallbacks.routers {
                let result =
                    self.attempt(fb.as_ref(), problem, instance, attempts, deadline, &mut best);
                attempts += 1;
                match result {
                    Ok(routing) if routing.is_complete() => {
                        return SupervisedOutcome {
                            path: RecoveryPath::FellBack { router: fb.name().to_string() },
                            attempts,
                            result: Some(Ok(routing)),
                            salvage: None,
                        };
                    }
                    Ok(routing) => remember_best(&mut best, routing),
                    Err(e) => last_error = Some(e),
                }
            }
            if let Some(routing) = best {
                let lint = route_analyze::lint_salvage(problem, &routing.db, &routing.failed);
                let connected = problem.nets().len().saturating_sub(routing.failed.len());
                let terminal = match &last_error {
                    Some(e) => e.to_string(),
                    None => format!(
                        "incomplete after {attempts} attempt(s): {} net(s) unrouted",
                        routing.failed.len()
                    ),
                };
                return SupervisedOutcome {
                    path: RecoveryPath::Salvaged,
                    attempts,
                    result: Some(Ok(routing)),
                    salvage: Some(SalvageInfo { connected, terminal, lint }),
                };
            }
        }

        let error = last_error.unwrap_or(RouteError::Unroutable {
            reason: "no attempt produced a result".to_string(),
        });
        SupervisedOutcome {
            path: RecoveryPath::Failed,
            attempts,
            result: Some(Err(error)),
            salvage: None,
        }
    }

    /// Runs one attempt: injects any planned fault, isolates panics,
    /// and disqualifies results delivered after `deadline` (feeding the
    /// disqualified routing into the salvage snapshot first).
    fn attempt(
        &self,
        router: &dyn DetailedRouter,
        problem: &Problem,
        instance: usize,
        attempt_no: u32,
        deadline: Option<Duration>,
        best: &mut Option<Routing>,
    ) -> RouteResult {
        let injected = self
            .fault
            .as_ref()
            .filter(|f| {
                if self.fault_on_tiles {
                    f.applies_tile(instance, attempt_no)
                } else {
                    f.applies(instance, attempt_no)
                }
            })
            .map(FaultPlan::fault);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            match injected {
                Some(EngineFault::Panic) => panic!("injected fault: panic"),
                Some(EngineFault::SpuriousFail) => {
                    return Err(RouteError::Unroutable {
                        reason: "injected fault: spurious failure".to_string(),
                    });
                }
                Some(EngineFault::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
                None => {}
            }
            router.route(problem)
        }))
        .unwrap_or_else(|payload| {
            Err(RouteError::Panicked { message: panic_text(payload.as_ref()) })
        });
        let took = t0.elapsed();
        match (deadline, result) {
            (Some(budget), Ok(routing)) if took > budget => {
                // Disqualified, but the metal is real: salvage it.
                remember_best(best, routing);
                Err(RouteError::DeadlineExceeded {
                    elapsed_ms: took.as_millis() as u64,
                    budget_ms: budget.as_millis() as u64,
                })
            }
            (_, r) => r,
        }
    }
}

/// Keeps the snapshot with the most connected nets; ties keep the
/// earlier snapshot, so the choice is deterministic in attempt order.
fn remember_best(best: &mut Option<Routing>, candidate: Routing) {
    let better = match best {
        None => true,
        Some(current) => candidate.failed.len() < current.failed.len(),
    };
    if better {
        *best = Some(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, RouteDb};

    fn tiny() -> Problem {
        let mut b = ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        b.build().unwrap()
    }

    #[test]
    fn escalation_is_monotone_and_deterministic() {
        let base = RouterConfig::default();
        let policy = RetryPolicy { attempts: 4, seed: 7, ..RetryPolicy::default() };
        let mut prev = base;
        for k in 1..4 {
            let cfg = policy.escalated(&base, k);
            assert!(cfg.max_attempts >= prev.max_attempts, "retry {k}");
            assert!(
                cfg.max_penalty_doublings
                    >= base.max_penalty_doublings.min(cfg.max_penalty_doublings)
            );
            assert_ne!(cfg.order, base.order, "retry {k} must perturb the order");
            assert_eq!(cfg, policy.escalated(&base, k), "escalation must be deterministic");
            prev = cfg;
        }
        // The shift stays in u64 range even under absurd escalation.
        let cfg = policy.escalated(&base, u32::MAX);
        assert!(cfg.max_penalty_doublings <= base.base_penalty.leading_zeros());
        let _ = cfg.penalty(u32::MAX);
    }

    #[test]
    fn fault_plan_spec_round_trips() {
        let plan = FaultPlan::parse("panic@0,2@2").unwrap();
        assert_eq!(plan, FaultPlan::new(EngineFault::Panic, Some(vec![0, 2]), 2));
        assert!(plan.applies(0, 0) && plan.applies(2, 1));
        assert!(!plan.applies(1, 0), "untargeted instance");
        assert!(!plan.applies(0, 2), "attempt past the window");

        let plan = FaultPlan::parse("delay-150").unwrap();
        assert_eq!(plan, FaultPlan::new(EngineFault::Delay(150), None, 1));
        assert!(plan.applies(9, 0));

        let plan = FaultPlan::parse("fail@*@3").unwrap();
        assert_eq!(plan, FaultPlan::new(EngineFault::SpuriousFail, None, 3));

        for bad in ["", "explode", "delay-", "delay-x", "panic@x", "panic@1@x", "panic@1@2@3"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn fault_plan_tile_and_seam_targets() {
        let plan = FaultPlan::parse("panic@tile:3").unwrap();
        assert!(plan.applies_tile(3, 0));
        assert!(!plan.applies_tile(2, 0), "untargeted tile");
        assert!(!plan.applies_tile(3, 1), "attempt past the window");
        assert!(!plan.applies(3, 0), "tile plans never hit batch instances");
        assert!(!plan.applies_seam(0), "tile plans never hit the seam stage");

        let plan = FaultPlan::parse("fail@tile:1,tile:4@2").unwrap();
        assert!(plan.applies_tile(1, 1) && plan.applies_tile(4, 0));
        assert!(!plan.applies_tile(2, 0));

        let plan = FaultPlan::parse("fail@seam@2").unwrap();
        assert!(plan.applies_seam(0) && plan.applies_seam(1));
        assert!(!plan.applies_seam(2), "rung past the window");
        assert!(!plan.applies(0, 0) && !plan.applies_tile(0, 0));

        // Bare plans hit batch instances and tiles, never seams.
        let plan = FaultPlan::parse("delay-40").unwrap();
        assert!(plan.applies(7, 0) && plan.applies_tile(7, 0));
        assert!(!plan.applies_seam(0));

        // Instance-index plans never hit tiles, and vice versa.
        let plan = FaultPlan::parse("panic@2").unwrap();
        assert!(plan.applies(2, 0) && !plan.applies_tile(2, 0));

        for bad in ["panic@tile:x", "panic@seam,1", "panic@1,tile:2"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn tile_scoped_supervisor_matches_tile_targets() {
        // A tile-scoped fault on tile 0: the first attempt panics and
        // the retry recovers; other tiles are untouched.
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(2))
            .with_tile_fault(FaultPlan::parse("panic@tile:0").unwrap());
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.path, RecoveryPath::Retried { attempt: 1 });
        let out = sup.route_supervised(&tiny(), 1, None);
        assert_eq!(out.path, RecoveryPath::Direct, "tile 1 is untargeted");
    }

    #[test]
    fn recovery_path_and_status_encodings_round_trip() {
        let paths = [
            RecoveryPath::Direct,
            RecoveryPath::Retried { attempt: 3 },
            RecoveryPath::FellBack { router: "lee".to_string() },
            RecoveryPath::Salvaged,
            RecoveryPath::Failed,
        ];
        for p in paths {
            assert_eq!(RecoveryPath::parse(&p.encode()), Some(p.clone()), "{p:?}");
        }
        assert_eq!(RecoveryPath::parse("garbled"), None);

        let statuses = [
            InstanceStatus::Complete,
            InstanceStatus::Salvaged,
            InstanceStatus::Infeasible,
            InstanceStatus::Panicked,
            InstanceStatus::TimedOut,
            InstanceStatus::Errored,
        ];
        for s in statuses {
            assert_eq!(InstanceStatus::parse(s.as_str()), Some(s), "{s:?}");
        }
        assert_eq!(InstanceStatus::parse("garbled"), None);
    }

    #[test]
    fn direct_success_spends_one_attempt() {
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(3));
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.path, RecoveryPath::Direct);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.status(), InstanceStatus::Complete);
    }

    #[test]
    fn injected_panic_is_recovered_by_retry() {
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(2))
            .with_fault(FaultPlan::parse("panic@0@1").unwrap());
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.path, RecoveryPath::Retried { attempt: 1 });
        assert_eq!(out.attempts, 2);
        assert_eq!(out.status(), InstanceStatus::Complete);
    }

    #[test]
    fn panics_are_retried_at_most_once() {
        // Panic on every attempt: the second panic must end the retry
        // chain even though the budget would allow five attempts.
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(4))
            .with_fault(FaultPlan::parse("panic@*@99").unwrap());
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.attempts, 2, "one panic, one capped retry");
        assert_eq!(out.status(), InstanceStatus::Panicked);
    }

    #[test]
    fn spurious_failures_are_recovered_by_fallback() {
        // Fail every primary attempt; the Lee fallback completes.
        let sup = Supervisor::new(RouterConfig::default(), RetryPolicy::with_retries(1))
            .with_fault(FaultPlan::new(EngineFault::SpuriousFail, None, 2))
            .with_fallbacks(FallbackChain::lee());
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.path, RecoveryPath::FellBack { router: "lee".to_string() });
        assert_eq!(out.attempts, 3);
        assert_eq!(out.status(), InstanceStatus::Complete);
    }

    #[test]
    fn infeasible_errors_are_never_retried() {
        struct Prover;
        impl DetailedRouter for Prover {
            fn name(&self) -> &str {
                "prover"
            }
            fn route(&self, _p: &Problem) -> RouteResult {
                Err(RouteError::Infeasible { reason: "saturated cut".to_string() })
            }
        }
        let sup = Supervisor::with_primary(Box::new(Prover), RetryPolicy::with_retries(5))
            .with_fallbacks(FallbackChain::lee());
        let out = sup.route_supervised(&tiny(), 0, None);
        assert_eq!(out.attempts, 1, "a proof must not be retried or handed to fallbacks");
        assert_eq!(out.status(), InstanceStatus::Infeasible);
        assert_eq!(out.path, RecoveryPath::Failed);
    }

    #[test]
    fn terminal_failure_salvages_the_best_snapshot() {
        // A primary that always returns an incomplete-but-legal routing:
        // nothing committed, both nets declared failed.
        struct GiveUp;
        impl DetailedRouter for GiveUp {
            fn name(&self) -> &str {
                "give-up"
            }
            fn route(&self, p: &Problem) -> RouteResult {
                Ok(Routing { db: RouteDb::new(p), failed: p.nets().iter().map(|n| n.id).collect() })
            }
        }
        let p = tiny();
        let sup = Supervisor::with_primary(Box::new(GiveUp), RetryPolicy::with_retries(1));
        let out = sup.route_supervised(&p, 0, None);
        assert_eq!(out.path, RecoveryPath::Salvaged);
        assert_eq!(out.status(), InstanceStatus::Salvaged);
        let salvage = out.salvage.expect("salvage info");
        assert_eq!(salvage.connected, 0);
        assert!(salvage.lint.is_legal(), "declared-failed nets are excused");
        assert!(salvage.terminal.contains("unrouted"));
        let routing =
            out.result.expect("salvage is a live outcome").expect("salvage carries a routing");
        assert_eq!(routing.failed.len(), p.nets().len());
    }
}
