//! With the uniform cost model, the weighted A* must produce exactly the
//! Lee wavefront distances: same minimal path length as a plain BFS over
//! the `(point, layer)` graph.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;

use route_geom::{Layer, Point};
use route_maze::search::{find_path, Query};
use route_maze::CostModel;
use route_model::{NetId, ProblemBuilder, RouteDb, Step};

const SIDE: i32 = 9;

/// Reference implementation: breadth-first search with unit edge costs
/// over free cells, vias included.
fn bfs_distance(db: &RouteDb, net: NetId, from: Step, to: Step) -> Option<u64> {
    let grid = db.grid();
    let mut dist: HashMap<(Point, Layer), u64> = HashMap::new();
    let mut queue = VecDeque::new();
    if !grid.admits(from.at, from.layer, net) {
        return None;
    }
    dist.insert((from.at, from.layer), 0);
    queue.push_back((from.at, from.layer));
    while let Some((p, layer)) = queue.pop_front() {
        let d = dist[&(p, layer)];
        if (p, layer) == (to.at, to.layer) {
            return Some(d);
        }
        let push = |np: Point, nl: Layer, dist: &mut HashMap<(Point, Layer), u64>,
                        queue: &mut VecDeque<(Point, Layer)>| {
            if grid.admits(np, nl, net) && !dist.contains_key(&(np, nl)) {
                dist.insert((np, nl), d + 1);
                queue.push_back((np, nl));
            }
        };
        for n in p.neighbors() {
            push(n, layer, &mut dist, &mut queue);
        }
        for adj in layer.adjacent() {
            push(p, adj, &mut dist, &mut queue);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_astar_matches_bfs(
        obstacles in prop::collection::vec((0..SIDE, 0..SIDE), 0..20),
        (fx, fy, fl) in (0..SIDE, 0..SIDE, any::<bool>()),
        (tx, ty, tl) in (0..SIDE, 0..SIDE, any::<bool>()),
    ) {
        let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
        for &(x, y) in &obstacles {
            // Keep the endpoints clear.
            if (x, y) != (fx, fy) && (x, y) != (tx, ty) {
                b.obstacle(Point::new(x, y));
            }
        }
        b.net("n").pin_at(Point::new(fx, fy), Layer::M1).pin_at(Point::new(tx, ty), Layer::M1);
        let problem = b.build().expect("endpoints kept clear");
        let db = RouteDb::new(&problem);
        let net = problem.nets()[0].id;

        let layer = |m2: bool| if m2 { Layer::M2 } else { Layer::M1 };
        let from = Step::new(Point::new(fx, fy), layer(fl));
        let to = Step::new(Point::new(tx, ty), layer(tl));
        // Pins are on M1; M2 endpoints may be blocked only by obstacles.
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![from],
            targets: vec![to],
            cost: CostModel::uniform(),
        };
        let astar = find_path(&query).map(|f| f.cost);
        let bfs = if db.grid().admits(to.at, to.layer, net) {
            bfs_distance(&db, net, from, to)
        } else {
            None
        };
        prop_assert_eq!(astar, bfs, "A* and BFS disagree from {} to {}", from, to);
    }
}
