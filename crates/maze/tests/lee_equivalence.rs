//! With the uniform cost model, the weighted A* must produce exactly the
//! Lee wavefront distances: same minimal path length as a plain BFS over
//! the `(point, layer)` graph. Instances come from a deterministic
//! in-file generator so the crate builds with zero registry access.

use std::collections::{HashMap, VecDeque};

use route_geom::{Layer, Point};
use route_maze::search::{find_path, Query};
use route_maze::CostModel;
use route_model::{NetId, ProblemBuilder, RouteDb, Step};

const SIDE: i32 = 9;

/// Tiny deterministic generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn coord(&mut self) -> i32 {
        self.below(SIDE as u64) as i32
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Reference implementation: breadth-first search with unit edge costs
/// over free cells, vias included.
fn bfs_distance(db: &RouteDb, net: NetId, from: Step, to: Step) -> Option<u64> {
    let grid = db.grid();
    let mut dist: HashMap<(Point, Layer), u64> = HashMap::new();
    let mut queue = VecDeque::new();
    if !grid.admits(from.at, from.layer, net) {
        return None;
    }
    dist.insert((from.at, from.layer), 0);
    queue.push_back((from.at, from.layer));
    while let Some((p, layer)) = queue.pop_front() {
        let d = dist[&(p, layer)];
        if (p, layer) == (to.at, to.layer) {
            return Some(d);
        }
        let push = |np: Point,
                    nl: Layer,
                    dist: &mut HashMap<(Point, Layer), u64>,
                    queue: &mut VecDeque<(Point, Layer)>| {
            if grid.admits(np, nl, net) && !dist.contains_key(&(np, nl)) {
                dist.insert((np, nl), d + 1);
                queue.push_back((np, nl));
            }
        };
        for n in p.neighbors() {
            push(n, layer, &mut dist, &mut queue);
        }
        for adj in layer.adjacent() {
            push(p, adj, &mut dist, &mut queue);
        }
    }
    None
}

#[test]
fn uniform_astar_matches_bfs() {
    let mut rng = Rng(0x1EE0);
    for _ in 0..96 {
        let (fx, fy, fl) = (rng.coord(), rng.coord(), rng.coin());
        let (tx, ty, tl) = (rng.coord(), rng.coord(), rng.coin());
        let n_obstacles = rng.below(20);
        let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
        for _ in 0..n_obstacles {
            let (x, y) = (rng.coord(), rng.coord());
            // Keep the endpoints clear.
            if (x, y) != (fx, fy) && (x, y) != (tx, ty) {
                b.obstacle(Point::new(x, y));
            }
        }
        b.net("n").pin_at(Point::new(fx, fy), Layer::M1).pin_at(Point::new(tx, ty), Layer::M1);
        let Ok(problem) = b.build() else { continue };
        let db = RouteDb::new(&problem);
        let net = problem.nets()[0].id;

        let layer = |m2: bool| if m2 { Layer::M2 } else { Layer::M1 };
        let from = Step::new(Point::new(fx, fy), layer(fl));
        let to = Step::new(Point::new(tx, ty), layer(tl));
        // Pins are on M1; M2 endpoints may be blocked only by obstacles.
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![from],
            targets: vec![to],
            cost: CostModel::uniform(),
        };
        let astar = find_path(&query).map(|f| f.cost);
        let bfs = if db.grid().admits(to.at, to.layer, net) {
            bfs_distance(&db, net, from, to)
        } else {
            None
        };
        assert_eq!(astar, bfs, "A* and BFS disagree from {from} to {to}");
    }
}
