//! Property tests pinning the frontier-equivalence contract: under any
//! interleaving of pushes and pops — duplicate entries, decreasing
//! keys after pops (cursor rewind), calendar/spill crossings at
//! [`BUCKET_SPAN`] — [`BucketFrontier`] pops exactly the sequence
//! [`HeapFrontier`] pops. The A* loop relies on this for bit-identical
//! results across [`FrontierKind`]s.

use route_maze::{BucketFrontier, Frontier, FrontierKind, HeapFrontier, BUCKET_SPAN};

/// Deterministic SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

fn lockstep(rng: &mut Rng, ops: usize, f_span: u64) {
    let mut heap = HeapFrontier::new();
    let mut buckets = BucketFrontier::new();
    for op in 0..ops {
        if rng.below(3) == 0 {
            assert_eq!(buckets.pop(), heap.pop(), "pop {op} diverged");
        } else {
            let f = rng.below(f_span);
            let g = rng.below(64);
            let idx = rng.below(1 << 20) as u32;
            heap.push(f, g, idx);
            buckets.push(f, g, idx);
        }
        assert_eq!(buckets.len(), heap.len(), "len after op {op}");
        assert_eq!(buckets.is_empty(), heap.is_empty());
    }
    while !heap.is_empty() {
        assert_eq!(buckets.pop(), heap.pop(), "drain diverged");
    }
    assert_eq!(buckets.pop(), None);
}

#[test]
fn random_interleavings_pop_identically_within_the_calendar() {
    for seed in 0..16 {
        lockstep(&mut Rng(seed), 800, BUCKET_SPAN as u64 / 2);
    }
}

#[test]
fn random_interleavings_pop_identically_across_the_spill_boundary() {
    // Half the keys land in the overflow heap (f >= BUCKET_SPAN).
    for seed in 100..112 {
        lockstep(&mut Rng(seed), 800, BUCKET_SPAN as u64 * 2);
    }
}

#[test]
fn duplicate_entries_drain_identically() {
    let mut heap = HeapFrontier::new();
    let mut buckets = BucketFrontier::new();
    for _ in 0..3 {
        for (f, g, idx) in [(5, 1, 7), (5, 1, 7), (5, 0, 9), (0, 0, 0)] {
            heap.push(f, g, idx);
            buckets.push(f, g, idx);
        }
    }
    while !heap.is_empty() {
        assert_eq!(buckets.pop(), heap.pop());
    }
    assert!(buckets.is_empty());
}

#[test]
fn cursor_rewinds_when_smaller_keys_arrive_after_pops() {
    let mut heap = HeapFrontier::new();
    let mut buckets = BucketFrontier::new();
    // Drive the bucket cursor deep into the calendar, then push below it.
    for f in [100u64, 200, 300] {
        heap.push(f, 0, f as u32);
        buckets.push(f, 0, f as u32);
    }
    assert_eq!(buckets.pop(), heap.pop());
    assert_eq!(buckets.pop(), heap.pop()); // cursor now at 200's bucket
    for f in [3u64, 150, 250] {
        heap.push(f, 0, f as u32);
        buckets.push(f, 0, f as u32);
    }
    let mut order = Vec::new();
    while let Some(e) = heap.pop() {
        assert_eq!(buckets.pop(), Some(e));
        order.push(e.0);
    }
    assert_eq!(order, vec![3, 150, 250, 300]);
}

#[test]
fn clear_resets_both_impls_to_the_same_state() {
    let mut rng = Rng(0xDECAF);
    let mut heap = HeapFrontier::new();
    let mut buckets = BucketFrontier::new();
    for round in 0..4 {
        for _ in 0..50 {
            let (f, g, idx) =
                (rng.below(BUCKET_SPAN as u64 * 2), rng.below(8), rng.below(100) as u32);
            heap.push(f, g, idx);
            buckets.push(f, g, idx);
        }
        let _ = heap.pop();
        let _ = buckets.pop();
        heap.clear();
        buckets.clear();
        assert!(heap.is_empty() && buckets.is_empty(), "round {round}");
        // A cleared frontier behaves like a fresh one.
        heap.push(round, 0, 1);
        buckets.push(round, 0, 1);
        assert_eq!(buckets.pop(), heap.pop());
    }
}

#[test]
fn kind_constructs_the_matching_impl() {
    // The config knob round-trips through names and Default.
    assert_eq!(FrontierKind::default(), FrontierKind::Buckets);
    assert_eq!("heap".parse::<FrontierKind>(), Ok(FrontierKind::Heap));
    assert_eq!("buckets".parse::<FrontierKind>(), Ok(FrontierKind::Buckets));
    assert!("splay".parse::<FrontierKind>().is_err());
}
