//! Property-based tests of the maze search: path legality, cost
//! consistency, and agreement with the problem's obstacles.

use proptest::prelude::*;

use route_geom::{Layer, Point};
use route_maze::search::{find_path, find_path_soft, Query};
use route_maze::CostModel;
use route_model::{Occupant, ProblemBuilder, RouteDb, Step};

const SIDE: i32 = 10;

fn arb_cell() -> impl Strategy<Value = Point> {
    (0..SIDE, 0..SIDE).prop_map(|(x, y)| Point::new(x, y))
}

fn setup(obstacles: &[Point]) -> RouteDb {
    let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
    for &p in obstacles {
        // Keep corners free so sources/targets usually survive.
        b.obstacle(p);
    }
    b.net("n").pin_at(Point::new(0, 0), Layer::M1).pin_at(
        Point::new(SIDE - 1, SIDE - 1),
        Layer::M1,
    );
    // Obstacles may cover the pins; retry without those obstacles.
    match b.build() {
        Ok(p) => RouteDb::new(&p),
        Err(_) => {
            let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
            for &p in obstacles {
                if p != Point::new(0, 0) && p != Point::new(SIDE - 1, SIDE - 1) {
                    b.obstacle(p);
                }
            }
            b.net("n").pin_at(Point::new(0, 0), Layer::M1).pin_at(
                Point::new(SIDE - 1, SIDE - 1),
                Layer::M1,
            );
            RouteDb::new(&b.build().expect("pins now clear"))
        }
    }
}

proptest! {
    /// Any found path is contiguous, avoids blocked cells, and starts and
    /// ends at the requested slots.
    #[test]
    fn found_paths_are_legal(
        obstacles in prop::collection::vec(arb_cell(), 0..25),
        from in arb_cell(),
        to in arb_cell(),
    ) {
        let db = setup(&obstacles);
        let net = route_model::NetId(0);
        let (src, dst) = (Step::new(from, Layer::M1), Step::new(to, Layer::M2));
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![src],
            targets: vec![dst],
            cost: CostModel::default(),
        };
        if let Some(found) = find_path(&query) {
            let steps = found.trace.steps();
            prop_assert_eq!(steps[0], src);
            prop_assert_eq!(*steps.last().expect("nonempty"), dst);
            for s in steps {
                prop_assert!(db.grid().occupant(s.at, s.layer) != Occupant::Blocked);
            }
            // Trace validity (contiguity) is enforced by construction;
            // committing it must succeed.
            let mut db2 = db.clone();
            prop_assert!(db2.commit(net, found.trace).is_ok());
        }
    }

    /// The optimal cost never exceeds the cost of any specific legal
    /// alternative: adding obstacles can only increase the path cost.
    #[test]
    fn obstacles_never_decrease_cost(
        obstacles in prop::collection::vec(arb_cell(), 0..20),
        from in arb_cell(),
        to in arb_cell(),
    ) {
        let empty = setup(&[]);
        let walled = setup(&obstacles);
        let net = route_model::NetId(0);
        let q_empty = Query {
            grid: empty.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M1)],
            cost: CostModel::default(),
        };
        let q_walled = Query {
            grid: walled.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M1)],
            cost: CostModel::default(),
        };
        let base = find_path(&q_empty);
        let hard = find_path(&q_walled);
        if let (Some(b), Some(h)) = (base, hard) {
            prop_assert!(h.cost >= b.cost,
                "obstacles reduced cost: {} < {}", h.cost, b.cost);
        }
    }

    /// The soft search with an always-permissive closure finds a path
    /// whenever the hard search does, at no greater cost.
    #[test]
    fn soft_subsumes_hard(
        obstacles in prop::collection::vec(arb_cell(), 0..20),
        from in arb_cell(),
        to in arb_cell(),
    ) {
        let db = setup(&obstacles);
        let net = route_model::NetId(0);
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M2)],
            cost: CostModel::default(),
        };
        let hard = find_path(&query);
        let soft = find_path_soft(&query, &|_, _, _| Some(0));
        if let Some(h) = hard {
            let s = soft.expect("soft must find a path when hard does");
            prop_assert!(s.cost <= h.cost);
        }
    }
}
