//! Property-style tests of the maze search: path legality, cost
//! consistency, and agreement with the problem's obstacles. Inputs come
//! from a deterministic in-file generator so the crate builds with zero
//! registry access.

use route_geom::{Layer, Point};
use route_maze::search::{find_path, find_path_soft, Query};
use route_maze::CostModel;
use route_model::{Occupant, ProblemBuilder, RouteDb, Step};

const SIDE: i32 = 10;

/// Tiny deterministic generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn cell(&mut self) -> Point {
        Point::new(self.below(SIDE as u64) as i32, self.below(SIDE as u64) as i32)
    }

    fn cells(&mut self, max: u64) -> Vec<Point> {
        let n = self.below(max);
        (0..n).map(|_| self.cell()).collect()
    }
}

fn setup(obstacles: &[Point]) -> RouteDb {
    let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
    for &p in obstacles {
        // Keep corners free so sources/targets usually survive.
        b.obstacle(p);
    }
    b.net("n")
        .pin_at(Point::new(0, 0), Layer::M1)
        .pin_at(Point::new(SIDE - 1, SIDE - 1), Layer::M1);
    // Obstacles may cover the pins; retry without those obstacles.
    match b.build() {
        Ok(p) => RouteDb::new(&p),
        Err(_) => {
            let mut b = ProblemBuilder::switchbox(SIDE as u32, SIDE as u32);
            for &p in obstacles {
                if p != Point::new(0, 0) && p != Point::new(SIDE - 1, SIDE - 1) {
                    b.obstacle(p);
                }
            }
            b.net("n")
                .pin_at(Point::new(0, 0), Layer::M1)
                .pin_at(Point::new(SIDE - 1, SIDE - 1), Layer::M1);
            RouteDb::new(&b.build().expect("pins now clear"))
        }
    }
}

/// Any found path is contiguous, avoids blocked cells, and starts and
/// ends at the requested slots.
#[test]
fn found_paths_are_legal() {
    let mut rng = Rng(0x5E01);
    for _ in 0..120 {
        let obstacles = rng.cells(25);
        let (from, to) = (rng.cell(), rng.cell());
        let db = setup(&obstacles);
        let net = route_model::NetId(0);
        let (src, dst) = (Step::new(from, Layer::M1), Step::new(to, Layer::M2));
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![src],
            targets: vec![dst],
            cost: CostModel::default(),
        };
        if let Some(found) = find_path(&query) {
            let steps = found.trace.steps();
            assert_eq!(steps[0], src);
            assert_eq!(*steps.last().expect("nonempty"), dst);
            for s in steps {
                assert!(db.grid().occupant(s.at, s.layer) != Occupant::Blocked);
            }
            // Trace validity (contiguity) is enforced by construction;
            // committing it must succeed.
            let mut db2 = db.clone();
            assert!(db2.commit(net, found.trace).is_ok());
        }
    }
}

/// The optimal cost never exceeds the cost of any specific legal
/// alternative: adding obstacles can only increase the path cost.
#[test]
fn obstacles_never_decrease_cost() {
    let mut rng = Rng(0x5E02);
    for _ in 0..120 {
        let obstacles = rng.cells(20);
        let (from, to) = (rng.cell(), rng.cell());
        let empty = setup(&[]);
        let walled = setup(&obstacles);
        let net = route_model::NetId(0);
        let q_empty = Query {
            grid: empty.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M1)],
            cost: CostModel::default(),
        };
        let q_walled = Query {
            grid: walled.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M1)],
            cost: CostModel::default(),
        };
        let base = find_path(&q_empty);
        let hard = find_path(&q_walled);
        if let (Some(b), Some(h)) = (base, hard) {
            assert!(h.cost >= b.cost, "obstacles reduced cost: {} < {}", h.cost, b.cost);
        }
    }
}

/// The soft search with an always-permissive closure finds a path
/// whenever the hard search does, at no greater cost.
#[test]
fn soft_subsumes_hard() {
    let mut rng = Rng(0x5E03);
    for _ in 0..120 {
        let obstacles = rng.cells(20);
        let (from, to) = (rng.cell(), rng.cell());
        let db = setup(&obstacles);
        let net = route_model::NetId(0);
        let query = Query {
            grid: db.grid(),
            net,
            sources: vec![Step::new(from, Layer::M1)],
            targets: vec![Step::new(to, Layer::M2)],
            cost: CostModel::default(),
        };
        let hard = find_path(&query);
        let soft = find_path_soft(&query, &|_, _, _| Some(0));
        if let Some(h) = hard {
            let s = soft.expect("soft must find a path when hard does");
            assert!(s.cost <= h.cost);
        }
    }
}
