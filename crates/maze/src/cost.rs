use route_geom::{Axis, Layer};

/// Weights used by the maze search to score candidate paths.
///
/// All weights are in abstract cost units; only their ratios matter. The
/// default reproduces the conventions of classic detailed routers: unit
/// wire steps, vias three times as expensive as a step, and a mild
/// penalty for wiring against a layer's preferred direction.
///
/// # Examples
///
/// ```
/// use route_maze::CostModel;
/// use route_geom::{Axis, Layer};
///
/// let cost = CostModel::default();
/// // Preferred-direction step is cheap...
/// assert_eq!(cost.step_cost(Layer::M1, Axis::Horizontal), cost.step);
/// // ...wrong-way step pays the penalty.
/// assert_eq!(
///     cost.step_cost(Layer::M1, Axis::Vertical),
///     cost.step + cost.wrong_way
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one wire step in a layer's preferred direction.
    pub step: u32,
    /// Cost of a via (layer change).
    pub via: u32,
    /// Extra cost of a step against the layer's preferred axis.
    pub wrong_way: u32,
    /// Extra cost of a 90-degree bend on the same layer.
    pub bend: u32,
}

impl CostModel {
    /// Uniform unit-cost model: pure Lee wavefront behaviour (vias still
    /// cost one step; no direction or bend preference).
    pub const fn uniform() -> Self {
        CostModel { step: 1, via: 1, wrong_way: 0, bend: 0 }
    }

    /// Cost of a single wire step on `layer` travelling along `axis`.
    pub const fn step_cost(&self, layer: Layer, axis: Axis) -> u32 {
        if matches!(
            (layer.preferred_axis(), axis),
            (Axis::Horizontal, Axis::Horizontal) | (Axis::Vertical, Axis::Vertical)
        ) {
            self.step
        } else {
            self.step + self.wrong_way
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { step: 1, via: 3, wrong_way: 1, bend: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios() {
        let c = CostModel::default();
        assert!(c.via > c.step);
        assert_eq!(c.step_cost(Layer::M2, Axis::Vertical), 1);
        assert_eq!(c.step_cost(Layer::M2, Axis::Horizontal), 2);
    }

    #[test]
    fn uniform_has_no_preferences() {
        let c = CostModel::uniform();
        for l in Layer::ALL {
            for a in [Axis::Horizontal, Axis::Vertical] {
                assert_eq!(c.step_cost(l, a), 1);
            }
        }
    }
}
