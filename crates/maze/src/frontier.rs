//! Open-list ("frontier") implementations for the search cores.
//!
//! Every priority queue in the workspace speaks one vocabulary: a
//! [`Frontier`] holds `(f, g, idx)` entries and pops the minimum in
//! strict lexicographic `(f, g, idx)` order. Because entries are unique
//! (a node is only re-pushed with a strictly smaller `g`, hence smaller
//! `f`), that order is total — so **every implementation pops the exact
//! same sequence**, and a router may switch implementations without
//! changing a single committed trace. That bit-for-bit parity is what
//! lets [`BucketFrontier`] be the default while the binary heap remains
//! available as the reference.
//!
//! Two implementations:
//!
//! - [`HeapFrontier`] — the classic `BinaryHeap<Reverse<_>>`, `O(log n)`
//!   per operation. The baseline idiom.
//! - [`BucketFrontier`] — a Dial-style bucket queue: path costs are
//!   small bounded integers, so keys `f` below [`BUCKET_SPAN`] index a
//!   flat calendar of buckets popped by a monotone cursor (`O(1)`
//!   amortized). Keys at or above the span (soft-search interference
//!   penalties can reach `base_penalty << max_penalty_doublings`) spill
//!   into an overflow heap that is only consulted once the calendar is
//!   empty — every spilled key is `>=` every calendar key, so order is
//!   preserved.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

/// Number of distinct `f` values the [`BucketFrontier`] calendar covers
/// before keys spill to the overflow heap.
///
/// Hard searches on the shipped cost models stay far below this (grid
/// diameter times a single-digit step cost); only soft searches paying
/// escalated rip-up penalties ever spill.
pub const BUCKET_SPAN: usize = 4096;

/// A min-priority open list over `(f, g, idx)` entries.
///
/// `f` is the A* key (`g + h`), `g` the settled path cost, `idx` the
/// node. [`Frontier::pop`] must return entries in strictly increasing
/// lexicographic `(f, g, idx)` order — implementations are
/// interchangeable bit for bit.
pub trait Frontier {
    /// Removes every entry, keeping allocations for reuse.
    fn clear(&mut self);
    /// Inserts an entry.
    fn push(&mut self, f: u64, g: u64, idx: u32);
    /// Removes and returns the minimum entry by `(f, g, idx)`.
    fn pop(&mut self) -> Option<(u64, u64, u32)>;
    /// Current number of entries (stale entries included — the search
    /// core counts them identically for every implementation).
    fn len(&self) -> usize;
    /// Whether the frontier holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which [`Frontier`] implementation a router's searches use.
///
/// The two produce bit-identical results; the choice is purely a
/// performance knob, and [`FrontierKind::Buckets`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierKind {
    /// `BinaryHeap`-backed [`HeapFrontier`] (the reference baseline).
    Heap,
    /// Dial-style [`BucketFrontier`] (the fast default).
    #[default]
    Buckets,
}

impl FrontierKind {
    /// Stable lowercase name, as accepted by [`FromStr`].
    pub const fn as_str(self) -> &'static str {
        match self {
            FrontierKind::Heap => "heap",
            FrontierKind::Buckets => "buckets",
        }
    }
}

impl fmt::Display for FrontierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FrontierKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(FrontierKind::Heap),
            "buckets" => Ok(FrontierKind::Buckets),
            other => Err(format!("unknown frontier {other:?} (expected heap|buckets)")),
        }
    }
}

/// The classic binary-heap frontier: `BinaryHeap<Reverse<(f, g, idx)>>`.
#[derive(Debug, Default)]
pub struct HeapFrontier {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl HeapFrontier {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        HeapFrontier::default()
    }
}

impl Frontier for HeapFrontier {
    #[inline]
    fn clear(&mut self) {
        self.heap.clear();
    }

    #[inline]
    fn push(&mut self, f: u64, g: u64, idx: u32) {
        self.heap.push(Reverse((f, g, idx)));
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A Dial-style bucket frontier.
///
/// Keys `f < BUCKET_SPAN` land in `buckets[f]`, a flat calendar walked
/// by a monotone cursor; each bucket is kept sorted descending by
/// `(g, idx)` (entries are unique — a node re-pushed with a smaller `g`
/// lands in a smaller-`f` bucket), so the minimum pops off the back in
/// `O(1)`. Keys `f >= BUCKET_SPAN` go to an overflow heap, popped only
/// when the calendar is empty. A push below the cursor rewinds it, so
/// the pop order is the global `(f, g, idx)` minimum even if a caller's
/// heuristic is not consistent.
#[derive(Debug)]
pub struct BucketFrontier {
    /// `buckets[f]` holds the `(g, idx)` entries with that exact `f`,
    /// sorted descending (the minimum is last).
    buckets: Vec<Vec<(u64, u32)>>,
    /// One bit per calendar bucket, set iff the bucket is non-empty —
    /// the cursor skips runs of empty buckets with `trailing_zeros`
    /// instead of probing them one by one.
    occ: [u64; BUCKET_SPAN / 64],
    /// Bucket indices dirtied since the last clear (sparse cleanup).
    touched: Vec<u32>,
    /// Cursor: no non-empty bucket lies below it.
    cur: usize,
    /// Live entries in the calendar.
    ringed: usize,
    /// Entries with `f >= BUCKET_SPAN`.
    spill: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl Default for BucketFrontier {
    fn default() -> Self {
        BucketFrontier::new()
    }
}

impl BucketFrontier {
    /// Creates an empty frontier; buckets are grown lazily.
    pub fn new() -> Self {
        BucketFrontier {
            buckets: Vec::new(),
            occ: [0; BUCKET_SPAN / 64],
            touched: Vec::new(),
            cur: BUCKET_SPAN,
            ringed: 0,
            spill: BinaryHeap::new(),
        }
    }
}

impl Frontier for BucketFrontier {
    fn clear(&mut self) {
        for &b in &self.touched {
            self.buckets[b as usize].clear();
        }
        self.touched.clear();
        self.occ = [0; BUCKET_SPAN / 64];
        self.spill.clear();
        self.cur = BUCKET_SPAN;
        self.ringed = 0;
    }

    fn push(&mut self, f: u64, g: u64, idx: u32) {
        if f < BUCKET_SPAN as u64 {
            let fi = f as usize;
            if fi >= self.buckets.len() {
                self.buckets.resize_with(fi + 1, Vec::new);
            }
            let bucket = &mut self.buckets[fi];
            if bucket.is_empty() {
                self.touched.push(fi as u32);
                self.occ[fi >> 6] |= 1 << (fi & 63);
            }
            // Descending insert keeps the bucket minimum at the back.
            let at = bucket.partition_point(|&e| e > (g, idx));
            bucket.insert(at, (g, idx));
            if fi < self.cur {
                self.cur = fi;
            }
            self.ringed += 1;
        } else {
            self.spill.push(Reverse((f, g, idx)));
        }
    }

    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        if self.ringed == 0 {
            return self.spill.pop().map(|Reverse(e)| e);
        }
        // `ringed > 0` guarantees a set occupancy bit at or above the
        // cursor (pushes below the cursor rewind it).
        let mut w = self.cur >> 6;
        let mut bits = self.occ[w] & (u64::MAX << (self.cur & 63));
        while bits == 0 {
            w += 1;
            bits = self.occ[w];
        }
        self.cur = (w << 6) | bits.trailing_zeros() as usize;
        let bucket = &mut self.buckets[self.cur];
        let (g, idx) = bucket.pop().expect("occupancy bit set implies a non-empty bucket");
        if bucket.is_empty() {
            self.occ[self.cur >> 6] &= !(1 << (self.cur & 63));
        }
        self.ringed -= 1;
        Some((self.cur as u64, g, idx))
    }

    #[inline]
    fn len(&self) -> usize {
        self.ringed + self.spill.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pops everything, checking strict lexicographic order.
    fn drain(f: &mut dyn Frontier) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = f.pop() {
            if let Some(prev) = out.last() {
                assert!(*prev < e, "pop order regressed: {prev:?} then {e:?}");
            }
            out.push(e);
        }
        out
    }

    #[test]
    fn heap_and_buckets_pop_identically() {
        // A mix of duplicate f, duplicate (f, g), cursor rewinds and
        // spill-range keys, interleaved with pops.
        let entries: Vec<(u64, u64, u32)> = vec![
            (10, 4, 9),
            (10, 4, 2),
            (3, 0, 7),
            (10, 1, 5),
            (BUCKET_SPAN as u64 + 50, 9, 1),
            (3, 2, 0),
            (BUCKET_SPAN as u64, 0, 0),
            (7, 7, 7),
        ];
        let mut heap = HeapFrontier::new();
        let mut buckets = BucketFrontier::new();
        for &(f, g, i) in &entries {
            heap.push(f, g, i);
            buckets.push(f, g, i);
            assert_eq!(heap.len(), buckets.len());
        }
        // Interleave: pop two, push one *below* everything popped so far
        // is illegal for A*, but the frontier must still order globally.
        assert_eq!(heap.pop(), buckets.pop());
        assert_eq!(heap.pop(), buckets.pop());
        heap.push(1, 0, 3);
        buckets.push(1, 0, 3);
        assert_eq!(heap.pop(), Some((1, 0, 3)));
        assert_eq!(buckets.pop(), Some((1, 0, 3)));
        assert_eq!(drain(&mut heap), drain(&mut buckets));
        assert!(heap.is_empty() && buckets.is_empty());
    }

    #[test]
    fn bucket_clear_resets_sparsely() {
        let mut f = BucketFrontier::new();
        f.push(100, 0, 1);
        f.push(BUCKET_SPAN as u64 * 2, 0, 2);
        assert_eq!(f.len(), 2);
        f.clear();
        assert_eq!(f.len(), 0);
        assert_eq!(f.pop(), None);
        // Reuse after clear starts fresh.
        f.push(5, 1, 4);
        f.push(5, 0, 9);
        assert_eq!(f.pop(), Some((5, 0, 9)));
        assert_eq!(f.pop(), Some((5, 1, 4)));
    }

    #[test]
    fn spill_pops_after_calendar() {
        let mut f = BucketFrontier::new();
        f.push(BUCKET_SPAN as u64 + 1, 0, 1);
        f.push(2, 0, 2);
        assert_eq!(f.pop(), Some((2, 0, 2)));
        assert_eq!(f.pop(), Some((BUCKET_SPAN as u64 + 1, 0, 1)));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in [FrontierKind::Heap, FrontierKind::Buckets] {
            assert_eq!(kind.as_str().parse::<FrontierKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("fibonacci".parse::<FrontierKind>().is_err());
        assert_eq!(FrontierKind::default(), FrontierKind::Buckets);
    }
}
