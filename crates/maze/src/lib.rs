//! Maze-routing substrate: grid path search for detailed routers.
//!
//! Two search modes are provided over the multi-layer occupancy grid of
//! [`route_model`]:
//!
//! * [`search::find_path`] — classic **hard** search: the path may only use
//!   cells that are free or already owned by the routed net. With unit
//!   costs this is Lee's wavefront algorithm; with the weighted
//!   [`CostModel`] it is A* with via, bend and wrong-way penalties.
//! * [`search::find_path_soft`] — **interference** search: cells occupied
//!   by *other* nets may be crossed at a caller-supplied penalty. The
//!   result reports exactly which foreign slots the path runs over, which
//!   is the information a rip-up/reroute router needs to decide what to
//!   push aside (weak modification) or rip up (strong modification).
//!
//! The [`sequential`] module builds a complete baseline router out of the
//! hard search: nets are routed one at a time in a fixed order with no
//! modification of earlier nets — the classic sequential Lee router whose
//! failure on congested switchboxes motivates rip-up and reroute.
//!
//! # Examples
//!
//! ```
//! use route_model::{ProblemBuilder, PinSide, RouteDb};
//! use route_maze::{sequential, CostModel};
//! use route_verify::verify;
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! b.net("b").pin_side(PinSide::Bottom, 2).pin_side(PinSide::Top, 6);
//! let problem = b.build()?;
//!
//! let outcome = sequential::route_all(&problem, CostModel::default());
//! assert!(outcome.failed.is_empty());
//! assert!(verify(&problem, &outcome.db).is_clean());
//! # Ok::<(), route_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod cost;
pub mod frontier;
pub mod search;
pub mod sequential;

pub use cost::CostModel;
pub use frontier::{BucketFrontier, Frontier, FrontierKind, HeapFrontier, BUCKET_SPAN};
pub use search::{FoundPath, ProbeKind, SearchArena, SearchStats, SoftPath};
pub use sequential::{LeeRouter, SequentialOutcome};
