//! Weighted A* path search over the multi-layer occupancy grid.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use route_geom::{Dir, Layer, Point, NUM_LAYERS};
use route_model::{Grid, NetId, Occupant, RouteObserver, SearchKind, SearchProbe, Step, Trace};

use crate::CostModel;

/// A path-search request: connect any of `sources` to any of `targets`
/// with wiring of `net` over `grid`.
///
/// Sources are typically the net's already-connected component (pins plus
/// committed wiring); targets the next pin to attach. Slots the net may
/// not occupy are silently dropped from both sets.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    /// The occupancy grid to search.
    pub grid: &'a Grid,
    /// The net being routed.
    pub net: NetId,
    /// Starting slots (cost zero).
    pub sources: Vec<Step>,
    /// Goal slots; the search stops at the first one settled.
    pub targets: Vec<Step>,
    /// Cost weights.
    pub cost: CostModel,
}

/// Search effort counters, used by the scaling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Nodes settled (popped with final cost).
    pub expanded: usize,
    /// Edge relaxations attempted.
    pub relaxed: usize,
    /// Largest open-list (heap) size reached during the search.
    pub heap_peak: usize,
}

impl SearchStats {
    /// The observer-facing snapshot of these counters.
    pub fn probe(&self, found: bool) -> SearchProbe {
        SearchProbe {
            expanded: self.expanded as u64,
            relaxed: self.relaxed as u64,
            heap_peak: self.heap_peak as u64,
            found,
        }
    }
}

/// A successful hard search: a committable [`Trace`] and its cost.
#[derive(Debug, Clone)]
pub struct FoundPath {
    /// The path, from a source to a target.
    pub trace: Trace,
    /// Total path cost under the query's [`CostModel`].
    pub cost: u64,
    /// Effort counters.
    pub stats: SearchStats,
}

/// A successful interference (soft) search: the path plus every foreign
/// slot it crosses.
#[derive(Debug, Clone)]
pub struct SoftPath {
    /// The path, from a source to a target.
    pub trace: Trace,
    /// Total path cost including interference penalties.
    pub cost: u64,
    /// Foreign slots on the path, with their owning net at search time.
    /// Empty means the path is committable as-is.
    pub crossings: Vec<(NetId, Step)>,
    /// Effort counters.
    pub stats: SearchStats,
}

/// Reusable scratch memory for repeated searches.
///
/// A single A* call over a `W x H` grid allocates three node-indexed
/// arrays plus a heap; a router makes thousands of such calls over the
/// same grid. The arena keeps the buffers alive between calls and clears
/// them *sparsely* — only the nodes actually touched by the previous
/// search are reset — so the per-call cost is proportional to the search
/// frontier, not the grid.
///
/// Results are bit-identical to the allocation-per-call entry points
/// ([`find_path`] / [`find_path_soft`]): the arena changes where the
/// buffers live, never what the search computes. One arena may serve
/// grids of different sizes; it grows to the largest seen.
///
/// # Examples
///
/// ```
/// use route_maze::{search, CostModel, SearchArena};
/// use route_model::{ProblemBuilder, PinSide, RouteDb, Step};
/// use route_geom::{Layer, Point};
///
/// let mut b = ProblemBuilder::switchbox(8, 8);
/// b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
/// let problem = b.build()?;
/// let db = RouteDb::new(&problem);
/// let mut arena = SearchArena::new();
/// let q = search::Query {
///     grid: db.grid(),
///     net: problem.nets()[0].id,
///     sources: vec![Step::new(Point::new(0, 3), Layer::M1)],
///     targets: vec![Step::new(Point::new(7, 3), Layer::M1)],
///     cost: CostModel::default(),
/// };
/// let fresh = search::find_path(&q).unwrap();
/// let reused = search::find_path_with(&mut arena, &q).unwrap();
/// assert_eq!(fresh.cost, reused.cost);
/// # Ok::<(), route_model::ProblemError>(())
/// ```
#[derive(Debug, Default)]
pub struct SearchArena {
    dist: Vec<u64>,
    prev: Vec<u32>,
    target_mask: Vec<bool>,
    /// Node indices written since the last reset (dist/prev/target_mask).
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl SearchArena {
    /// Creates an empty arena; buffers are sized lazily on first use.
    pub fn new() -> Self {
        SearchArena::default()
    }

    /// Clears the previous search's marks and guarantees capacity for
    /// `n_nodes` nodes.
    fn reset(&mut self, n_nodes: usize) {
        for &idx in &self.touched {
            let idx = idx as usize;
            self.dist[idx] = u64::MAX;
            self.prev[idx] = NO_PREV;
            self.target_mask[idx] = false;
        }
        self.touched.clear();
        self.heap.clear();
        if self.dist.len() < n_nodes {
            self.dist.resize(n_nodes, u64::MAX);
            self.prev.resize(n_nodes, NO_PREV);
            self.target_mask.resize(n_nodes, false);
        }
    }
}

/// Finds a minimum-cost path using only cells that are free or already
/// owned by the queried net.
///
/// Returns `None` when no such path exists (or the source/target sets are
/// empty after dropping unusable slots).
pub fn find_path(query: &Query<'_>) -> Option<FoundPath> {
    find_path_with(&mut SearchArena::new(), query)
}

/// Like [`find_path`], but reuses the scratch buffers in `arena` instead
/// of allocating per call — the hot-path entry point for routers.
pub fn find_path_with(arena: &mut SearchArena, query: &Query<'_>) -> Option<FoundPath> {
    let (found, _) = run(arena, query, None);
    let found = found?;
    Some(FoundPath { trace: found.trace, cost: found.cost, stats: found.stats })
}

/// Like [`find_path_with`], but reports the search to `obs` via
/// [`RouteObserver::on_search_done`] — including the effort spent on
/// *failed* searches, which the un-observed entry points discard.
///
/// The observer only watches: results are bit-identical to
/// [`find_path_with`].
pub fn find_path_observed(
    arena: &mut SearchArena,
    query: &Query<'_>,
    obs: &mut dyn RouteObserver,
) -> Option<FoundPath> {
    let (found, stats) = run(arena, query, None);
    obs.on_search_done(query.net, SearchKind::Hard, stats.probe(found.is_some()));
    let found = found?;
    Some(FoundPath { trace: found.trace, cost: found.cost, stats: found.stats })
}

/// Finds a minimum-cost path that may additionally cross slots occupied
/// by other nets, paying `soft(point, layer, owner)` extra per crossed
/// slot. A return of `None` from the closure marks that slot impassable
/// (e.g. a foreign pin, which can never be moved out of the way).
///
/// The returned [`SoftPath::crossings`] lists every foreign slot on the
/// chosen path — the candidates for weak or strong modification.
pub fn find_path_soft(
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
) -> Option<SoftPath> {
    find_path_soft_with(&mut SearchArena::new(), query, soft)
}

/// Like [`find_path_soft`], but reuses the scratch buffers in `arena`.
pub fn find_path_soft_with(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
) -> Option<SoftPath> {
    run(arena, query, Some(soft)).0
}

/// Like [`find_path_soft_with`], but reports the search (found or not)
/// to `obs` via [`RouteObserver::on_search_done`]. Results are
/// bit-identical to [`find_path_soft_with`].
pub fn find_path_soft_observed(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
    obs: &mut dyn RouteObserver,
) -> Option<SoftPath> {
    let (found, stats) = run(arena, query, Some(soft));
    obs.on_search_done(query.net, SearchKind::Soft, stats.probe(found.is_some()));
    found
}

const NO_PREV: u32 = u32::MAX;

#[inline]
fn node_index(grid: &Grid, p: Point, layer: Layer) -> usize {
    (p.y as usize * grid.width() as usize + p.x as usize) * NUM_LAYERS + layer.index()
}

#[inline]
fn node_point(grid: &Grid, idx: usize) -> (Point, Layer) {
    let layer = Layer::from_index(idx % NUM_LAYERS);
    let cell = idx / NUM_LAYERS;
    let w = grid.width() as usize;
    (Point::new((cell % w) as i32, (cell / w) as i32), layer)
}

/// Cost of entering `(p, layer)` for `net`, or `None` if impassable.
fn enter_cost(
    grid: &Grid,
    net: NetId,
    p: Point,
    layer: Layer,
    soft: Option<&dyn Fn(Point, Layer, NetId) -> Option<u64>>,
) -> Option<u64> {
    if !grid.in_bounds(p) {
        return None;
    }
    match grid.occupant(p, layer) {
        Occupant::Free => Some(0),
        Occupant::Net(owner) if owner == net => Some(0),
        Occupant::Net(owner) => soft.and_then(|f| f(p, layer, owner)),
        Occupant::Blocked => None,
    }
}

/// The search core: always returns the effort counters, even when no
/// path exists, so observed entry points can report failed searches.
fn run(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: Option<&dyn Fn(Point, Layer, NetId) -> Option<u64>>,
) -> (Option<SoftPath>, SearchStats) {
    let grid = query.grid;
    let n_nodes = grid.width() as usize * grid.height() as usize * NUM_LAYERS;
    arena.reset(n_nodes);
    let SearchArena { dist, prev, target_mask, touched, heap } = arena;
    let mut stats = SearchStats::default();

    let usable = |s: &Step| grid.admits(s.at, s.layer, query.net);
    let targets: Vec<Step> = query.targets.iter().filter(|s| usable(s)).copied().collect();
    if targets.is_empty() {
        return (None, stats);
    }
    for t in &targets {
        let idx = node_index(grid, t.at, t.layer);
        target_mask[idx] = true;
        touched.push(idx as u32);
    }
    let heuristic = |p: Point| -> u64 {
        targets.iter().map(|t| p.manhattan(t.at) as u64 * query.cost.step as u64).min().unwrap_or(0)
    };

    // Min-heap keyed by f = g + h; tiebreak on g to prefer settled depth.
    let mut any_source = false;
    for s in query.sources.iter().filter(|s| usable(s)) {
        let idx = node_index(grid, s.at, s.layer);
        if dist[idx] == u64::MAX {
            dist[idx] = 0;
            touched.push(idx as u32);
            heap.push(Reverse((heuristic(s.at), 0, idx as u32)));
        }
        any_source = true;
    }
    if !any_source {
        return (None, stats);
    }
    stats.heap_peak = heap.len();

    let mut reached: Option<usize> = None;
    while let Some(Reverse((_f, g, idx))) = heap.pop() {
        let idx = idx as usize;
        if g > dist[idx] {
            continue; // stale entry
        }
        stats.expanded += 1;
        if target_mask[idx] {
            reached = Some(idx);
            break;
        }
        let (p, layer) = node_point(grid, idx);

        // Wire steps in the four directions.
        for dir in Dir::ALL {
            let np = p.step(dir);
            stats.relaxed += 1;
            let Some(extra) = enter_cost(grid, query.net, np, layer, soft) else {
                continue;
            };
            let step_cost = query.cost.step_cost(layer, dir.axis()) as u64;
            let ng = g + step_cost + extra;
            let nidx = node_index(grid, np, layer);
            if ng < dist[nidx] {
                if dist[nidx] == u64::MAX {
                    touched.push(nidx as u32);
                }
                dist[nidx] = ng;
                prev[nidx] = idx as u32;
                heap.push(Reverse((ng + heuristic(np), ng, nidx as u32)));
                stats.heap_peak = stats.heap_peak.max(heap.len());
            }
        }

        // Layer changes (vias) to the adjacent layers at the same point.
        for other in layer.adjacent() {
            stats.relaxed += 1;
            if let Some(extra) = enter_cost(grid, query.net, p, other, soft) {
                let ng = g + query.cost.via as u64 + extra;
                let nidx = node_index(grid, p, other);
                if ng < dist[nidx] {
                    if dist[nidx] == u64::MAX {
                        touched.push(nidx as u32);
                    }
                    dist[nidx] = ng;
                    prev[nidx] = idx as u32;
                    heap.push(Reverse((ng + heuristic(p), ng, nidx as u32)));
                    stats.heap_peak = stats.heap_peak.max(heap.len());
                }
            }
        }
    }

    let Some(end) = reached else {
        return (None, stats);
    };
    let cost = dist[end];

    // Reconstruct the path source -> target.
    let mut steps_rev: Vec<Step> = Vec::new();
    let mut cur = end;
    loop {
        let (p, layer) = node_point(grid, cur);
        steps_rev.push(Step::new(p, layer));
        if prev[cur] == NO_PREV {
            break;
        }
        cur = prev[cur] as usize;
    }
    steps_rev.reverse();
    let crossings: Vec<(NetId, Step)> = steps_rev
        .iter()
        .filter_map(|s| match grid.occupant(s.at, s.layer) {
            Occupant::Net(owner) if owner != query.net => Some((owner, *s)),
            _ => None,
        })
        .collect();
    let trace = Trace::from_steps(steps_rev).expect("search paths are contiguous");
    (Some(SoftPath { trace, cost, crossings, stats }), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, RouteDb};

    fn grid_with(problem: &route_model::Problem) -> RouteDb {
        RouteDb::new(problem)
    }

    fn simple_problem() -> route_model::Problem {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        b.net("b").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        b.build().unwrap()
    }

    fn query<'a>(grid: &'a Grid, net: NetId, from: Step, to: Step) -> Query<'a> {
        Query { grid, net, sources: vec![from], targets: vec![to], cost: CostModel::default() }
    }

    #[test]
    fn straight_shot_has_minimal_cost() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).expect("path exists");
        assert_eq!(found.cost, 7); // 7 unit steps on the preferred axis
        assert_eq!(found.trace.steps().len(), 8);
        assert_eq!(found.trace.via_points().count(), 0);
    }

    #[test]
    fn blocked_straight_line_detours() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        // Wall across row 3 except nothing: full column of obstacles at x=4
        for y in 0..8 {
            b.obstacle(Point::new(4, y));
        }
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        assert!(find_path(&q).is_none(), "full wall is impassable");
    }

    #[test]
    fn partial_wall_forces_detour() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        for y in 0..7 {
            b.obstacle(Point::new(4, y)); // gap at y=7
        }
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).expect("detour through the gap");
        assert!(found.cost > 7);
        assert!(found.trace.steps().iter().any(|s| s.at.y == 7), "passes the gap");
    }

    #[test]
    fn via_used_when_cheaper() {
        // Force a vertical run: M2 is the vertical layer, so the path
        // from an M1 pin going north should via up to M2.
        let mut b = ProblemBuilder::switchbox(3, 10);
        b.net("a").pin_at(Point::new(1, 0), Layer::M1).pin_at(Point::new(1, 9), Layer::M1);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(1, 0), Layer::M1),
            Step::new(Point::new(1, 9), Layer::M1),
        );
        let found = find_path(&q).expect("path exists");
        // 9 wrong-way M1 steps would cost 18; two vias (6) + 9 M2 steps = 15.
        assert_eq!(found.trace.via_points().count(), 2);
        assert_eq!(found.cost, 15);
    }

    #[test]
    fn hard_search_respects_foreign_wiring() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        // Route net a straight across row 3 on M1 AND row 3 on M2 to form
        // a full wall for net b... instead: wall both layers at column 4.
        let steps1: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M1)).collect();
        let steps2: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M2)).collect();
        db.commit(a, Trace::from_steps(steps1).unwrap()).unwrap();
        db.commit(a, Trace::from_steps(steps2).unwrap()).unwrap();
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        assert!(find_path(&q).is_none(), "both layers of row 3 are walls");
    }

    #[test]
    fn soft_search_crosses_with_penalty_and_reports_crossings() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        let wall1: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M1)).collect();
        let wall2: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M2)).collect();
        db.commit(a, Trace::from_steps(wall1).unwrap()).unwrap();
        db.commit(a, Trace::from_steps(wall2).unwrap()).unwrap();
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        let soft = find_path_soft(&q, &|_, _, _| Some(10)).expect("soft path exists");
        assert!(!soft.crossings.is_empty());
        assert!(soft.crossings.iter().all(|(owner, _)| *owner == a));
        assert!(soft.cost >= 10, "penalty paid");
    }

    #[test]
    fn soft_search_honours_impassable_slots() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        // Wall both enabled layers (M3 is blocked in two-layer problems).
        for layer in [Layer::M1, Layer::M2] {
            let wall: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), layer)).collect();
            db.commit(a, Trace::from_steps(wall).unwrap()).unwrap();
        }
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        assert!(find_path_soft(&q, &|_, _, _| None).is_none());
    }

    #[test]
    fn multi_source_multi_target() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = Query {
            grid: db.grid(),
            net,
            sources: vec![
                Step::new(Point::new(0, 0), Layer::M1),
                Step::new(Point::new(0, 7), Layer::M1),
            ],
            targets: vec![
                Step::new(Point::new(7, 7), Layer::M1),
                Step::new(Point::new(2, 7), Layer::M1),
            ],
            cost: CostModel::default(),
        };
        let found = find_path(&q).unwrap();
        // Best pairing: (0,7) -> (2,7), cost 2.
        assert_eq!(found.cost, 2);
    }

    #[test]
    fn source_equal_target_gives_trivial_path() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let s = Step::new(Point::new(0, 3), Layer::M1);
        let q = query(db.grid(), net, s, s);
        let found = find_path(&q).unwrap();
        assert_eq!(found.cost, 0);
        assert_eq!(found.trace.steps(), &[s]);
    }

    #[test]
    fn unusable_targets_yield_none() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        // Target is another net's pin slot: not admissible.
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(4, 0), Layer::M2),
        );
        assert!(find_path(&q).is_none());
    }

    #[test]
    fn arena_reuse_is_equivalent_to_fresh_buffers() {
        // One arena across many searches, across two differently-sized
        // grids, with failures interleaved: every result must be
        // bit-identical to the allocate-per-call path.
        let big = simple_problem();
        let mut small_b = ProblemBuilder::switchbox(5, 4);
        small_b.net("s").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 2);
        let small = small_b.build().unwrap();
        let big_db = grid_with(&big);
        let small_db = grid_with(&small);
        let mut arena = SearchArena::new();

        let cases: Vec<(&RouteDb, NetId, Step, Step)> = vec![
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(0, 3), Layer::M1),
                Step::new(Point::new(7, 3), Layer::M1),
            ),
            (
                &big_db,
                big.nets()[1].id,
                Step::new(Point::new(4, 0), Layer::M2),
                Step::new(Point::new(4, 7), Layer::M2),
            ),
            // Unusable target: the fresh path returns None; the arena
            // path must too, and must stay clean for the next case.
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(0, 3), Layer::M1),
                Step::new(Point::new(4, 0), Layer::M2),
            ),
            (
                &small_db,
                small.nets()[0].id,
                Step::new(Point::new(0, 1), Layer::M1),
                Step::new(Point::new(4, 2), Layer::M1),
            ),
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(7, 3), Layer::M1),
                Step::new(Point::new(0, 3), Layer::M1),
            ),
        ];
        for (db, net, from, to) in cases {
            let q = query(db.grid(), net, from, to);
            let fresh = find_path(&q);
            let reused = find_path_with(&mut arena, &q);
            match (fresh, reused) {
                (None, None) => {}
                (Some(f), Some(r)) => {
                    assert_eq!(f.cost, r.cost);
                    assert_eq!(f.trace.steps(), r.trace.steps());
                    assert_eq!(f.stats, r.stats);
                }
                (f, r) => panic!("fresh {:?} vs reused {:?}", f.is_some(), r.is_some()),
            }
        }
    }

    #[test]
    fn stats_count_work() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).unwrap();
        assert!(found.stats.expanded >= 8);
        assert!(found.stats.relaxed >= found.stats.expanded);
    }
}
