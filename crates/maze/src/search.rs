//! Weighted A* path search over the multi-layer occupancy grid.

use route_geom::{Dir, Layer, Point, NUM_LAYERS};
use route_model::{Grid, NetId, Occupant, RouteObserver, SearchKind, SearchProbe, Step, Trace};

use crate::frontier::{BucketFrontier, Frontier, FrontierKind, HeapFrontier};
use crate::CostModel;

/// A path-search request: connect any of `sources` to any of `targets`
/// with wiring of `net` over `grid`.
///
/// Sources are typically the net's already-connected component (pins plus
/// committed wiring); targets the next pin to attach. Slots the net may
/// not occupy are silently dropped from both sets.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    /// The occupancy grid to search.
    pub grid: &'a Grid,
    /// The net being routed.
    pub net: NetId,
    /// Starting slots (cost zero).
    pub sources: Vec<Step>,
    /// Goal slots; the search stops at the first one settled.
    pub targets: Vec<Step>,
    /// Cost weights.
    pub cost: CostModel,
}

/// Search effort counters, used by the scaling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Nodes settled (popped with final cost).
    pub expanded: usize,
    /// Edge relaxations attempted.
    pub relaxed: usize,
    /// Largest open-list size reached during the search. Stale entries
    /// count, and every [`Frontier`] implementation counts them the
    /// same way, so the value is frontier-independent.
    pub heap_peak: usize,
}

impl SearchStats {
    /// The observer-facing snapshot of these counters.
    pub fn probe(&self, found: bool) -> SearchProbe {
        SearchProbe {
            expanded: self.expanded as u64,
            relaxed: self.relaxed as u64,
            heap_peak: self.heap_peak as u64,
            found,
        }
    }
}

/// A successful hard search: a committable [`Trace`] and its cost.
#[derive(Debug, Clone)]
pub struct FoundPath {
    /// The path, from a source to a target.
    pub trace: Trace,
    /// Total path cost under the query's [`CostModel`].
    pub cost: u64,
    /// Effort counters.
    pub stats: SearchStats,
}

/// A successful interference (soft) search: the path plus every foreign
/// slot it crosses.
#[derive(Debug, Clone)]
pub struct SoftPath {
    /// The path, from a source to a target.
    pub trace: Trace,
    /// Total path cost including interference penalties.
    pub cost: u64,
    /// Foreign slots on the path, with their owning net at search time.
    /// Empty means the path is committable as-is.
    pub crossings: Vec<(NetId, Step)>,
    /// Effort counters.
    pub stats: SearchStats,
}

/// Reusable scratch memory for repeated searches.
///
/// A single A* call over a `W x H` grid allocates three node-indexed
/// arrays plus a heap; a router makes thousands of such calls over the
/// same grid. The arena keeps the buffers alive between calls and clears
/// them *sparsely* — only the nodes actually touched by the previous
/// search are reset — so the per-call cost is proportional to the search
/// frontier, not the grid.
///
/// Results are bit-identical to the allocation-per-call entry points
/// ([`find_path`] / [`find_path_soft`]): the arena changes where the
/// buffers live, never what the search computes. One arena may serve
/// grids of different sizes; it grows to the largest seen.
///
/// # Examples
///
/// ```
/// use route_maze::{search, CostModel, SearchArena};
/// use route_model::{ProblemBuilder, PinSide, RouteDb, Step};
/// use route_geom::{Layer, Point};
///
/// let mut b = ProblemBuilder::switchbox(8, 8);
/// b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
/// let problem = b.build()?;
/// let db = RouteDb::new(&problem);
/// let mut arena = SearchArena::new();
/// let q = search::Query {
///     grid: db.grid(),
///     net: problem.nets()[0].id,
///     sources: vec![Step::new(Point::new(0, 3), Layer::M1)],
///     targets: vec![Step::new(Point::new(7, 3), Layer::M1)],
///     cost: CostModel::default(),
/// };
/// let fresh = search::find_path(&q).unwrap();
/// let reused = search::find_path_in(&mut arena, &q).unwrap();
/// assert_eq!(fresh.cost, reused.cost);
/// # Ok::<(), route_model::ProblemError>(())
/// ```
#[derive(Debug)]
pub struct SearchArena {
    dist: Vec<u64>,
    prev: Vec<u32>,
    target_mask: Vec<bool>,
    /// Node indices written since the last reset (dist/prev/target_mask).
    touched: Vec<u32>,
    /// Memoized heuristic per *cell* (the heuristic is layer-blind).
    h_cache: Vec<u64>,
    /// Cell indices written to `h_cache` since the last reset.
    h_touched: Vec<u32>,
    frontier: FrontierStore,
    probe: ProbeKind,
}

/// The arena-owned open list, one variant per [`FrontierKind`].
///
/// The size split is deliberate: one long-lived instance per arena, so
/// the bucket calendar's inline bitmap costs nothing to carry and
/// boxing it would put a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum FrontierStore {
    Heap(HeapFrontier),
    Buckets(BucketFrontier),
}

/// How the expansion loop tests whether a neighbor slot is free.
///
/// Purely a measurement knob: both modes compute identical results.
/// The scalar mode exists so benchmarks can reproduce the
/// pre-redesign inner loop — per-cell occupancy dereferences and an
/// unmemoized heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeKind {
    /// The historical loop: per-cell [`Grid::occupant`] dereferences
    /// and the heuristic recomputed at every relaxation.
    Scalar,
    /// Word fetches from the grid's bit-packed
    /// [`OccupancyView`](route_model::OccupancyView).
    #[default]
    Bits,
}

impl Default for SearchArena {
    fn default() -> Self {
        SearchArena::new()
    }
}

impl SearchArena {
    /// Creates an empty arena with the default (bucket) frontier;
    /// buffers are sized lazily on first use.
    pub fn new() -> Self {
        SearchArena::with_config(FrontierKind::default(), ProbeKind::default())
    }

    /// Creates an empty arena using the given frontier implementation.
    pub fn with_frontier(kind: FrontierKind) -> Self {
        SearchArena::with_config(kind, ProbeKind::default())
    }

    /// Creates an empty arena with explicit frontier and neighbor-probe
    /// choices (the latter only matters for baseline measurements).
    pub fn with_config(kind: FrontierKind, probe: ProbeKind) -> Self {
        let frontier = match kind {
            FrontierKind::Heap => FrontierStore::Heap(HeapFrontier::new()),
            FrontierKind::Buckets => FrontierStore::Buckets(BucketFrontier::new()),
        };
        SearchArena {
            dist: Vec::new(),
            prev: Vec::new(),
            target_mask: Vec::new(),
            touched: Vec::new(),
            h_cache: Vec::new(),
            h_touched: Vec::new(),
            frontier,
            probe,
        }
    }

    /// Which frontier implementation this arena's searches use.
    pub fn frontier_kind(&self) -> FrontierKind {
        match self.frontier {
            FrontierStore::Heap(_) => FrontierKind::Heap,
            FrontierStore::Buckets(_) => FrontierKind::Buckets,
        }
    }

    /// Clears the previous search's marks and guarantees capacity for
    /// `n_nodes` nodes (`n_cells` = `n_nodes / NUM_LAYERS`).
    fn reset(&mut self, n_nodes: usize, n_cells: usize) {
        for &idx in &self.touched {
            let idx = idx as usize;
            self.dist[idx] = u64::MAX;
            self.prev[idx] = NO_PREV;
            self.target_mask[idx] = false;
        }
        self.touched.clear();
        for &cell in &self.h_touched {
            self.h_cache[cell as usize] = u64::MAX;
        }
        self.h_touched.clear();
        match &mut self.frontier {
            FrontierStore::Heap(f) => f.clear(),
            FrontierStore::Buckets(f) => f.clear(),
        }
        if self.dist.len() < n_nodes {
            self.dist.resize(n_nodes, u64::MAX);
            self.prev.resize(n_nodes, NO_PREV);
            self.target_mask.resize(n_nodes, false);
        }
        if self.h_cache.len() < n_cells {
            self.h_cache.resize(n_cells, u64::MAX);
        }
    }
}

/// Finds a minimum-cost path using only cells that are free or already
/// owned by the queried net.
///
/// Returns `None` when no such path exists (or the source/target sets are
/// empty after dropping unusable slots).
pub fn find_path(query: &Query<'_>) -> Option<FoundPath> {
    find_path_in(&mut SearchArena::new(), query)
}

/// Like [`find_path`], but runs in the scratch buffers (and frontier) of
/// `arena` instead of allocating per call — the hot-path entry point for
/// routers.
pub fn find_path_in(arena: &mut SearchArena, query: &Query<'_>) -> Option<FoundPath> {
    let (found, _) = run(arena, query, None);
    let found = found?;
    Some(FoundPath { trace: found.trace, cost: found.cost, stats: found.stats })
}

/// Renamed entry point, kept for one release so downstream code compiles.
#[deprecated(since = "0.2.0", note = "renamed to `find_path_in`")]
pub fn find_path_with(arena: &mut SearchArena, query: &Query<'_>) -> Option<FoundPath> {
    find_path_in(arena, query)
}

/// Like [`find_path_with`], but reports the search to `obs` via
/// [`RouteObserver::on_search_done`] — including the effort spent on
/// *failed* searches, which the un-observed entry points discard.
///
/// The observer only watches: results are bit-identical to
/// [`find_path_with`].
pub fn find_path_observed(
    arena: &mut SearchArena,
    query: &Query<'_>,
    obs: &mut dyn RouteObserver,
) -> Option<FoundPath> {
    let (found, stats) = run(arena, query, None);
    obs.on_search_done(query.net, SearchKind::Hard, stats.probe(found.is_some()));
    let found = found?;
    Some(FoundPath { trace: found.trace, cost: found.cost, stats: found.stats })
}

/// Finds a minimum-cost path that may additionally cross slots occupied
/// by other nets, paying `soft(point, layer, owner)` extra per crossed
/// slot. A return of `None` from the closure marks that slot impassable
/// (e.g. a foreign pin, which can never be moved out of the way).
///
/// The returned [`SoftPath::crossings`] lists every foreign slot on the
/// chosen path — the candidates for weak or strong modification.
pub fn find_path_soft(
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
) -> Option<SoftPath> {
    find_path_soft_in(&mut SearchArena::new(), query, soft)
}

/// Like [`find_path_soft`], but runs in the scratch buffers (and
/// frontier) of `arena`.
pub fn find_path_soft_in(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
) -> Option<SoftPath> {
    run(arena, query, Some(soft)).0
}

/// Renamed entry point, kept for one release so downstream code compiles.
#[deprecated(since = "0.2.0", note = "renamed to `find_path_soft_in`")]
pub fn find_path_soft_with(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
) -> Option<SoftPath> {
    find_path_soft_in(arena, query, soft)
}

/// Like [`find_path_soft_with`], but reports the search (found or not)
/// to `obs` via [`RouteObserver::on_search_done`]. Results are
/// bit-identical to [`find_path_soft_with`].
pub fn find_path_soft_observed(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: &dyn Fn(Point, Layer, NetId) -> Option<u64>,
    obs: &mut dyn RouteObserver,
) -> Option<SoftPath> {
    let (found, stats) = run(arena, query, Some(soft));
    obs.on_search_done(query.net, SearchKind::Soft, stats.probe(found.is_some()));
    found
}

const NO_PREV: u32 = u32::MAX;

#[inline]
fn node_index(grid: &Grid, p: Point, layer: Layer) -> usize {
    (p.y as usize * grid.width() as usize + p.x as usize) * NUM_LAYERS + layer.index()
}

#[inline]
fn node_point(grid: &Grid, idx: usize) -> (Point, Layer) {
    let layer = Layer::from_index(idx % NUM_LAYERS);
    let cell = idx / NUM_LAYERS;
    let w = grid.width() as usize;
    (Point::new((cell % w) as i32, (cell / w) as i32), layer)
}

/// Cost of entering `(p, layer)` for `net`, or `None` if impassable.
fn enter_cost(
    grid: &Grid,
    net: NetId,
    p: Point,
    layer: Layer,
    soft: Option<&dyn Fn(Point, Layer, NetId) -> Option<u64>>,
) -> Option<u64> {
    if !grid.in_bounds(p) {
        return None;
    }
    match grid.occupant(p, layer) {
        Occupant::Free => Some(0),
        Occupant::Net(owner) if owner == net => Some(0),
        Occupant::Net(owner) => soft.and_then(|f| f(p, layer, owner)),
        Occupant::Blocked => None,
    }
}

/// The mutable node-indexed scratch of one search, destructured out of
/// the arena so the core can be monomorphized per [`Frontier`].
struct Scratch<'a> {
    dist: &'a mut [u64],
    prev: &'a mut [u32],
    target_mask: &'a mut [bool],
    touched: &'a mut Vec<u32>,
    h_cache: &'a mut [u64],
    h_touched: &'a mut Vec<u32>,
}

/// The search core: always returns the effort counters, even when no
/// path exists, so observed entry points can report failed searches.
///
/// Dispatches once on the arena's frontier store, so the inner loop is
/// monomorphic — no virtual calls per push/pop.
fn run(
    arena: &mut SearchArena,
    query: &Query<'_>,
    soft: Option<&dyn Fn(Point, Layer, NetId) -> Option<u64>>,
) -> (Option<SoftPath>, SearchStats) {
    let grid = query.grid;
    let n_cells = grid.width() as usize * grid.height() as usize;
    arena.reset(n_cells * NUM_LAYERS, n_cells);
    let SearchArena { dist, prev, target_mask, touched, h_cache, h_touched, frontier, probe } =
        arena;
    let scratch = Scratch { dist, prev, target_mask, touched, h_cache, h_touched };
    match frontier {
        FrontierStore::Heap(f) => run_core(query, soft, scratch, f, *probe),
        FrontierStore::Buckets(f) => run_core(query, soft, scratch, f, *probe),
    }
}

fn run_core<F: Frontier>(
    query: &Query<'_>,
    soft: Option<&dyn Fn(Point, Layer, NetId) -> Option<u64>>,
    scratch: Scratch<'_>,
    frontier: &mut F,
    probe: ProbeKind,
) -> (Option<SoftPath>, SearchStats) {
    let grid = query.grid;
    let Scratch { dist, prev, target_mask, touched, h_cache, h_touched } = scratch;
    let mut stats = SearchStats::default();

    let usable = |s: &Step| grid.admits(s.at, s.layer, query.net);
    let targets: Vec<Step> = query.targets.iter().filter(|s| usable(s)).copied().collect();
    if targets.is_empty() {
        return (None, stats);
    }
    for t in &targets {
        let idx = node_index(grid, t.at, t.layer);
        target_mask[idx] = true;
        touched.push(idx as u32);
    }
    let w = grid.width() as usize;
    let step_w = query.cost.step as u64;
    let probe_bits = probe == ProbeKind::Bits;
    // Min-manhattan-to-any-target heuristic, memoized per cell (it is
    // layer-blind). Memoization changes where the value is computed,
    // never the value, so results stay bit-identical. The baseline
    // probe mode recomputes every call, as the pre-redesign loop did.
    let mut heuristic = |p: Point| -> u64 {
        let cell = p.y as usize * w + p.x as usize;
        if probe_bits {
            let cached = h_cache[cell];
            if cached != u64::MAX {
                return cached;
            }
        }
        let h = targets.iter().map(|t| p.manhattan(t.at) as u64 * step_w).min().unwrap_or(0);
        if probe_bits {
            h_cache[cell] = h;
            h_touched.push(cell as u32);
        }
        h
    };

    // Open list keyed by f = g + h; tiebreak on g to prefer settled depth.
    let mut any_source = false;
    for s in query.sources.iter().filter(|s| usable(s)) {
        let idx = node_index(grid, s.at, s.layer);
        if dist[idx] == u64::MAX {
            dist[idx] = 0;
            touched.push(idx as u32);
            frontier.push(heuristic(s.at), 0, idx as u32);
        }
        any_source = true;
    }
    if !any_source {
        return (None, stats);
    }
    stats.heap_peak = frontier.len();

    let view = grid.occupancy_view();
    // Node-index deltas for a wire step, in Dir::ALL order; only applied
    // after the neighbor is proven in bounds.
    let node_delta: [i64; 4] = [
        (w * NUM_LAYERS) as i64,
        -((w * NUM_LAYERS) as i64),
        NUM_LAYERS as i64,
        -(NUM_LAYERS as i64),
    ];

    let mut reached: Option<usize> = None;
    while let Some((_f, g, idx)) = frontier.pop() {
        let idx = idx as usize;
        if g > dist[idx] {
            continue; // stale entry
        }
        stats.expanded += 1;
        if target_mask[idx] {
            reached = Some(idx);
            break;
        }
        let (p, layer) = node_point(grid, idx);

        // Wire steps in the four directions. A set bit in `free_mask`
        // proves the neighbor is in bounds and free (enter cost 0)
        // from one word fetch, skipping the cell dereference.
        let free_mask = if probe_bits { view.neighbor_free_mask(p, layer) } else { 0 };
        for (i, dir) in Dir::ALL.iter().enumerate() {
            let np = p.step(*dir);
            stats.relaxed += 1;
            let extra = if free_mask & (1 << i) != 0 {
                0
            } else {
                match enter_cost(grid, query.net, np, layer, soft) {
                    Some(e) => e,
                    None => continue,
                }
            };
            let step_cost = query.cost.step_cost(layer, dir.axis()) as u64;
            let ng = g + step_cost + extra;
            let nidx = (idx as i64 + node_delta[i]) as usize;
            debug_assert_eq!(nidx, node_index(grid, np, layer));
            if ng < dist[nidx] {
                if dist[nidx] == u64::MAX {
                    touched.push(nidx as u32);
                }
                dist[nidx] = ng;
                prev[nidx] = idx as u32;
                frontier.push(ng + heuristic(np), ng, nidx as u32);
                stats.heap_peak = stats.heap_peak.max(frontier.len());
            }
        }

        // Layer changes (vias) to the adjacent layers at the same point.
        for other in layer.adjacent() {
            stats.relaxed += 1;
            let extra = if probe_bits && view.is_free(p, other) {
                Some(0)
            } else {
                enter_cost(grid, query.net, p, other, soft)
            };
            if let Some(extra) = extra {
                let ng = g + query.cost.via as u64 + extra;
                let nidx = idx - layer.index() + other.index();
                debug_assert_eq!(nidx, node_index(grid, p, other));
                if ng < dist[nidx] {
                    if dist[nidx] == u64::MAX {
                        touched.push(nidx as u32);
                    }
                    dist[nidx] = ng;
                    prev[nidx] = idx as u32;
                    frontier.push(ng + heuristic(p), ng, nidx as u32);
                    stats.heap_peak = stats.heap_peak.max(frontier.len());
                }
            }
        }
    }

    let Some(end) = reached else {
        return (None, stats);
    };
    let cost = dist[end];

    // Reconstruct the path source -> target.
    let mut steps_rev: Vec<Step> = Vec::new();
    let mut cur = end;
    loop {
        let (p, layer) = node_point(grid, cur);
        steps_rev.push(Step::new(p, layer));
        if prev[cur] == NO_PREV {
            break;
        }
        cur = prev[cur] as usize;
    }
    steps_rev.reverse();
    let crossings: Vec<(NetId, Step)> = steps_rev
        .iter()
        .filter_map(|s| match grid.occupant(s.at, s.layer) {
            Occupant::Net(owner) if owner != query.net => Some((owner, *s)),
            _ => None,
        })
        .collect();
    let trace = Trace::from_steps(steps_rev).expect("search paths are contiguous");
    (Some(SoftPath { trace, cost, crossings, stats }), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, RouteDb};

    fn grid_with(problem: &route_model::Problem) -> RouteDb {
        RouteDb::new(problem)
    }

    fn simple_problem() -> route_model::Problem {
        let mut b = ProblemBuilder::switchbox(8, 8);
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        b.net("b").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        b.build().unwrap()
    }

    fn query<'a>(grid: &'a Grid, net: NetId, from: Step, to: Step) -> Query<'a> {
        Query { grid, net, sources: vec![from], targets: vec![to], cost: CostModel::default() }
    }

    #[test]
    fn straight_shot_has_minimal_cost() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).expect("path exists");
        assert_eq!(found.cost, 7); // 7 unit steps on the preferred axis
        assert_eq!(found.trace.steps().len(), 8);
        assert_eq!(found.trace.via_points().count(), 0);
    }

    #[test]
    fn blocked_straight_line_detours() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        // Wall across row 3 except nothing: full column of obstacles at x=4
        for y in 0..8 {
            b.obstacle(Point::new(4, y));
        }
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        assert!(find_path(&q).is_none(), "full wall is impassable");
    }

    #[test]
    fn partial_wall_forces_detour() {
        let mut b = ProblemBuilder::switchbox(8, 8);
        for y in 0..7 {
            b.obstacle(Point::new(4, y)); // gap at y=7
        }
        b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).expect("detour through the gap");
        assert!(found.cost > 7);
        assert!(found.trace.steps().iter().any(|s| s.at.y == 7), "passes the gap");
    }

    #[test]
    fn via_used_when_cheaper() {
        // Force a vertical run: M2 is the vertical layer, so the path
        // from an M1 pin going north should via up to M2.
        let mut b = ProblemBuilder::switchbox(3, 10);
        b.net("a").pin_at(Point::new(1, 0), Layer::M1).pin_at(Point::new(1, 9), Layer::M1);
        let p = b.build().unwrap();
        let db = grid_with(&p);
        let q = query(
            db.grid(),
            p.nets()[0].id,
            Step::new(Point::new(1, 0), Layer::M1),
            Step::new(Point::new(1, 9), Layer::M1),
        );
        let found = find_path(&q).expect("path exists");
        // 9 wrong-way M1 steps would cost 18; two vias (6) + 9 M2 steps = 15.
        assert_eq!(found.trace.via_points().count(), 2);
        assert_eq!(found.cost, 15);
    }

    #[test]
    fn hard_search_respects_foreign_wiring() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        // Route net a straight across row 3 on M1 AND row 3 on M2 to form
        // a full wall for net b... instead: wall both layers at column 4.
        let steps1: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M1)).collect();
        let steps2: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M2)).collect();
        db.commit(a, Trace::from_steps(steps1).unwrap()).unwrap();
        db.commit(a, Trace::from_steps(steps2).unwrap()).unwrap();
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        assert!(find_path(&q).is_none(), "both layers of row 3 are walls");
    }

    #[test]
    fn soft_search_crosses_with_penalty_and_reports_crossings() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        let wall1: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M1)).collect();
        let wall2: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), Layer::M2)).collect();
        db.commit(a, Trace::from_steps(wall1).unwrap()).unwrap();
        db.commit(a, Trace::from_steps(wall2).unwrap()).unwrap();
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        let soft = find_path_soft(&q, &|_, _, _| Some(10)).expect("soft path exists");
        assert!(!soft.crossings.is_empty());
        assert!(soft.crossings.iter().all(|(owner, _)| *owner == a));
        assert!(soft.cost >= 10, "penalty paid");
    }

    #[test]
    fn soft_search_honours_impassable_slots() {
        let p = simple_problem();
        let mut db = grid_with(&p);
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        // Wall both enabled layers (M3 is blocked in two-layer problems).
        for layer in [Layer::M1, Layer::M2] {
            let wall: Vec<Step> = (0..8).map(|x| Step::new(Point::new(x, 3), layer)).collect();
            db.commit(a, Trace::from_steps(wall).unwrap()).unwrap();
        }
        let q = query(
            db.grid(),
            bnet,
            Step::new(Point::new(4, 0), Layer::M2),
            Step::new(Point::new(4, 7), Layer::M2),
        );
        assert!(find_path_soft(&q, &|_, _, _| None).is_none());
    }

    #[test]
    fn multi_source_multi_target() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = Query {
            grid: db.grid(),
            net,
            sources: vec![
                Step::new(Point::new(0, 0), Layer::M1),
                Step::new(Point::new(0, 7), Layer::M1),
            ],
            targets: vec![
                Step::new(Point::new(7, 7), Layer::M1),
                Step::new(Point::new(2, 7), Layer::M1),
            ],
            cost: CostModel::default(),
        };
        let found = find_path(&q).unwrap();
        // Best pairing: (0,7) -> (2,7), cost 2.
        assert_eq!(found.cost, 2);
    }

    #[test]
    fn source_equal_target_gives_trivial_path() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let s = Step::new(Point::new(0, 3), Layer::M1);
        let q = query(db.grid(), net, s, s);
        let found = find_path(&q).unwrap();
        assert_eq!(found.cost, 0);
        assert_eq!(found.trace.steps(), &[s]);
    }

    #[test]
    fn unusable_targets_yield_none() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        // Target is another net's pin slot: not admissible.
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(4, 0), Layer::M2),
        );
        assert!(find_path(&q).is_none());
    }

    #[test]
    #[allow(deprecated)] // exercises the one-release compatibility shim
    fn arena_reuse_is_equivalent_to_fresh_buffers() {
        // One arena across many searches, across two differently-sized
        // grids, with failures interleaved: every result must be
        // bit-identical to the allocate-per-call path.
        let big = simple_problem();
        let mut small_b = ProblemBuilder::switchbox(5, 4);
        small_b.net("s").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 2);
        let small = small_b.build().unwrap();
        let big_db = grid_with(&big);
        let small_db = grid_with(&small);
        let mut arena = SearchArena::new();

        let cases: Vec<(&RouteDb, NetId, Step, Step)> = vec![
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(0, 3), Layer::M1),
                Step::new(Point::new(7, 3), Layer::M1),
            ),
            (
                &big_db,
                big.nets()[1].id,
                Step::new(Point::new(4, 0), Layer::M2),
                Step::new(Point::new(4, 7), Layer::M2),
            ),
            // Unusable target: the fresh path returns None; the arena
            // path must too, and must stay clean for the next case.
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(0, 3), Layer::M1),
                Step::new(Point::new(4, 0), Layer::M2),
            ),
            (
                &small_db,
                small.nets()[0].id,
                Step::new(Point::new(0, 1), Layer::M1),
                Step::new(Point::new(4, 2), Layer::M1),
            ),
            (
                &big_db,
                big.nets()[0].id,
                Step::new(Point::new(7, 3), Layer::M1),
                Step::new(Point::new(0, 3), Layer::M1),
            ),
        ];
        for (db, net, from, to) in cases {
            let q = query(db.grid(), net, from, to);
            let fresh = find_path(&q);
            let reused = find_path_with(&mut arena, &q);
            match (fresh, reused) {
                (None, None) => {}
                (Some(f), Some(r)) => {
                    assert_eq!(f.cost, r.cost);
                    assert_eq!(f.trace.steps(), r.trace.steps());
                    assert_eq!(f.stats, r.stats);
                }
                (f, r) => panic!("fresh {:?} vs reused {:?}", f.is_some(), r.is_some()),
            }
        }
    }

    #[test]
    fn stats_count_work() {
        let p = simple_problem();
        let db = grid_with(&p);
        let net = p.nets()[0].id;
        let q = query(
            db.grid(),
            net,
            Step::new(Point::new(0, 3), Layer::M1),
            Step::new(Point::new(7, 3), Layer::M1),
        );
        let found = find_path(&q).unwrap();
        assert!(found.stats.expanded >= 8);
        assert!(found.stats.relaxed >= found.stats.expanded);
    }
}
