//! Sequential maze router: the classic no-modification baseline.
//!
//! Nets are routed one at a time with the hard search of
//! [`search::find_path`](crate::search::find_path); wiring committed for
//! earlier nets is never revisited. On congested problems this ordering
//! greed is exactly what fails — later nets find themselves walled in —
//! which is the behaviour rip-up/reroute routing was invented to fix.

use route_geom::Rect;
use route_model::{NetId, NopObserver, Problem, RouteDb, RouteObserver, Step, TraceId};

use crate::search::{find_path_observed, Query, SearchArena, SearchStats};
use crate::CostModel;

/// Result of a sequential routing run.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// The database with all successfully committed wiring.
    pub db: RouteDb,
    /// Nets with at least one unroutable connection, in failure order.
    pub failed: Vec<NetId>,
    /// Accumulated search effort.
    pub stats: SearchStats,
}

impl SequentialOutcome {
    /// Whether every net was fully routed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Routes every net of `problem` in ascending bounding-box size order
/// (small nets first — the conventional sequential heuristic).
pub fn route_all(problem: &Problem, cost: CostModel) -> SequentialOutcome {
    route_all_observed(problem, cost, &mut NopObserver)
}

/// Like [`route_all`], but reusing the caller's [`SearchArena`] — the
/// warm entry point for benches and services that want to pick a
/// frontier and keep search scratch allocated across problems. The
/// result is bit-identical to [`route_all`].
pub fn route_all_in(
    problem: &Problem,
    cost: CostModel,
    arena: &mut SearchArena,
) -> SequentialOutcome {
    route_in_order_observed_in(problem, cost, &sorted_order(problem), &mut NopObserver, arena)
}

/// Like [`route_all`], but streams [`RouteObserver`] events — one
/// `on_net_scheduled` per net in routing order, `on_search_done` per
/// pin-attachment search, and a terminal `on_net_committed` /
/// `on_net_failed`. Observation never changes the result.
pub fn route_all_observed(
    problem: &Problem,
    cost: CostModel,
    obs: &mut dyn RouteObserver,
) -> SequentialOutcome {
    route_in_order_observed(problem, cost, &sorted_order(problem), obs)
}

/// The sequential heuristic order: ascending bounding-box half-perimeter,
/// net id breaking ties.
fn sorted_order(problem: &Problem) -> Vec<NetId> {
    let mut order: Vec<NetId> = problem.nets().iter().map(|n| n.id).collect();
    order.sort_by_key(|&id| {
        let net = problem.net(id);
        let first = net.pins[0].at;
        let bbox = net.pins.iter().fold(Rect::cell(first), |acc, p| acc.union(&Rect::cell(p.at)));
        (bbox.width() + bbox.height(), id.0)
    });
    order
}

/// Routes nets in the caller-specified order.
pub fn route_in_order(problem: &Problem, cost: CostModel, order: &[NetId]) -> SequentialOutcome {
    route_in_order_observed(problem, cost, order, &mut NopObserver)
}

/// Like [`route_in_order`], but streams [`RouteObserver`] events.
pub fn route_in_order_observed(
    problem: &Problem,
    cost: CostModel,
    order: &[NetId],
    obs: &mut dyn RouteObserver,
) -> SequentialOutcome {
    // One arena for the whole run: every net's searches reuse it.
    route_in_order_observed_in(problem, cost, order, obs, &mut SearchArena::new())
}

/// Like [`route_in_order_observed`], but reusing the caller's
/// [`SearchArena`].
pub fn route_in_order_observed_in(
    problem: &Problem,
    cost: CostModel,
    order: &[NetId],
    obs: &mut dyn RouteObserver,
    arena: &mut SearchArena,
) -> SequentialOutcome {
    let mut db = RouteDb::new(problem);
    let mut failed = Vec::new();
    let mut stats = SearchStats::default();
    for &net in order {
        obs.on_net_scheduled(net);
        match connect_net_observed_in(arena, &mut db, net, cost, obs) {
            Ok(s) => {
                stats.expanded += s.expanded;
                stats.relaxed += s.relaxed;
                obs.on_net_committed(net);
            }
            Err(s) => {
                stats.expanded += s.expanded;
                stats.relaxed += s.relaxed;
                failed.push(net);
                obs.on_net_failed(net);
            }
        }
    }
    SequentialOutcome { db, failed, stats }
}

/// Incrementally connects all pins of `net` inside `db` using hard search.
///
/// Pins are attached one at a time to the growing connected component
/// (the first pin seeds it). Wiring committed by earlier calls — for this
/// or other nets — is respected.
///
/// # Errors
///
/// Returns the accumulated search stats as the error payload when some
/// pin cannot be attached; wiring committed for earlier pins of the net
/// is left in place.
pub fn connect_net(
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
) -> Result<SearchStats, SearchStats> {
    connect_net_in(&mut SearchArena::new(), db, net, cost)
}

/// Like [`connect_net`], but reusing the caller's [`SearchArena`].
pub fn connect_net_in(
    arena: &mut SearchArena,
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
) -> Result<SearchStats, SearchStats> {
    connect_net_observed_in(arena, db, net, cost, &mut NopObserver)
}

/// Like [`connect_net_in`], but reports each pin-attachment search to
/// `obs` via [`RouteObserver::on_search_done`].
pub fn connect_net_observed_in(
    arena: &mut SearchArena,
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
    obs: &mut dyn RouteObserver,
) -> Result<SearchStats, SearchStats> {
    match connect_net_seeded_obs(arena, db, net, cost, Vec::new(), obs) {
        Ok((_, stats)) => Ok(stats),
        Err((_, stats)) => Err(stats),
    }
}

/// Like [`connect_net`], but the connected component starts from `seed`
/// slots (e.g. a pre-committed trunk) in addition to the first pin, and
/// the committed trace ids are returned so callers can roll back.
///
/// This is the shared pin-attachment engine: the sequential baseline,
/// the YACR-style patch-up and the optimization passes all build on it.
///
/// # Errors
///
/// Returns the trace ids committed so far (for rollback) plus the
/// accumulated stats when some pin cannot be attached.
#[allow(clippy::type_complexity)]
pub fn connect_net_seeded(
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
    seed: Vec<Step>,
) -> Result<(Vec<TraceId>, SearchStats), (Vec<TraceId>, SearchStats)> {
    connect_net_seeded_in(&mut SearchArena::new(), db, net, cost, seed)
}

/// Like [`connect_net_seeded`], but reusing the caller's [`SearchArena`].
///
/// # Errors
///
/// Returns the trace ids committed so far (for rollback) plus the
/// accumulated stats when some pin cannot be attached.
#[allow(clippy::type_complexity)]
pub fn connect_net_seeded_in(
    arena: &mut SearchArena,
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
    seed: Vec<Step>,
) -> Result<(Vec<TraceId>, SearchStats), (Vec<TraceId>, SearchStats)> {
    connect_net_seeded_obs(arena, db, net, cost, seed, &mut NopObserver)
}

#[allow(clippy::type_complexity)]
fn connect_net_seeded_obs(
    arena: &mut SearchArena,
    db: &mut RouteDb,
    net: NetId,
    cost: CostModel,
    seed: Vec<Step>,
    obs: &mut dyn RouteObserver,
) -> Result<(Vec<TraceId>, SearchStats), (Vec<TraceId>, SearchStats)> {
    let mut stats = SearchStats::default();
    let mut committed: Vec<TraceId> = Vec::new();
    let pins: Vec<Step> = db.pins(net).iter().map(|p| Step::new(p.at, p.layer)).collect();
    let mut connected = seed;
    let attach: Vec<Step> = if connected.is_empty() {
        let Some((&first, rest)) = pins.split_first() else {
            return Ok((committed, stats));
        };
        connected.push(first);
        rest.to_vec()
    } else {
        pins
    };
    for pin in attach {
        if connected.contains(&pin) {
            continue;
        }
        let query =
            Query { grid: db.grid(), net, sources: connected.clone(), targets: vec![pin], cost };
        match find_path_observed(arena, &query, obs) {
            Some(found) => {
                stats.expanded += found.stats.expanded;
                stats.relaxed += found.stats.relaxed;
                let steps = found.trace.steps().to_vec();
                let id: TraceId =
                    db.commit(net, found.trace).expect("hard search paths are committable");
                committed.push(id);
                connected.extend(steps);
            }
            None => return Err((committed, stats)),
        }
    }
    Ok((committed, stats))
}

/// The sequential maze baseline behind the shared
/// [`DetailedRouter`](route_model::DetailedRouter) trait.
///
/// Never errors: nets that cannot be connected are reported in
/// [`Routing::failed`](route_model::Routing) and the rest are delivered.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeeRouter {
    /// Cost model used for every connection.
    pub cost: CostModel,
}

impl route_model::DetailedRouter for LeeRouter {
    fn name(&self) -> &str {
        "lee"
    }

    fn route(&self, problem: &Problem) -> route_model::RouteResult {
        let out = route_all(problem, self.cost);
        Ok(route_model::Routing { db: out.db, failed: out.failed })
    }

    fn route_observed(
        &self,
        problem: &Problem,
        observer: &mut dyn RouteObserver,
    ) -> route_model::RouteResult {
        let out = route_all_observed(problem, self.cost, observer);
        Ok(route_model::Routing { db: out.db, failed: out.failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::Point;
    use route_model::{DetailedRouter, PinSide, ProblemBuilder};
    use route_verify::verify;

    #[test]
    fn routes_crossing_nets_on_two_layers() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();
        let out = route_all(&p, CostModel::default());
        assert!(out.is_complete());
        assert!(verify(&p, &out.db).is_clean());
    }

    #[test]
    fn routes_multi_pin_net() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("t")
            .pin_side(PinSide::Left, 4)
            .pin_side(PinSide::Right, 4)
            .pin_side(PinSide::Top, 4)
            .pin_side(PinSide::Bottom, 4);
        let p = b.build().unwrap();
        let out = route_all(&p, CostModel::default());
        assert!(out.is_complete());
        assert!(verify(&p, &out.db).is_clean());
    }

    #[test]
    fn greedy_order_can_fail_where_capacity_exists() {
        // A 3x3 box: net "long" hugs the border, then blocks "short".
        // With small-first ordering both route; force the bad order to
        // demonstrate the baseline's weakness.
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("corner")
            .pin_at(Point::new(0, 1), route_geom::Layer::M1)
            .pin_at(Point::new(1, 0), route_geom::Layer::M1);
        b.net("cross")
            .pin_at(Point::new(0, 0), route_geom::Layer::M1)
            .pin_at(Point::new(2, 2), route_geom::Layer::M1);
        let p = b.build().unwrap();
        let out = route_all(&p, CostModel::default());
        // Not asserting failure (the maze may still find a way through
        // M2); assert legality either way.
        let report = verify(&p, &out.db);
        assert!(report.is_clean() || report.is_legal_but_incomplete());
    }

    #[test]
    fn failure_reported_when_walled_in() {
        let mut b = ProblemBuilder::switchbox(5, 5);
        // Obstacles isolate the right pin of net a completely.
        for y in 0..5 {
            b.obstacle(Point::new(3, y));
        }
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let out = route_all(&p, CostModel::default());
        assert_eq!(out.failed, vec![p.nets()[0].id]);
        assert!(!out.is_complete());
    }

    #[test]
    fn stats_accumulate() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        let p = b.build().unwrap();
        let out = route_all(&p, CostModel::default());
        assert!(out.stats.expanded > 0);
    }

    #[test]
    fn lee_router_trait_matches_route_all() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();
        let router = LeeRouter::default();
        assert_eq!(router.name(), "lee");
        let routing = router.route(&p).unwrap();
        let direct = route_all(&p, CostModel::default());
        assert_eq!(routing.failed, direct.failed);
        assert_eq!(routing.db.checksum(), direct.db.checksum());
    }

    #[test]
    fn observed_run_matches_unobserved_and_logs_vocabulary() {
        use route_model::{EventLog, MetricsRecorder};
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();

        let plain = route_all(&p, CostModel::default());
        let mut log = EventLog::new();
        let observed = route_all_observed(&p, CostModel::default(), &mut log);
        assert_eq!(plain.db.checksum(), observed.db.checksum());
        assert_eq!(plain.stats, observed.stats);

        // 2 nets scheduled + committed, one search each pin attachment.
        assert_eq!(log.count_kind("net_scheduled"), 2);
        assert_eq!(log.count_kind("net_committed"), 2);
        assert_eq!(log.count_kind("net_failed"), 0);
        assert_eq!(log.count_kind("search_done"), 2);

        // The same events replay into a MetricsRecorder consistently.
        let mut metrics = MetricsRecorder::new();
        log.replay(&mut metrics);
        assert_eq!(metrics.nets_scheduled(), 2);
        assert_eq!(metrics.nets_committed(), 2);
        assert_eq!(metrics.router().expanded, plain.stats.expanded as u64);
    }

    #[test]
    fn observed_run_reports_failed_search_effort() {
        use route_model::EventLog;
        let mut b = ProblemBuilder::switchbox(5, 5);
        for y in 0..5 {
            b.obstacle(Point::new(3, y));
        }
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let mut log = EventLog::new();
        let out = route_all_observed(&p, CostModel::default(), &mut log);
        assert!(!out.is_complete());
        assert_eq!(log.count_kind("net_failed"), 1);
        // The failed search still reports the nodes it expanded.
        let probe = log
            .events()
            .iter()
            .find_map(|e| match e {
                route_model::RouteEvent::SearchDone { probe, .. } => Some(*probe),
                _ => None,
            })
            .unwrap();
        assert!(!probe.found);
        assert!(probe.expanded > 0);
        assert!(probe.heap_peak > 0);
    }

    #[test]
    fn respects_explicit_order() {
        let mut b = ProblemBuilder::switchbox(9, 9);
        b.net("h").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
        b.net("v").pin_side(PinSide::Bottom, 4).pin_side(PinSide::Top, 4);
        let p = b.build().unwrap();
        let order: Vec<NetId> = p.nets().iter().rev().map(|n| n.id).collect();
        let out = route_in_order(&p, CostModel::default(), &order);
        assert!(out.is_complete());
    }
}
