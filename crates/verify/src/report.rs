use std::fmt;

use route_geom::{Layer, Point};
use route_model::NetId;

/// A single rule or connectivity violation found by [`verify`](crate::verify).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two nets occupy the same `(cell, layer)` slot.
    Short {
        /// One of the nets involved.
        a: NetId,
        /// The other net involved.
        b: NetId,
        /// The shared cell.
        at: Point,
        /// The shared layer.
        layer: Layer,
    },
    /// Wiring placed on a blocked cell (obstacle or outside the region).
    ObstacleOverlap {
        /// The offending net.
        net: NetId,
        /// The blocked cell.
        at: Point,
        /// The blocked layer.
        layer: Layer,
    },
    /// A trace changes layer at a point without a via recorded there, or
    /// a via exists without both layers owned by its net.
    BadVia {
        /// The net whose via is inconsistent.
        net: NetId,
        /// The via location.
        at: Point,
    },
    /// A net's pins do not all belong to one connected component.
    Disconnected {
        /// The fragmented net.
        net: NetId,
        /// Number of connected components its occupancy splits into
        /// (counting only components containing at least one pin).
        components: usize,
    },
    /// The live grid disagrees with occupancy recomputed from traces.
    GridMismatch {
        /// The inconsistent cell.
        at: Point,
        /// The inconsistent layer.
        layer: Layer,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Short { a, b, at, layer } => {
                write!(f, "short between {a} and {b} at {at} on {layer}")
            }
            Violation::ObstacleOverlap { net, at, layer } => {
                write!(f, "net {net} overlaps an obstacle at {at} on {layer}")
            }
            Violation::BadVia { net, at } => {
                write!(f, "inconsistent via of net {net} at {at}")
            }
            Violation::Disconnected { net, components } => {
                write!(f, "net {net} is split into {components} components")
            }
            Violation::GridMismatch { at, layer } => {
                write!(f, "grid/trace occupancy mismatch at {at} on {layer}")
            }
        }
    }
}

/// The result of a verification pass: all violations found.
///
/// # Examples
///
/// ```
/// use route_verify::Report;
///
/// let report = Report::new(vec![]);
/// assert!(report.is_clean());
/// assert_eq!(report.to_string(), "clean");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    violations: Vec<Violation>,
}

impl Report {
    /// Wraps a list of violations.
    pub fn new(violations: Vec<Violation>) -> Self {
        Report { violations }
    }

    /// Whether no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of violations of connectivity kind ([`Violation::Disconnected`]).
    pub fn disconnected_nets(&self) -> usize {
        self.violations.iter().filter(|v| matches!(v, Violation::Disconnected { .. })).count()
    }

    /// Whether the report contains only connectivity violations — i.e.
    /// the wiring placed so far is legal, just incomplete. Useful when
    /// scoring routers that are allowed to fail some nets.
    pub fn is_legal_but_incomplete(&self) -> bool {
        !self.is_clean()
            && self.violations.iter().all(|v| matches!(v, Violation::Disconnected { .. }))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(!r.is_legal_but_incomplete());
        assert_eq!(r.disconnected_nets(), 0);
    }

    #[test]
    fn incomplete_only() {
        let r = Report::new(vec![Violation::Disconnected { net: NetId(0), components: 2 }]);
        assert!(!r.is_clean());
        assert!(r.is_legal_but_incomplete());
        assert_eq!(r.disconnected_nets(), 1);
    }

    #[test]
    fn mixed_violations_are_not_merely_incomplete() {
        let r = Report::new(vec![
            Violation::Disconnected { net: NetId(0), components: 2 },
            Violation::Short { a: NetId(0), b: NetId(1), at: Point::new(1, 1), layer: Layer::M1 },
        ]);
        assert!(!r.is_legal_but_incomplete());
    }

    #[test]
    fn display_lists_violations() {
        let r = Report::new(vec![Violation::BadVia { net: NetId(2), at: Point::new(3, 4) }]);
        let text = r.to_string();
        assert!(text.contains("1 violation"));
        assert!(text.contains("n2"));
    }
}
