//! Design-rule and connectivity verification for routed grids.
//!
//! This crate is the independent oracle of the workspace: it never trusts
//! the invariants the routers or the [`RouteDb`](route_model::RouteDb)
//! claim to maintain. Instead it recomputes occupancy from the committed
//! traces and pins, and checks:
//!
//! * **shorts** — two nets claiming the same `(cell, layer)` slot,
//! * **obstacle overlaps** — wiring over blocked cells or outside the
//!   routing region,
//! * **via legality** — every layer change is backed by a via and every
//!   via connects two slots of the same net,
//! * **connectivity** — all pins of each net belong to one electrically
//!   connected component,
//! * **grid consistency** — the database's live grid matches the
//!   occupancy recomputed from scratch.
//!
//! Every experiment in the benchmark harness validates its routing result
//! through [`verify`] before reporting numbers.
//!
//! The checks themselves live in the `route-analyze` crate's lint
//! registry (rules `L001`–`L005`), so DRC logic has exactly one home;
//! this crate keeps the stable [`Violation`]-shaped reporting API and
//! adds the [`columns_used`]/[`rows_used`] track metrics.
//!
//! # Examples
//!
//! ```
//! use route_model::{ProblemBuilder, PinSide, RouteDb};
//! use route_verify::verify;
//!
//! let mut b = ProblemBuilder::switchbox(4, 4);
//! b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
//! let problem = b.build()?;
//! let db = RouteDb::new(&problem);
//!
//! // No wiring yet: the single net is incomplete.
//! let report = verify(&problem, &db);
//! assert!(!report.is_clean());
//! # Ok::<(), route_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod check;
mod metrics;
mod report;

pub use check::verify;
pub use metrics::{columns_used, rows_used};
pub use report::{Report, Violation};
