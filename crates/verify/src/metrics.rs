use std::collections::HashSet;

use route_geom::Layer;
use route_model::RouteDb;

/// Number of distinct grid rows carrying net wiring on `layer`.
///
/// For channel-style problems routed in the reserved-layer model, the row
/// usage of the horizontal layer [`Layer::M1`] is the classic **track
/// count** quality metric.
pub fn rows_used(db: &RouteDb, layer: Layer) -> usize {
    let mut rows: HashSet<i32> = HashSet::new();
    for net in 0..db.net_count() {
        let net = route_model::NetId(net as u32);
        for (_, trace) in db.traces(net) {
            for step in trace.steps() {
                if step.layer == layer {
                    rows.insert(step.at.y);
                }
            }
        }
    }
    rows.len()
}

/// Number of distinct grid columns carrying net wiring on `layer`.
///
/// The column usage of the vertical layer [`Layer::M2`] is the switchbox
/// analogue of the track count (the abstract's "one less column" claim is
/// measured in columns).
pub fn columns_used(db: &RouteDb, layer: Layer) -> usize {
    let mut cols: HashSet<i32> = HashSet::new();
    for net in 0..db.net_count() {
        let net = route_model::NetId(net as u32);
        for (_, trace) in db.traces(net) {
            for step in trace.steps() {
                if step.layer == layer {
                    cols.insert(step.at.x);
                }
            }
        }
    }
    cols.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::Point;
    use route_model::{PinSide, ProblemBuilder, Step, Trace};

    #[test]
    fn counts_rows_and_columns() {
        let mut b = ProblemBuilder::switchbox(5, 5);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        for (i, y) in [1i32, 3].iter().enumerate() {
            let t = Trace::from_steps(
                (0..5).map(|x| Step::new(Point::new(x, *y), Layer::M1)).collect(),
            )
            .unwrap();
            db.commit(p.nets()[i].id, t).unwrap();
        }
        assert_eq!(rows_used(&db, Layer::M1), 2);
        assert_eq!(rows_used(&db, Layer::M2), 0);
        assert_eq!(columns_used(&db, Layer::M1), 5);
    }

    #[test]
    fn empty_db_uses_nothing() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
        let p = b.build().unwrap();
        let db = RouteDb::new(&p);
        assert_eq!(rows_used(&db, Layer::M1), 0);
        assert_eq!(columns_used(&db, Layer::M2), 0);
    }
}
