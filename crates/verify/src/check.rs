use route_analyze::{error_rules, lint_db_with, LintFinding};
use route_model::{Problem, RouteDb};

use crate::{Report, Violation};

/// Verifies a routing database against its problem, recomputing all
/// occupancy from pins and traces.
///
/// Since the static analyzer subsumed DRC, this is a thin adapter: it
/// runs the error-severity rules of `route-analyze`'s
/// [lint registry](route_analyze::rules) — exactly the historical
/// checks listed in the [crate docs](crate) — and reports them in the
/// [`Violation`] vocabulary this crate has always exposed. Warning
/// rules (stacked vias, via adjacency, dead wiring) never appear here;
/// query [`route_analyze::lint_db`] directly for the full catalog.
///
/// Returns a [`Report`] with every violation found.
pub fn verify(problem: &Problem, db: &RouteDb) -> Report {
    let lint = lint_db_with(problem, db, error_rules());
    let violations = lint
        .findings()
        .iter()
        .filter_map(|finding| match *finding {
            LintFinding::Short { a, b, at, layer } => Some(Violation::Short { a, b, at, layer }),
            LintFinding::BlockedCell { net, at, layer } => {
                Some(Violation::ObstacleOverlap { net, at, layer })
            }
            LintFinding::DanglingVia { net, at } => Some(Violation::BadVia { net, at }),
            LintFinding::Disconnected { net, components } => {
                Some(Violation::Disconnected { net, components })
            }
            LintFinding::GridMismatch { at, layer } => Some(Violation::GridMismatch { at, layer }),
            // Warning-severity findings are not selected above; if the
            // registry grows, they still have no Violation counterpart.
            _ => None,
        })
        .collect();
    Report::new(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::{Layer, Point};
    use route_model::{PinSide, Problem, ProblemBuilder, Step, Trace};

    fn problem_two_pins() -> Problem {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.build().unwrap()
    }

    fn m1_row(y: i32, x0: i32, x1: i32) -> Trace {
        Trace::from_steps((x0..=x1).map(|x| Step::new(Point::new(x, y), Layer::M1)).collect())
            .unwrap()
    }

    #[test]
    fn unrouted_net_is_disconnected() {
        let p = problem_two_pins();
        let db = RouteDb::new(&p);
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
        assert!(r.is_legal_but_incomplete());
    }

    #[test]
    fn straight_route_is_clean() {
        let p = problem_two_pins();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 4)).unwrap();
        let r = verify(&p, &db);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn route_with_via_is_clean() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Top, 3);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        let mut steps: Vec<Step> = (0..4).map(|x| Step::new(Point::new(x, 0), Layer::M1)).collect();
        steps.push(Step::new(Point::new(3, 0), Layer::M2));
        steps.extend((1..4).map(|y| Step::new(Point::new(3, y), Layer::M2)));
        db.commit(p.nets()[0].id, Trace::from_steps(steps).unwrap()).unwrap();
        let r = verify(&p, &db);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn wire_touching_pin_without_via_is_not_connected() {
        // Pin on M1 at (0,1); wire passes on M2 above it without a via:
        // net must still be reported disconnected.
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("a").pin_at(Point::new(0, 1), Layer::M1).pin_at(Point::new(2, 1), Layer::M2);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        let t = Trace::from_steps(vec![
            Step::new(Point::new(2, 1), Layer::M2),
            Step::new(Point::new(1, 1), Layer::M2),
            Step::new(Point::new(0, 1), Layer::M2),
        ])
        .unwrap();
        db.commit(p.nets()[0].id, t).unwrap();
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
    }

    #[test]
    fn disconnected_stub_detected() {
        let p = problem_two_pins();
        let mut db = RouteDb::new(&p);
        // Wire from the left pin only partway across.
        db.commit(p.nets()[0].id, m1_row(1, 0, 2)).unwrap();
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
    }

    #[test]
    fn multi_pin_net_connectivity() {
        let mut b = ProblemBuilder::switchbox(5, 5);
        b.net("t").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2).pin_side(PinSide::Top, 2);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        db.commit(net, m1_row(2, 0, 4)).unwrap();
        // Pins on left/right now connected; top pin still floating.
        assert_eq!(verify(&p, &db).disconnected_nets(), 1);
        // Add the vertical branch with a via at (2,2).
        let mut steps =
            vec![Step::new(Point::new(2, 2), Layer::M1), Step::new(Point::new(2, 2), Layer::M2)];
        steps.extend((3..5).map(|y| Step::new(Point::new(2, y), Layer::M2)));
        db.commit(net, Trace::from_steps(steps).unwrap()).unwrap();
        assert!(verify(&p, &db).is_clean());
    }

    #[test]
    fn single_pin_net_is_trivially_complete() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("solo").pin_at(Point::new(1, 1), Layer::M1);
        let p = b.build().unwrap();
        let db = RouteDb::new(&p);
        assert!(verify(&p, &db).is_clean());
    }

    #[test]
    fn violations_arrive_in_the_registry_order() {
        // Dead wiring (a warning lint) must never surface as a
        // violation, while real errors still do.
        let p = problem_two_pins();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(3, 1, 2)).unwrap();
        let r = verify(&p, &db);
        assert_eq!(r.violations().len(), 1);
        assert!(matches!(r.violations()[0], Violation::Disconnected { .. }));
    }
}
