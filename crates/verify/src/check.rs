use std::collections::{HashMap, HashSet, VecDeque};

use route_geom::{Layer, Point};
use route_model::{NetId, Occupant, Problem, RouteDb, Step};

use crate::{Report, Violation};

/// Verifies a routing database against its problem, recomputing all
/// occupancy from pins and traces.
///
/// Returns a [`Report`] with every violation found; see the
/// [crate docs](crate) for the list of checks performed.
pub fn verify(problem: &Problem, db: &RouteDb) -> Report {
    let mut violations = Vec::new();
    let base = problem.base_grid();

    // Recompute occupancy from scratch: slot -> owning nets.
    let mut occupancy: HashMap<(Point, Layer), Vec<NetId>> = HashMap::new();
    // Vias required by traces (layer changes), per net, keyed by point
    // and the pair's lower layer.
    let mut required_vias: HashMap<NetId, HashSet<(Point, Layer)>> = HashMap::new();

    for net in problem.nets() {
        let mut slots: HashSet<(Point, Layer)> = HashSet::new();
        for pin in &net.pins {
            slots.insert((pin.at, pin.layer));
        }
        for (_, trace) in db.traces(net.id) {
            for step in trace.steps() {
                slots.insert((step.at, step.layer));
            }
            required_vias.entry(net.id).or_default().extend(trace.via_points());
        }
        for slot in slots {
            occupancy.entry(slot).or_default().push(net.id);
        }
    }

    // Shorts and obstacle overlaps.
    for (&(at, layer), owners) in &occupancy {
        if owners.len() > 1 {
            violations.push(Violation::Short { a: owners[0], b: owners[1], at, layer });
        }
        if !base.in_bounds(at) || base.occupant(at, layer) == Occupant::Blocked {
            for &net in owners {
                violations.push(Violation::ObstacleOverlap { net, at, layer });
            }
        }
    }

    // Via legality: every required via must connect the two slots of its
    // layer pair for its net, and the grid must record it for that net.
    for (&net, vias) in &required_vias {
        for &(at, lower) in vias {
            let upper = lower.above().expect("via pairs have an upper layer");
            let both_layers = [lower, upper]
                .iter()
                .all(|&l| occupancy.get(&(at, l)).is_some_and(|o| o.contains(&net)));
            let grid_agrees =
                db.grid().in_bounds(at) && db.grid().via_between(at, lower) == Some(net);
            if !both_layers || !grid_agrees {
                violations.push(Violation::BadVia { net, at });
            }
        }
    }

    // ...and the converse: every via marker on the grid must be backed
    // by a layer change in some live trace of its net.
    for p in base.bounds().cells() {
        for lower in [Layer::M1, Layer::M2] {
            if let Some(net) = db.grid().via_between(p, lower) {
                let backed = required_vias.get(&net).is_some_and(|vias| vias.contains(&(p, lower)));
                if !backed {
                    violations.push(Violation::BadVia { net, at: p });
                }
            }
        }
    }

    // Connectivity per net.
    for net in problem.nets() {
        let components = pin_components(db, net.id, &required_vias);
        if components > 1 {
            violations.push(Violation::Disconnected { net: net.id, components });
        }
    }

    // Grid consistency: the live grid must equal recomputed occupancy
    // wherever the base grid is not blocked.
    for p in base.bounds().cells() {
        for layer in Layer::ALL {
            if base.occupant(p, layer) == Occupant::Blocked {
                continue;
            }
            let expected = occupancy.get(&(p, layer)).and_then(|o| o.first().copied());
            let actual = db.grid().occupant(p, layer).net();
            let actual_free = db.grid().occupant(p, layer).is_free();
            let matches = match expected {
                Some(net) => actual == Some(net),
                None => actual_free,
            };
            if !matches {
                violations.push(Violation::GridMismatch { at: p, layer });
            }
        }
    }

    Report::new(violations)
}

/// Counts the connected components of `net`'s occupancy that contain at
/// least one pin. Complete nets have exactly one.
fn pin_components(
    db: &RouteDb,
    net: NetId,
    required_vias: &HashMap<NetId, HashSet<(Point, Layer)>>,
) -> usize {
    let slots: HashSet<(Point, Layer)> =
        db.net_slots(net).into_iter().map(|s: Step| (s.at, s.layer)).collect();
    let vias = required_vias.get(&net);
    let has_via = |p: Point, lower: Layer| {
        vias.is_some_and(|v| v.contains(&(p, lower)))
            || db.grid().via_between(p, lower) == Some(net)
    };

    let mut seen: HashSet<(Point, Layer)> = HashSet::new();
    let mut components = 0usize;
    for pin in db.pins(net) {
        let start = (pin.at, pin.layer);
        if seen.contains(&start) {
            continue;
        }
        components += 1;
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some((p, layer)) = queue.pop_front() {
            // Same-layer neighbours.
            for n in p.neighbors() {
                let key = (n, layer);
                if slots.contains(&key) && seen.insert(key) {
                    queue.push_back(key);
                }
            }
            // Layer changes through vias to adjacent layers.
            for adj in layer.adjacent() {
                let lower = layer.via_pair_with(adj).expect("adjacent layers pair");
                if has_via(p, lower) {
                    let key = (p, adj);
                    if slots.contains(&key) && seen.insert(key) {
                        queue.push_back(key);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder, Trace};

    fn problem_two_pins() -> Problem {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.build().unwrap()
    }

    fn m1_row(y: i32, x0: i32, x1: i32) -> Trace {
        Trace::from_steps((x0..=x1).map(|x| Step::new(Point::new(x, y), Layer::M1)).collect())
            .unwrap()
    }

    #[test]
    fn unrouted_net_is_disconnected() {
        let p = problem_two_pins();
        let db = RouteDb::new(&p);
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
        assert!(r.is_legal_but_incomplete());
    }

    #[test]
    fn straight_route_is_clean() {
        let p = problem_two_pins();
        let mut db = RouteDb::new(&p);
        db.commit(p.nets()[0].id, m1_row(1, 0, 4)).unwrap();
        let r = verify(&p, &db);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn route_with_via_is_clean() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Top, 3);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        let mut steps: Vec<Step> = (0..4).map(|x| Step::new(Point::new(x, 0), Layer::M1)).collect();
        steps.push(Step::new(Point::new(3, 0), Layer::M2));
        steps.extend((1..4).map(|y| Step::new(Point::new(3, y), Layer::M2)));
        db.commit(p.nets()[0].id, Trace::from_steps(steps).unwrap()).unwrap();
        let r = verify(&p, &db);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn wire_touching_pin_without_via_is_not_connected() {
        // Pin on M1 at (0,1); wire passes on M2 above it without a via:
        // net must still be reported disconnected.
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("a").pin_at(Point::new(0, 1), Layer::M1).pin_at(Point::new(2, 1), Layer::M2);
        let p = b.build().unwrap();
        let mut db = RouteDb::new(&p);
        let t = Trace::from_steps(vec![
            Step::new(Point::new(2, 1), Layer::M2),
            Step::new(Point::new(1, 1), Layer::M2),
            Step::new(Point::new(0, 1), Layer::M2),
        ])
        .unwrap();
        db.commit(p.nets()[0].id, t).unwrap();
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
    }

    #[test]
    fn disconnected_stub_detected() {
        let p = problem_two_pins();
        let mut db = RouteDb::new(&p);
        // Wire from the left pin only partway across.
        db.commit(p.nets()[0].id, m1_row(1, 0, 2)).unwrap();
        let r = verify(&p, &db);
        assert_eq!(r.disconnected_nets(), 1);
    }

    #[test]
    fn multi_pin_net_connectivity() {
        let mut b = ProblemBuilder::switchbox(5, 5);
        b.net("t").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2).pin_side(PinSide::Top, 2);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        db.commit(net, m1_row(2, 0, 4)).unwrap();
        // Pins on left/right now connected; top pin still floating.
        assert_eq!(verify(&p, &db).disconnected_nets(), 1);
        // Add the vertical branch with a via at (2,2).
        let mut steps =
            vec![Step::new(Point::new(2, 2), Layer::M1), Step::new(Point::new(2, 2), Layer::M2)];
        steps.extend((3..5).map(|y| Step::new(Point::new(2, y), Layer::M2)));
        db.commit(net, Trace::from_steps(steps).unwrap()).unwrap();
        assert!(verify(&p, &db).is_clean());
    }

    #[test]
    fn single_pin_net_is_trivially_complete() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.net("solo").pin_at(Point::new(1, 1), Layer::M1);
        let p = b.build().unwrap();
        let db = RouteDb::new(&p);
        assert!(verify(&p, &db).is_clean());
    }
}
