//! Shared, versioned report schemas.
//!
//! `vroute route --json`, `vroute batch --json` and the serve protocol
//! all describe a routing attempt the same way: a **status** plus the
//! status-specific payload fields. This module owns that shape so the
//! three surfaces cannot drift apart, and stamps every top-level
//! document with the protocol version (`"v": 1`).
//!
//! # Examples
//!
//! ```
//! use route_proto::report::RouteOutcomeReport;
//! use route_proto::json::Json;
//!
//! let outcome =
//!     RouteOutcomeReport::Routed { legal: true, complete: true, wire: 42, vias: 3, checksum: 7 };
//! assert_eq!(outcome.status(), "complete");
//! let obj = Json::Obj(outcome.pairs());
//! assert_eq!(obj.get("checksum").and_then(Json::as_str), Some("0000000000000007"));
//! ```

use route_model::MetricsRecorder;

use crate::json::Json;
use crate::wire::PROTO_VERSION;

/// Builds a versioned top-level document: `{"v":1,"command":...,...}`.
pub fn versioned_doc(command: &str, pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
    let mut all: Vec<(String, Json)> =
        vec![("v".into(), Json::Int(PROTO_VERSION)), ("command".into(), Json::str(command))];
    all.extend(pairs);
    Json::Obj(all)
}

/// The outcome of one routing attempt, as reported on every
/// machine-readable surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcomeReport {
    /// The router produced a database (possibly incomplete or illegal).
    Routed {
        /// The verifier found no rule violations on the routed nets.
        legal: bool,
        /// Every net was routed.
        complete: bool,
        /// Total wirelength of the database.
        wire: u64,
        /// Via count of the database.
        vias: u64,
        /// `RouteDb::checksum()` — byte-identical results share it.
        checksum: u64,
    },
    /// Static analysis proved the instance unroutable before any
    /// router ran.
    Infeasible {
        /// Summary of the infeasibility certificate.
        reason: String,
    },
    /// The attempt failed (router error, panic, deadline...).
    Failed {
        /// The rendered error.
        error: String,
    },
}

impl RouteOutcomeReport {
    /// The status word: `complete`, `incomplete`, `illegal`,
    /// `infeasible` or `error`. Stable wire vocabulary.
    pub fn status(&self) -> &'static str {
        match self {
            RouteOutcomeReport::Routed { legal: false, .. } => "illegal",
            RouteOutcomeReport::Routed { complete: true, .. } => "complete",
            RouteOutcomeReport::Routed { .. } => "incomplete",
            RouteOutcomeReport::Infeasible { .. } => "infeasible",
            RouteOutcomeReport::Failed { .. } => "error",
        }
    }

    /// Whether this outcome counts as fully successful (complete and
    /// legal).
    pub fn is_success(&self) -> bool {
        matches!(self, RouteOutcomeReport::Routed { legal: true, complete: true, .. })
    }

    /// The status field plus the status-specific payload fields, in
    /// stable order. Callers prepend context (`file`, `router`...) and
    /// append timings.
    pub fn pairs(&self) -> Vec<(String, Json)> {
        let mut pairs: Vec<(String, Json)> = vec![("status".into(), Json::str(self.status()))];
        match self {
            RouteOutcomeReport::Routed { wire, vias, checksum, .. } => {
                pairs.push(("wire".into(), Json::from(*wire)));
                pairs.push(("vias".into(), Json::from(*vias)));
                pairs.push(("checksum".into(), Json::str(format!("{checksum:016x}"))));
            }
            RouteOutcomeReport::Infeasible { reason } => {
                pairs.push(("reason".into(), Json::str(reason.as_str())));
            }
            RouteOutcomeReport::Failed { error } => {
                pairs.push(("error".into(), Json::str(error.as_str())));
            }
        }
        pairs
    }
}

/// The JSON object for a metrics recorder, mirroring
/// [`MetricsRecorder::table`] with machine-friendly keys. Shared by
/// `route --json`, `batch --json` and the serve `stats`/`route`
/// responses.
pub fn metrics_json(m: &MetricsRecorder) -> Json {
    let r = m.router();
    let e = m.expansion();
    Json::obj([
        ("nets_scheduled", Json::from(m.nets_scheduled())),
        ("nets_committed", Json::from(m.nets_committed())),
        ("nets_failed", Json::from(m.nets_failed())),
        ("hard_searches_won", Json::from(r.hard_routes)),
        ("soft_searches_won", Json::from(r.soft_routes)),
        ("weak_modifications", Json::from(r.weak_pushes)),
        ("strong_ripups", Json::from(r.rips)),
        ("penalty_escalations", Json::from(m.escalations())),
        ("max_penalty", Json::from(m.max_penalty())),
        ("expanded", Json::from(r.expanded)),
        ("searches", Json::from(e.count())),
        ("expanded_per_search_mean", Json::from(e.mean())),
        ("expanded_max", Json::from(e.max())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_cover_every_outcome() {
        let ok = RouteOutcomeReport::Routed {
            legal: true,
            complete: true,
            wire: 10,
            vias: 2,
            checksum: 0xabc,
        };
        assert_eq!(ok.status(), "complete");
        assert!(ok.is_success());
        let partial = RouteOutcomeReport::Routed {
            legal: true,
            complete: false,
            wire: 10,
            vias: 2,
            checksum: 0,
        };
        assert_eq!(partial.status(), "incomplete");
        assert!(!partial.is_success());
        let bad = RouteOutcomeReport::Routed {
            legal: false,
            complete: true,
            wire: 10,
            vias: 2,
            checksum: 0,
        };
        assert_eq!(bad.status(), "illegal");
        assert_eq!(RouteOutcomeReport::Infeasible { reason: "cut".into() }.status(), "infeasible");
        assert_eq!(RouteOutcomeReport::Failed { error: "boom".into() }.status(), "error");
    }

    #[test]
    fn pairs_carry_status_specific_fields() {
        let obj = Json::Obj(
            RouteOutcomeReport::Routed {
                legal: true,
                complete: true,
                wire: 42,
                vias: 3,
                checksum: 0x1f,
            }
            .pairs(),
        );
        assert_eq!(obj.get("status").and_then(Json::as_str), Some("complete"));
        assert_eq!(obj.get("wire").and_then(Json::as_u64), Some(42));
        assert_eq!(obj.get("checksum").and_then(Json::as_str), Some("000000000000001f"));
        let obj =
            Json::Obj(RouteOutcomeReport::Infeasible { reason: "saturated cut".into() }.pairs());
        assert_eq!(obj.get("reason").and_then(Json::as_str), Some("saturated cut"));
        assert_eq!(obj.get("wire"), None);
    }

    #[test]
    fn versioned_doc_stamps_v_first() {
        let doc = versioned_doc("route", [("x".to_owned(), Json::from(1u64))]);
        let text = doc.render_compact();
        assert!(text.starts_with("{\"v\":1,\"command\":\"route\""), "{text}");
    }
}
