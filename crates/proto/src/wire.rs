//! The v1 wire protocol: versioned request/response/event envelopes
//! for the line-delimited JSON service (`vroute serve`).
//!
//! Every line on the wire is one JSON object carrying an explicit
//! `"v"` field. Three envelope shapes exist:
//!
//! - **Request** (client → server): `{"v":1,"op":...,"id":...,...}`.
//!   Ops: `route`, `ping`, `stats`, `shutdown`.
//! - **Response** (server → client): `{"v":1,"id":...,"ok":true,
//!   "result":{...}}` or `{"v":1,"id":...,"ok":false,"error":
//!   {"code":...,"message":...}}`. Exactly one response terminates each
//!   request.
//! - **Event** (server → client, only when the request asked for
//!   `"events":true`): `{"v":1,"id":...,"ev":<kind>,...}` — the same
//!   event vocabulary as `RouteEvent::kind_name` and the `--trace`
//!   line schema, tagged with the request id instead of an instance
//!   label. Events precede the terminating response.
//!
//! Decoding is strict but *recoverable*: every malformed line maps to a
//! [`WireError`] with a stable machine-readable [`ErrorCode`], which the
//! server turns into an `ok:false` response on the same connection —
//! a bad line never costs the client its connection.
//!
//! # Examples
//!
//! ```
//! use route_proto::wire::{decode_request, encode_request, Request};
//!
//! let req = Request::Ping { id: Some("p1".into()) };
//! let line = encode_request(&req).render_compact();
//! assert_eq!(decode_request(&line).unwrap(), req);
//! ```

use std::fmt;

use route_model::{RouteEvent, SearchKind};

use crate::json::Json;

/// The protocol version this build speaks. Bump only with a
/// compatibility shim for the previous version.
pub const PROTO_VERSION: i64 = 1;

/// Default cap on one request line, in bytes. Instance texts are a few
/// KiB; a megabyte of headroom keeps legitimate requests safe while
/// bounding a hostile client's memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Highest request priority the protocol accepts (`0..=MAX_PRIORITY`,
/// higher is more urgent).
pub const MAX_PRIORITY: u8 = 9;

/// Default priority for requests that do not specify one.
pub const DEFAULT_PRIORITY: u8 = 4;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers `{"pong":true}`.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Service statistics snapshot.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Graceful shutdown: drain queued work, then exit.
    Shutdown {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
    },
    /// Route one instance.
    Route(RouteRequest),
}

impl Request {
    /// The correlation id, whichever op this is.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::Ping { id } | Request::Stats { id } | Request::Shutdown { id } => {
                id.as_deref()
            }
            Request::Route(r) => r.id.as_deref(),
        }
    }
}

/// The payload of a `route` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRequest {
    /// Client-chosen correlation id, echoed in the response and in
    /// every streamed event.
    pub id: Option<String>,
    /// The instance text, in the same `sb` format `vroute route` reads
    /// from disk (embedded newlines are JSON-escaped on the wire).
    pub instance: String,
    /// Router name (same names as `vroute batch --router`); `None`
    /// uses the server default.
    pub router: Option<String>,
    /// Per-request wall-clock budget covering queue wait plus routing.
    pub deadline_ms: Option<u64>,
    /// Priority `0..=9`, higher first out of the queue.
    pub priority: u8,
    /// Stream `RouteObserver` events before the final response.
    pub events: bool,
}

impl RouteRequest {
    /// A request with default priority, no deadline and no events.
    pub fn new(instance: impl Into<String>) -> Self {
        RouteRequest {
            id: None,
            instance: instance.into(),
            router: None,
            deadline_ms: None,
            priority: DEFAULT_PRIORITY,
            events: false,
        }
    }
}

/// Stable machine-readable error codes carried in `ok:false` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line exceeded the server's byte cap.
    Oversized,
    /// The line was not valid JSON.
    BadJson,
    /// The `"v"` field was missing or not a version this server speaks.
    BadVersion,
    /// The envelope was JSON but structurally invalid (missing/mistyped
    /// fields, bad priority, unparsable instance...).
    BadRequest,
    /// The `"op"` field named no known operation.
    UnknownOp,
    /// Admission control rejected the request: the queue is full.
    Overloaded,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired before a result was delivered.
    DeadlineExceeded,
    /// The server failed internally (e.g. a worker panic).
    Internal,
}

impl ErrorCode {
    /// The wire spelling (kebab-case, stable across releases).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back to a code (client side).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "oversized" => ErrorCode::Oversized,
            "bad-json" => ErrorCode::BadJson,
            "bad-version" => ErrorCode::BadVersion,
            "bad-request" => ErrorCode::BadRequest,
            "unknown-op" => ErrorCode::UnknownOp,
            "overloaded" => ErrorCode::Overloaded,
            "shutting-down" => ErrorCode::ShuttingDown,
            "deadline-exceeded" => ErrorCode::DeadlineExceeded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level failure: a stable code plus a human-readable
/// message. Serialized into `ok:false` responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A new error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::BadRequest, message)
}

/// Decodes one request line. Returns a structured [`WireError`] —
/// never panics, so a server can always answer a bad line with an
/// error response instead of dropping the connection.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let doc = Json::parse(line).map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    match doc.get("v") {
        Some(Json::Int(v)) if *v == PROTO_VERSION => {}
        Some(Json::Int(v)) => {
            return Err(WireError::new(
                ErrorCode::BadVersion,
                format!("protocol version {v} not supported (this server speaks {PROTO_VERSION})"),
            ));
        }
        Some(_) => {
            return Err(WireError::new(ErrorCode::BadVersion, "field 'v' must be an integer"))
        }
        None => return Err(WireError::new(ErrorCode::BadVersion, "missing field 'v'")),
    }
    let id = match doc.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("field 'id' must be a string")),
    };
    let op = doc.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing field 'op'"))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "route" => {
            let instance = doc
                .get("instance")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("route: missing field 'instance'"))?
                .to_owned();
            let router = match doc.get("router") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(bad("route: field 'router' must be a string")),
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    bad("route: field 'deadline_ms' must be a non-negative integer")
                })?),
            };
            let priority = match doc.get("priority") {
                None | Some(Json::Null) => DEFAULT_PRIORITY,
                Some(v) => v
                    .as_u64()
                    .and_then(|p| u8::try_from(p).ok())
                    .filter(|p| *p <= MAX_PRIORITY)
                    .ok_or_else(|| {
                        bad(format!("route: field 'priority' must be 0..={MAX_PRIORITY}"))
                    })?,
            };
            let events = match doc.get("events") {
                None | Some(Json::Null) => false,
                Some(v) => {
                    v.as_bool().ok_or_else(|| bad("route: field 'events' must be a bool"))?
                }
            };
            Ok(Request::Route(RouteRequest { id, instance, router, deadline_ms, priority, events }))
        }
        other => Err(WireError::new(ErrorCode::UnknownOp, format!("unknown op '{other}'"))),
    }
}

/// Encodes a request as its wire object (client side). Render with
/// [`Json::render_compact`] and terminate with `\n`.
pub fn encode_request(req: &Request) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("v".into(), Json::Int(PROTO_VERSION))];
    let (op, id) = match req {
        Request::Ping { id } => ("ping", id),
        Request::Stats { id } => ("stats", id),
        Request::Shutdown { id } => ("shutdown", id),
        Request::Route(r) => ("route", &r.id),
    };
    pairs.push(("op".into(), Json::str(op)));
    if let Some(id) = id {
        pairs.push(("id".into(), Json::str(id.as_str())));
    }
    if let Request::Route(r) = req {
        pairs.push(("instance".into(), Json::str(r.instance.as_str())));
        if let Some(router) = &r.router {
            pairs.push(("router".into(), Json::str(router.as_str())));
        }
        if let Some(ms) = r.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::from(ms)));
        }
        if r.priority != DEFAULT_PRIORITY {
            pairs.push(("priority".into(), Json::from(u64::from(r.priority))));
        }
        if r.events {
            pairs.push(("events".into(), Json::Bool(true)));
        }
    }
    Json::Obj(pairs)
}

fn id_json(id: Option<&str>) -> Json {
    id.map_or(Json::Null, Json::str)
}

/// Builds a success response envelope.
pub fn response_ok(id: Option<&str>, result: Json) -> Json {
    Json::obj([
        ("v", Json::Int(PROTO_VERSION)),
        ("id", id_json(id)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// Builds an error response envelope.
pub fn response_err(id: Option<&str>, err: &WireError) -> Json {
    Json::obj([
        ("v", Json::Int(PROTO_VERSION)),
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str(err.code.as_str())),
                ("message", Json::str(err.message.as_str())),
            ]),
        ),
    ])
}

/// Builds one streamed event envelope: the request id plus the
/// event's own payload fields (see [`event_pairs`]).
pub fn event_line(id: Option<&str>, ev: &RouteEvent) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("v".into(), Json::Int(PROTO_VERSION)),
        ("id".into(), id_json(id)),
        ("ev".into(), Json::str(ev.kind_name())),
    ];
    pairs.extend(event_pairs(ev));
    Json::Obj(pairs)
}

/// The payload fields for one [`RouteEvent`], shared by the `--trace`
/// line schema and the serve event stream so both speak one
/// vocabulary.
pub fn event_pairs(ev: &RouteEvent) -> Vec<(String, Json)> {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    match *ev {
        RouteEvent::NetScheduled { net }
        | RouteEvent::NetCommitted { net }
        | RouteEvent::NetFailed { net } => {
            pairs.push(("net".into(), Json::from(u64::from(net.0))));
        }
        RouteEvent::SearchDone { net, kind, probe } => {
            pairs.push(("net".into(), Json::from(u64::from(net.0))));
            pairs.push((
                "kind".into(),
                Json::str(match kind {
                    SearchKind::Hard => "hard",
                    SearchKind::Soft => "soft",
                }),
            ));
            pairs.push(("expanded".into(), Json::from(probe.expanded)));
            pairs.push(("relaxed".into(), Json::from(probe.relaxed)));
            pairs.push(("heap_peak".into(), Json::from(probe.heap_peak)));
            pairs.push(("found".into(), Json::from(probe.found)));
        }
        RouteEvent::WeakModification { net, victim } => {
            pairs.push(("net".into(), Json::from(u64::from(net.0))));
            pairs.push(("victim".into(), Json::from(u64::from(victim.0))));
        }
        RouteEvent::StrongRipup { net, victim, rip_count } => {
            pairs.push(("net".into(), Json::from(u64::from(net.0))));
            pairs.push(("victim".into(), Json::from(u64::from(victim.0))));
            pairs.push(("rip_count".into(), Json::from(u64::from(rip_count))));
        }
        RouteEvent::PenaltyEscalation { victim, penalty } => {
            pairs.push(("victim".into(), Json::from(u64::from(victim.0))));
            pairs.push(("penalty".into(), Json::from(penalty)));
        }
    }
    pairs
}

/// One server-to-client line, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Terminal success response.
    Ok {
        /// Echoed correlation id.
        id: Option<String>,
        /// The op-specific result object.
        result: Json,
    },
    /// Terminal error response.
    Err {
        /// Echoed correlation id (null when the request id was unreadable).
        id: Option<String>,
        /// The structured error.
        error: WireError,
    },
    /// A streamed observer event (non-terminal).
    Event {
        /// Echoed correlation id.
        id: Option<String>,
        /// The full event object (including `"ev"` and payload fields).
        body: Json,
    },
}

/// Decodes one server line (client side). Responses carry `"ok"`;
/// anything else with `"ev"` is a streamed event.
pub fn decode_server_msg(line: &str) -> Result<ServerMsg, WireError> {
    let doc = Json::parse(line).map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
    match doc.get("v").and_then(Json::as_i64) {
        Some(PROTO_VERSION) => {}
        Some(v) => {
            return Err(WireError::new(
                ErrorCode::BadVersion,
                format!("server speaks protocol version {v}, expected {PROTO_VERSION}"),
            ));
        }
        None => return Err(WireError::new(ErrorCode::BadVersion, "missing field 'v'")),
    }
    let id = doc.get("id").and_then(Json::as_str).map(str::to_owned);
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            let result = doc.get("result").cloned().ok_or_else(|| bad("missing field 'result'"))?;
            Ok(ServerMsg::Ok { id, result })
        }
        Some(false) => {
            let error = doc.get("error").ok_or_else(|| bad("missing field 'error'"))?;
            let code = error
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::parse)
                .ok_or_else(|| bad("missing or unknown error code"))?;
            let message =
                error.get("message").and_then(Json::as_str).unwrap_or_default().to_owned();
            Ok(ServerMsg::Err { id, error: WireError::new(code, message) })
        }
        None if doc.get("ev").is_some() => Ok(ServerMsg::Event { id, body: doc }),
        _ => Err(bad("line is neither a response nor an event")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_stats_shutdown_round_trip() {
        for req in [
            Request::Ping { id: Some("a".into()) },
            Request::Stats { id: None },
            Request::Shutdown { id: Some("bye".into()) },
        ] {
            let line = encode_request(&req).render_compact();
            assert_eq!(decode_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn route_request_round_trips_with_all_fields() {
        let req = Request::Route(RouteRequest {
            id: Some("r-1".into()),
            instance: "switchbox 4 4\nnet a L3 R1\n".into(),
            router: Some("ripup".into()),
            deadline_ms: Some(250),
            priority: 9,
            events: true,
        });
        let line = encode_request(&req).render_compact();
        assert_eq!(decode_request(&line).unwrap(), req, "{line}");
    }

    #[test]
    fn route_request_defaults() {
        let req = decode_request(r#"{"v":1,"op":"route","instance":"x"}"#).unwrap();
        match req {
            Request::Route(r) => {
                assert_eq!(r.priority, DEFAULT_PRIORITY);
                assert_eq!(r.deadline_ms, None);
                assert!(!r.events);
                assert_eq!(r.router, None);
                assert_eq!(r.id, None);
            }
            other => panic!("expected route, got {other:?}"),
        }
    }

    #[test]
    fn version_is_checked_before_anything_else() {
        let err = decode_request(r#"{"v":2,"op":"ping"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadVersion);
        let err = decode_request(r#"{"op":"ping"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadVersion);
        let err = decode_request(r#"{"v":"1","op":"ping"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadVersion);
    }

    #[test]
    fn malformed_requests_map_to_stable_codes() {
        assert_eq!(decode_request("not json").unwrap_err().code, ErrorCode::BadJson);
        assert_eq!(decode_request("[1,2]").unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(
            decode_request(r#"{"v":1,"op":"explode"}"#).unwrap_err().code,
            ErrorCode::UnknownOp
        );
        assert_eq!(
            decode_request(r#"{"v":1,"op":"route"}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode_request(r#"{"v":1,"op":"route","instance":"x","priority":99}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode_request(r#"{"v":1,"op":"route","instance":"x","deadline_ms":-5}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode_request(r#"{"v":1,"id":7,"op":"ping"}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn responses_decode_on_the_client() {
        let ok = response_ok(Some("q"), Json::obj([("pong", Json::Bool(true))])).render_compact();
        match decode_server_msg(&ok).unwrap() {
            ServerMsg::Ok { id, result } => {
                assert_eq!(id.as_deref(), Some("q"));
                assert_eq!(result.get("pong").and_then(Json::as_bool), Some(true));
            }
            other => panic!("expected ok, got {other:?}"),
        }
        let err = response_err(None, &WireError::new(ErrorCode::Overloaded, "queue full (8)"))
            .render_compact();
        match decode_server_msg(&err).unwrap() {
            ServerMsg::Err { id, error } => {
                assert_eq!(id, None);
                assert_eq!(error.code, ErrorCode::Overloaded);
                assert_eq!(error.message, "queue full (8)");
            }
            other => panic!("expected err, got {other:?}"),
        }
    }

    #[test]
    fn events_decode_on_the_client() {
        use route_model::NetId;
        let ev = RouteEvent::NetCommitted { net: NetId(3) };
        let line = event_line(Some("r9"), &ev).render_compact();
        match decode_server_msg(&line).unwrap() {
            ServerMsg::Event { id, body } => {
                assert_eq!(id.as_deref(), Some("r9"));
                assert_eq!(body.get("ev").and_then(Json::as_str), Some("net_committed"));
                assert_eq!(body.get("net").and_then(Json::as_u64), Some(3));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Oversized,
            ErrorCode::BadJson,
            ErrorCode::BadVersion,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
