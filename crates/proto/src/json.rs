//! A minimal JSON value: writer *and* parser, no dependencies.
//!
//! The workspace is dependency-free, so this hand-rolls the small
//! subset of JSON the machine-readable surfaces need: objects with
//! ordered keys, arrays, strings, integers, floats and booleans.
//! Output is pretty-printed with two-space indentation so artifacts
//! diff well, or rendered compactly for line-delimited protocols.
//! [`Json::parse`] is a strict recursive-descent parser used by the
//! serve protocol to decode request lines.
//!
//! # Examples
//!
//! ```
//! use route_proto::json::Json;
//!
//! let doc = Json::obj([
//!     ("suite", Json::str("channels")),
//!     ("instances", Json::from(64u64)),
//!     ("threads", Json::arr([Json::from(1u64), Json::from(8u64)])),
//! ]);
//! assert!(doc.render().contains("\"instances\": 64"));
//!
//! let back = Json::parse(&doc.render_compact()).unwrap();
//! assert_eq!(back.get("instances").and_then(Json::as_u64), Some(64));
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough precision to round-trip).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from any iterator of key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0).expect("writing to a String cannot fail");
        out.push('\n');
        out
    }

    /// Serializes the value on a single line with no insignificant
    /// whitespace — the form line-delimited JSON (one record per line)
    /// requires.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out).expect("writing to a String cannot fail");
        out
    }

    /// Looks up `key` in an object. `None` on missing keys and on
    /// non-object values, so lookups chain without a type check first.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers widen losslessly up to
    /// 2^53), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document. Strict: the whole input must be
    /// one value plus optional surrounding whitespace; trailing garbage
    /// is an error. Nesting is capped so hostile input cannot overflow
    /// the stack.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    fn write_compact(&self, out: &mut String) -> fmt::Result {
        use fmt::Write;
        match self {
            Json::Arr(items) => {
                write!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    item.write_compact(out)?;
                }
                write!(out, "]")
            }
            Json::Obj(pairs) => {
                write!(out, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    write_escaped(out, key)?;
                    write!(out, ":")?;
                    value.write_compact(out)?;
                }
                write!(out, "}}")
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) -> fmt::Result {
        use fmt::Write;
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => write!(out, "null"),
            Json::Bool(b) => write!(out, "{b}"),
            Json::Int(n) => write!(out, "{n}"),
            Json::Float(x) if x.is_finite() => write!(out, "{x}"),
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            Json::Float(_) => write!(out, "null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => write!(out, "[]"),
            Json::Arr(items) => {
                writeln!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1)?;
                    writeln!(out, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(out, "{close}]")
            }
            Json::Obj(pairs) if pairs.is_empty() => write!(out, "{{}}"),
            Json::Obj(pairs) => {
                writeln!(out, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key)?;
                    write!(out, ": ")?;
                    value.write(out, indent + 1)?;
                    writeln!(out, "{}", if i + 1 < pairs.len() { "," } else { "" })?;
                }
                write!(out, "{close}}}")
            }
        }
    }
}

/// A parse failure: a byte offset into the input and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Deepest allowed nesting of arrays/objects while parsing. Documents
/// deeper than this are rejected rather than risking a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", want as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // A surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                        }
                        _ => return Err(self.err(format!("bad escape '\\{}'", esc as char))),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str, so the
                    // byte stream is valid UTF-8 by construction.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(self.err(format!("invalid number '{text}'"))),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n).map(Json::Int).unwrap_or(Json::Float(n as f64))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(-7i64).render(), "-7\n");
        assert_eq!(Json::from(1.5).render(), "1.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("bell\u{7}").render(), "\"bell\\u0007\"\n");
    }

    #[test]
    fn nested_structure_renders_stably() {
        let doc = Json::obj([
            ("name", Json::str("engine")),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
            ("rows", Json::arr([Json::obj([("jobs", Json::from(1u64))])])),
        ]);
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"engine\",\n  \"empty_arr\": [],\n  \"empty_obj\": {},\n  \
             \"rows\": [\n    {\n      \"jobs\": 1\n    }\n  ]\n}\n"
        );
    }

    #[test]
    fn huge_u64_degrades_to_float() {
        assert!(matches!(Json::from(u64::MAX), Json::Float(_)));
    }

    #[test]
    fn compact_rendering_is_single_line() {
        let doc = Json::obj([
            ("kind", Json::str("search_done")),
            ("probe", Json::obj([("expanded", Json::from(12u64))])),
            ("tags", Json::arr([Json::from(1u64), Json::from(2u64)])),
        ]);
        assert_eq!(
            doc.render_compact(),
            "{\"kind\":\"search_done\",\"probe\":{\"expanded\":12},\"tags\":[1,2]}"
        );
        assert_eq!(Json::arr([]).render_compact(), "[]");
        assert_eq!(Json::obj::<String>([]).render_compact(), "{}");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(Json::parse(r#""a\"b\\c\nd\t""#).unwrap(), Json::str("a\"b\\c\nd\t"));
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::str("Aé"));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\q""#).is_err());
    }

    #[test]
    fn parse_structures() {
        let doc = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn every_render_round_trips() {
        let doc = Json::obj([
            ("s", Json::str("tricky \"quote\" \\ \n \u{1F600}")),
            ("i", Json::from(-12i64)),
            ("f", Json::from(0.25)),
            ("b", Json::from(true)),
            ("n", Json::Null),
            ("a", Json::arr([Json::from(1u64), Json::str("two")])),
            ("o", Json::obj([("inner", Json::from(3u64))])),
        ]);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "01a",
            "--3",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_pathological_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 5, "s": "x", "f": 1.5, "b": false}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(5));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
