//! # route-proto
//!
//! The versioned machine-readable surface of the workspace: a
//! dependency-free JSON value type (writer **and** parser), the v1
//! request/response/event wire envelopes spoken by `vroute serve`, and
//! the shared report schemas that keep `vroute route --json`,
//! `vroute batch --json` and the serve protocol emitting the same
//! types.
//!
//! Everything on the wire and in report files carries an explicit
//! `"v": 1` ([`PROTO_VERSION`]); consumers reject versions they do not
//! speak instead of misreading them.
//!
//! # Examples
//!
//! ```
//! use route_proto::{decode_request, Request, PROTO_VERSION};
//!
//! assert_eq!(PROTO_VERSION, 1);
//! let req = decode_request(r#"{"v":1,"op":"ping","id":"p"}"#).unwrap();
//! assert_eq!(req, Request::Ping { id: Some("p".into()) });
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod report;
pub mod wire;

pub use json::{Json, ParseError};
pub use report::{metrics_json, versioned_doc, RouteOutcomeReport};
pub use wire::{
    decode_request, decode_server_msg, encode_request, event_line, event_pairs, response_err,
    response_ok, ErrorCode, Request, RouteRequest, ServerMsg, WireError, DEFAULT_PRIORITY,
    MAX_LINE_BYTES, MAX_PRIORITY, PROTO_VERSION,
};
