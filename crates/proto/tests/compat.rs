//! v1 wire-compatibility goldens.
//!
//! These tests pin the exact bytes of representative v1 envelopes.
//! They exist to make protocol drift loud: renaming a field, reordering
//! keys or changing a default alters the wire format for every deployed
//! client, so any diff here must come with a version bump (or proof the
//! change is invisible on the wire).

use route_model::{NetId, RouteEvent, SearchKind, SearchProbe};
use route_proto::{
    decode_request, decode_server_msg, encode_request, event_line, response_err, response_ok,
    ErrorCode, Json, Request, RouteRequest, ServerMsg, WireError, PROTO_VERSION,
};

#[test]
fn version_is_one() {
    assert_eq!(PROTO_VERSION, 1);
}

#[test]
fn golden_request_bytes() {
    let cases: Vec<(Request, &str)> = vec![
        (Request::Ping { id: Some("p1".into()) }, r#"{"v":1,"op":"ping","id":"p1"}"#),
        (Request::Stats { id: None }, r#"{"v":1,"op":"stats"}"#),
        (Request::Shutdown { id: Some("x".into()) }, r#"{"v":1,"op":"shutdown","id":"x"}"#),
        (
            Request::Route(RouteRequest {
                id: Some("r1".into()),
                instance: "switchbox 4 4\n".into(),
                router: Some("ripup".into()),
                deadline_ms: Some(100),
                priority: 7,
                events: true,
            }),
            r#"{"v":1,"op":"route","id":"r1","instance":"switchbox 4 4\n","router":"ripup","deadline_ms":100,"priority":7,"events":true}"#,
        ),
        (
            // Defaults are elided on the wire.
            Request::Route(RouteRequest::new("x")),
            r#"{"v":1,"op":"route","instance":"x"}"#,
        ),
    ];
    for (req, golden) in cases {
        assert_eq!(encode_request(&req).render_compact(), golden);
        assert_eq!(decode_request(golden).unwrap(), req, "{golden}");
    }
}

#[test]
fn golden_response_bytes() {
    let ok = response_ok(Some("r1"), Json::obj([("pong", Json::Bool(true))]));
    assert_eq!(ok.render_compact(), r#"{"v":1,"id":"r1","ok":true,"result":{"pong":true}}"#);

    let err = response_err(None, &WireError::new(ErrorCode::Overloaded, "queue full"));
    assert_eq!(
        err.render_compact(),
        r#"{"v":1,"id":null,"ok":false,"error":{"code":"overloaded","message":"queue full"}}"#
    );
}

#[test]
fn golden_event_bytes() {
    let ev = RouteEvent::SearchDone {
        net: NetId(2),
        kind: SearchKind::Hard,
        probe: SearchProbe { expanded: 9, relaxed: 20, heap_peak: 4, found: true },
    };
    assert_eq!(
        event_line(Some("r1"), &ev).render_compact(),
        r#"{"v":1,"id":"r1","ev":"search_done","net":2,"kind":"hard","expanded":9,"relaxed":20,"heap_peak":4,"found":true}"#
    );
}

#[test]
fn a_future_version_is_rejected_not_misread() {
    let err = decode_request(r#"{"v":2,"op":"route","instance":"x","shape":"new"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadVersion);
    assert!(err.message.contains("2"), "{err}");
}

#[test]
fn server_messages_round_trip_through_the_client_decoder() {
    let lines = [
        response_ok(Some("a"), Json::obj([("status", Json::str("complete"))])).render_compact(),
        response_err(Some("b"), &WireError::new(ErrorCode::BadJson, "boom")).render_compact(),
        event_line(Some("c"), &RouteEvent::NetFailed { net: NetId(1) }).render_compact(),
    ];
    match decode_server_msg(&lines[0]).unwrap() {
        ServerMsg::Ok { id, .. } => assert_eq!(id.as_deref(), Some("a")),
        other => panic!("{other:?}"),
    }
    match decode_server_msg(&lines[1]).unwrap() {
        ServerMsg::Err { error, .. } => assert_eq!(error.code, ErrorCode::BadJson),
        other => panic!("{other:?}"),
    }
    match decode_server_msg(&lines[2]).unwrap() {
        ServerMsg::Event { body, .. } => {
            assert_eq!(body.get("ev").and_then(Json::as_str), Some("net_failed"));
        }
        other => panic!("{other:?}"),
    }
}
