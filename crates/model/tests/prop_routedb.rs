//! Property-style tests of the routing database's core invariant: the
//! grid occupancy is exactly the union of pins and live traces, no
//! matter how commits and rip-ups interleave. Inputs come from a
//! deterministic in-file generator so the crate builds with zero
//! registry access.

use route_geom::{Layer, Point};
use route_model::{Occupant, PinSide, Problem, ProblemBuilder, RouteDb, Step, Trace};

const W: u32 = 8;
const H: u32 = 6;

/// Tiny deterministic generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn two_net_problem() -> Problem {
    let mut b = ProblemBuilder::switchbox(W, H);
    b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    b.net("b").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
    b.build().expect("fixed problem is valid")
}

/// A random contiguous walk starting at a random cell on a random layer.
fn random_trace(rng: &mut Rng) -> Trace {
    let mut layer = if rng.coin() { Layer::M2 } else { Layer::M1 };
    let mut at = Point::new(rng.below(u64::from(W)) as i32, rng.below(u64::from(H)) as i32);
    let mut steps = vec![Step::new(at, layer)];
    let moves = 1 + rng.below(11);
    for _ in 0..moves {
        let next = match rng.below(6) {
            0 => Point::new((at.x + 1).min(W as i32 - 1), at.y),
            1 => Point::new((at.x - 1).max(0), at.y),
            2 => Point::new(at.x, (at.y + 1).min(H as i32 - 1)),
            3 => Point::new(at.x, (at.y - 1).max(0)),
            _ => {
                // Layer change (via) to an adjacent layer.
                layer = match layer {
                    Layer::M1 => Layer::M2,
                    Layer::M2 => Layer::M1,
                    Layer::M3 => Layer::M2,
                };
                at
            }
        };
        let step = Step::new(next, layer);
        if step != *steps.last().expect("nonempty") {
            steps.push(step);
        }
        at = next;
    }
    Trace::from_steps(steps).expect("walk is contiguous")
}

/// Committing any sequence of traces for one net and then ripping
/// them all restores the exact original grid.
#[test]
fn commit_rip_all_restores_grid() {
    let mut rng = Rng(0xDB01);
    for _ in 0..100 {
        let problem = two_net_problem();
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        let pristine = db.grid().clone();
        let mut ids = Vec::new();
        let count = 1 + rng.below(7);
        for _ in 0..count {
            // Traces may collide with net b's pins; skip those.
            let t = random_trace(&mut rng);
            if let Ok(id) = db.commit(net, t) {
                ids.push(id);
            }
        }
        // Rip in a scrambled (reversed) order.
        for id in ids.into_iter().rev() {
            assert!(db.rip_up(id).is_some());
        }
        assert_eq!(db.grid(), &pristine);
        assert_eq!(db.stats().wirelength, 0);
        assert_eq!(db.stats().vias, 0);
    }
}

/// After any interleaving of commits and rip-ups, every slot owned by
/// the net on the grid is covered by a pin or a live trace, and vice
/// versa.
#[test]
fn occupancy_matches_live_traces() {
    let mut rng = Rng(0xDB02);
    for _ in 0..100 {
        let problem = two_net_problem();
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        let mut ids = Vec::new();
        let count = 1 + rng.below(7);
        for _ in 0..count {
            let t = random_trace(&mut rng);
            if let Ok(id) = db.commit(net, t) {
                ids.push(id);
            }
        }
        for id in ids {
            if rng.coin() {
                db.rip_up(id);
            }
        }
        // Expected occupancy: pins plus live traces.
        let mut expected: std::collections::HashSet<(Point, Layer)> =
            db.pins(net).iter().map(|p| (p.at, p.layer)).collect();
        for (_, t) in db.traces(net) {
            for s in t.steps() {
                expected.insert((s.at, s.layer));
            }
        }
        for p in db.grid().points() {
            for layer in Layer::ALL {
                let owned = db.grid().occupant(p, layer) == Occupant::Net(net);
                assert_eq!(owned, expected.contains(&(p, layer)), "mismatch at {p:?} {layer:?}");
            }
        }
        // net_slots agrees with the grid.
        let slots = db.net_slots(net);
        assert_eq!(slots.len(), expected.len());
    }
}

/// Commit never mutates the database when it fails.
#[test]
fn failed_commit_is_a_noop() {
    let mut rng = Rng(0xDB03);
    for _ in 0..150 {
        let problem = two_net_problem();
        let (a, b) = (problem.nets()[0].id, problem.nets()[1].id);
        let mut db = RouteDb::new(&problem);
        // Fill net b's row so many traces collide with it.
        let wall = Trace::from_steps(
            (0..W as i32).map(|x| Step::new(Point::new(x, 4), Layer::M1)).collect(),
        )
        .expect("contiguous");
        db.commit(b, wall).expect("empty row commits");
        let before = db.clone();
        let t = random_trace(&mut rng);
        if db.commit(a, t).is_err() {
            assert_eq!(db.grid(), before.grid());
            assert_eq!(db.stats(), before.stats());
        }
    }
}
