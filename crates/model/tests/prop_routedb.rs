//! Property-based tests of the routing database's core invariant: the
//! grid occupancy is exactly the union of pins and live traces, no
//! matter how commits and rip-ups interleave.

use proptest::prelude::*;

use route_geom::{Layer, Point};
use route_model::{Occupant, PinSide, Problem, ProblemBuilder, RouteDb, Step, Trace};

const W: u32 = 8;
const H: u32 = 6;

fn two_net_problem() -> Problem {
    let mut b = ProblemBuilder::switchbox(W, H);
    b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    b.net("b").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 4);
    b.build().expect("fixed problem is valid")
}

/// A random contiguous walk starting at `(x0, y0)` on a random layer.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        0..W as i32,
        0..H as i32,
        any::<bool>(),
        prop::collection::vec(0u8..6, 1..12),
    )
        .prop_map(|(x0, y0, m2, moves)| {
            let mut layer = if m2 { Layer::M2 } else { Layer::M1 };
            let mut at = Point::new(x0, y0);
            let mut steps = vec![Step::new(at, layer)];
            for m in moves {
                let next = match m {
                    0 => Point::new((at.x + 1).min(W as i32 - 1), at.y),
                    1 => Point::new((at.x - 1).max(0), at.y),
                    2 => Point::new(at.x, (at.y + 1).min(H as i32 - 1)),
                    3 => Point::new(at.x, (at.y - 1).max(0)),
                    _ => {
                        // Layer change (via) to an adjacent layer.
                        layer = match layer {
                            Layer::M1 => Layer::M2,
                            Layer::M2 => Layer::M1,
                            Layer::M3 => Layer::M2,
                        };
                        at
                    }
                };
                let step = Step::new(next, layer);
                if step != *steps.last().expect("nonempty") {
                    steps.push(step);
                }
                at = next;
            }
            Trace::from_steps(steps).expect("walk is contiguous")
        })
}

proptest! {
    /// Committing any sequence of traces for one net and then ripping
    /// them all restores the exact original grid.
    #[test]
    fn commit_rip_all_restores_grid(traces in prop::collection::vec(arb_trace(), 1..8)) {
        let problem = two_net_problem();
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        let pristine = db.grid().clone();
        let mut ids = Vec::new();
        for t in traces {
            // Traces may collide with net b's pins; skip those.
            if let Ok(id) = db.commit(net, t) {
                ids.push(id);
            }
        }
        // Rip in a scrambled (reversed) order.
        for id in ids.into_iter().rev() {
            prop_assert!(db.rip_up(id).is_some());
        }
        prop_assert_eq!(db.grid(), &pristine);
        prop_assert_eq!(db.stats().wirelength, 0);
        prop_assert_eq!(db.stats().vias, 0);
    }

    /// After any interleaving of commits and rip-ups, every slot owned by
    /// the net on the grid is covered by a pin or a live trace, and vice
    /// versa.
    #[test]
    fn occupancy_matches_live_traces(
        traces in prop::collection::vec(arb_trace(), 1..8),
        rip_mask in prop::collection::vec(any::<bool>(), 8),
    ) {
        let problem = two_net_problem();
        let net = problem.nets()[0].id;
        let mut db = RouteDb::new(&problem);
        let mut ids = Vec::new();
        for t in traces {
            if let Ok(id) = db.commit(net, t) {
                ids.push(id);
            }
        }
        for (id, rip) in ids.iter().zip(&rip_mask) {
            if *rip {
                db.rip_up(*id);
            }
        }
        // Expected occupancy: pins plus live traces.
        let mut expected: std::collections::HashSet<(Point, Layer)> = db
            .pins(net)
            .iter()
            .map(|p| (p.at, p.layer))
            .collect();
        for (_, t) in db.traces(net) {
            for s in t.steps() {
                expected.insert((s.at, s.layer));
            }
        }
        for p in db.grid().points() {
            for layer in Layer::ALL {
                let owned = db.grid().occupant(p, layer) == Occupant::Net(net);
                prop_assert_eq!(owned, expected.contains(&(p, layer)),
                    "mismatch at {:?} {:?}", p, layer);
            }
        }
        // net_slots agrees with the grid.
        let slots = db.net_slots(net);
        prop_assert_eq!(slots.len(), expected.len());
    }

    /// Commit never mutates the database when it fails.
    #[test]
    fn failed_commit_is_a_noop(t in arb_trace()) {
        let problem = two_net_problem();
        let (a, b) = (problem.nets()[0].id, problem.nets()[1].id);
        let mut db = RouteDb::new(&problem);
        // Fill net b's row so many traces collide with it.
        let wall = Trace::from_steps(
            (0..W as i32).map(|x| Step::new(Point::new(x, 4), Layer::M1)).collect(),
        ).expect("contiguous");
        db.commit(b, wall).expect("empty row commits");
        let before = db.clone();
        if db.commit(a, t).is_err() {
            prop_assert_eq!(db.grid(), before.grid());
            prop_assert_eq!(db.stats(), before.stats());
        }
    }
}
