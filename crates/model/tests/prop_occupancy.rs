//! Property tests for the bit-packed occupancy plane: the word-probe
//! API must agree with the scalar `Grid::is_free` path cell-for-cell,
//! including grid edges and `u64` word boundaries (x ≡ 63 mod 64), and
//! the bit plane must stay coherent with the `Vec<Cell>` store under
//! arbitrary set/clear sequences.

use route_geom::{Dir, Layer, Point};
use route_model::{Grid, NetId, Occupant};

/// Deterministic SplitMix64 so the suite needs no registry access.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A grid wide enough that x = 63/64 (word boundary) and x = 127/128
/// (second boundary) are interior columns, scattered with random
/// occupancy on every layer.
fn scattered_grid(seed: u64, width: u32, height: u32) -> Grid {
    let mut rng = Rng(seed);
    let mut grid = Grid::new(width, height);
    let cells = u64::from(width) * u64::from(height);
    for _ in 0..cells / 2 {
        let p = Point::new(rng.below(u64::from(width)) as i32, rng.below(u64::from(height)) as i32);
        let layer = Layer::ALL[rng.below(Layer::ALL.len() as u64) as usize];
        let occ = match rng.below(3) {
            0 => Occupant::Free,
            1 => Occupant::Blocked,
            _ => Occupant::Net(NetId(rng.below(8) as u32)),
        };
        grid.set_occupant(p, layer, occ);
    }
    grid
}

#[test]
fn probe_mask_agrees_with_scalar_is_free_everywhere() {
    // 130 wide: columns 63/64 and 127/128 straddle word boundaries.
    for seed in 0..8 {
        let grid = scattered_grid(seed, 130, 9);
        let view = grid.occupancy_view();
        assert!(grid.debug_validate_bits(), "seed {seed}: bit plane coherent");
        for layer in Layer::ALL {
            for y in 0..9 {
                for x in 0..130 {
                    let p = Point::new(x, y);
                    let mask = view.neighbor_free_mask(p, layer);
                    for (i, dir) in Dir::ALL.iter().enumerate() {
                        assert_eq!(
                            mask >> i & 1 == 1,
                            grid.is_free(p.step(*dir), layer),
                            "seed {seed}: mask bit {i} ({dir:?}) at {p:?} on {layer:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn probe_mask_handles_off_grid_centers() {
    let grid = scattered_grid(99, 66, 6);
    let view = grid.occupancy_view();
    // Centers just outside every edge, including the corners.
    let mut rim = Vec::new();
    for x in -1..=66 {
        rim.push(Point::new(x, -1));
        rim.push(Point::new(x, 6));
    }
    for y in -1..=6 {
        rim.push(Point::new(-1, y));
        rim.push(Point::new(66, y));
    }
    for p in rim {
        for layer in Layer::ALL {
            let mask = view.neighbor_free_mask(p, layer);
            for (i, dir) in Dir::ALL.iter().enumerate() {
                assert_eq!(
                    mask >> i & 1 == 1,
                    grid.is_free(p.step(*dir), layer),
                    "mask bit {i} ({dir:?}) at off-grid center {p:?} on {layer:?}"
                );
            }
        }
    }
}

#[test]
fn word_probes_agree_with_scalar_at_boundaries() {
    let grid = scattered_grid(7, 129, 5);
    let view = grid.occupancy_view();
    for layer in Layer::ALL {
        for y in 0..5 {
            for x in 0..129 {
                let p = Point::new(x, y);
                let cell = y as usize * 129 + x as usize;
                let bit = view.word(layer, cell / 64) >> (cell % 64) & 1;
                assert_eq!(
                    bit == 1,
                    grid.is_free(p, layer),
                    "word bit vs scalar at {p:?} on {layer:?}"
                );
                assert_eq!(view.is_free(p, layer), grid.is_free(p, layer));
            }
        }
    }
}

#[test]
fn bit_plane_stays_coherent_under_random_set_clear_churn() {
    let mut rng = Rng(0xC0FFEE);
    let mut grid = Grid::new(67, 11);
    for step in 0..4000 {
        let p = Point::new(rng.below(67) as i32, rng.below(11) as i32);
        let layer = Layer::ALL[rng.below(Layer::ALL.len() as u64) as usize];
        let occ = match rng.below(4) {
            0 | 1 => Occupant::Free, // bias toward churn across free/used
            2 => Occupant::Blocked,
            _ => Occupant::Net(NetId(rng.below(4) as u32)),
        };
        grid.set_occupant(p, layer, occ);
        assert_eq!(grid.is_free(p, layer), occ == Occupant::Free);
        if step % 256 == 0 {
            assert!(grid.debug_validate_bits(), "coherent after step {step}");
        }
    }
    assert!(grid.debug_validate_bits());
}
