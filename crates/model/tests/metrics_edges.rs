//! Edge-case coverage for the metrics layer: histogram behaviour at the
//! extreme sample values (`0`, `1`, `u64::MAX`) and algebraic laws of
//! recorder merging — the batch engine folds per-instance recorders in
//! whatever order workers finish, so merge order must never matter.

use route_model::{
    Histogram, MetricsRecorder, NetId, RouteObserver, SearchKind, SearchProbe, HISTOGRAM_BUCKETS,
};

#[test]
fn histogram_at_zero() {
    let mut h = Histogram::new();
    h.record(0);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile_bound(0.0), 0);
    assert_eq!(h.quantile_bound(0.5), 0);
    assert_eq!(h.quantile_bound(1.0), 0);
    // The zero sample lands in the dedicated zero bucket.
    assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(0, 1)]);
    assert_eq!(h.to_string(), "n 1, mean 0.0, p50<= 0, p99<= 0, max 0");
}

#[test]
fn histogram_at_one() {
    let mut h = Histogram::new();
    h.record(1);
    assert_eq!((h.count(), h.sum(), h.max()), (1, 1, 1));
    assert_eq!(h.mean(), 1.0);
    // Bucket 1 covers exactly [1, 1]: the bound is tight here.
    assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(1, 1)]);
    assert_eq!(h.quantile_bound(1.0), 1);
}

#[test]
fn histogram_at_u64_max() {
    let mut h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), u64::MAX);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.quantile_bound(1.0), u64::MAX);
    assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(u64::MAX, 1)]);

    // A second extreme sample saturates the sum instead of wrapping.
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.sum(), u64::MAX, "sum saturates, never wraps");
    assert_eq!(h.max(), u64::MAX);

    // Merging two saturated histograms also saturates.
    let mut other = Histogram::new();
    other.record(u64::MAX);
    h.merge(&other);
    assert_eq!(h.count(), 3);
    assert_eq!(h.sum(), u64::MAX);
}

#[test]
fn histogram_extremes_share_one_histogram() {
    let mut h = Histogram::new();
    for v in [0, 1, u64::MAX] {
        h.record(v);
    }
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    let buckets: Vec<(u64, u64)> = h.buckets().collect();
    assert_eq!(buckets, vec![(0, 1), (1, 1), (u64::MAX, 1)]);
    assert_eq!(buckets.len().min(HISTOGRAM_BUCKETS), buckets.len());
    // p-quantiles walk the buckets in order: the 1/3 rank is the zero
    // bucket, the top rank is the saturating bucket.
    assert_eq!(h.quantile_bound(0.33), 0);
    assert_eq!(h.quantile_bound(1.0), u64::MAX);
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let parts: Vec<Histogram> = [vec![0u64, 1, 7], vec![u64::MAX, 2], vec![1 << 40, 3, 3, 3]]
        .iter()
        .map(|samples| {
            let mut h = Histogram::new();
            for &s in samples.iter() {
                h.record(s);
            }
            h
        })
        .collect();

    let fold = |order: &[usize]| {
        let mut acc = Histogram::new();
        for &i in order {
            acc.merge(&parts[i]);
        }
        acc
    };
    let reference = fold(&[0, 1, 2]);
    for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        assert_eq!(fold(&order), reference, "merge order {order:?} changed the histogram");
    }

    // Nested grouping: (a + b) + c == a + (b + c).
    let mut left = parts[0];
    left.merge(&parts[1]);
    left.merge(&parts[2]);
    let mut bc = parts[1];
    bc.merge(&parts[2]);
    let mut right = parts[0];
    right.merge(&bc);
    assert_eq!(left, right);
}

/// A synthetic per-instance event stream, exercising every observer
/// callback with instance-specific values.
fn instance_recorder(tag: u64) -> MetricsRecorder {
    let mut rec = MetricsRecorder::new();
    for n in 0..=tag {
        rec.on_net_scheduled(NetId(n as u32));
    }
    rec.on_search_done(
        NetId(0),
        SearchKind::Hard,
        SearchProbe { expanded: tag * 10, relaxed: tag * 20, heap_peak: 4, found: true },
    );
    rec.on_search_done(
        NetId(0),
        SearchKind::Soft,
        SearchProbe { expanded: tag, relaxed: tag, heap_peak: 2, found: tag.is_multiple_of(2) },
    );
    rec.on_weak_modification(NetId(0), NetId(1));
    rec.on_strong_ripup(NetId(0), NetId(1), tag as u32);
    rec.on_penalty_escalation(NetId(1), 1 << tag);
    rec.on_net_committed(NetId(0));
    if tag % 2 == 1 {
        rec.on_net_failed(NetId(1));
    }
    rec
}

#[test]
fn recorder_merge_is_associative_across_instance_orders() {
    // The engine merges per-instance recorders in input order today,
    // but nothing in the contract pins that — any grouping and order a
    // future scheduler picks must produce identical aggregates.
    let instances: Vec<MetricsRecorder> = (1..=4).map(instance_recorder).collect();

    let fold = |order: &[usize]| {
        let mut acc = MetricsRecorder::new();
        for &i in order {
            acc.merge(&instances[i]);
        }
        acc
    };
    let reference = fold(&[0, 1, 2, 3]);
    for order in
        [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1], [0, 2, 1, 3], [3, 0, 1, 2], [1, 0, 3, 2]]
    {
        assert_eq!(fold(&order), reference, "merge order {order:?} changed the aggregate");
    }

    // Nested grouping: merging pre-merged halves equals a flat fold.
    let mut front = MetricsRecorder::new();
    front.merge(&instances[0]);
    front.merge(&instances[1]);
    let mut back = MetricsRecorder::new();
    back.merge(&instances[2]);
    back.merge(&instances[3]);
    let mut grouped = MetricsRecorder::new();
    grouped.merge(&front);
    grouped.merge(&back);
    assert_eq!(grouped, reference);

    // The aggregate really is the sum of its parts.
    assert_eq!(reference.nets_scheduled(), (1..=4u64).map(|t| t + 1).sum::<u64>());
    assert_eq!(reference.nets_committed(), 4);
    assert_eq!(reference.nets_failed(), 2);
    assert_eq!(reference.max_penalty(), 1 << 4);
    assert_eq!(reference.expansion().count(), 8);
}

#[test]
fn merging_an_empty_recorder_is_identity() {
    let rec = instance_recorder(3);
    let mut merged = MetricsRecorder::new();
    merged.merge(&rec);
    merged.merge(&MetricsRecorder::new());
    assert_eq!(merged, rec);
    let mut from_empty = MetricsRecorder::new();
    from_empty.merge(&MetricsRecorder::new());
    from_empty.merge(&rec);
    assert_eq!(from_empty, rec);
}
