use std::fmt;

use route_geom::{Dir, Layer, Point, Rect, NUM_LAYERS};

use crate::NetId;

/// What occupies one grid cell on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Occupant {
    /// Nothing; wiring may be placed here.
    #[default]
    Free,
    /// Permanently unusable: an obstacle, or outside the routing region.
    Blocked,
    /// Wiring (or a pin) of the given net.
    Net(NetId),
}

impl Occupant {
    /// The net occupying this slot, if any.
    #[inline]
    pub const fn net(self) -> Option<NetId> {
        match self {
            Occupant::Net(n) => Some(n),
            _ => None,
        }
    }

    /// Whether the slot is free.
    #[inline]
    pub const fn is_free(self) -> bool {
        matches!(self, Occupant::Free)
    }
}

impl fmt::Display for Occupant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Occupant::Free => f.write_str("free"),
            Occupant::Blocked => f.write_str("blocked"),
            Occupant::Net(n) => write!(f, "{n}"),
        }
    }
}

/// One grid cell: per-layer occupancy plus optional vias between
/// adjacent layer pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Occupancy per layer, indexed by [`Layer::index`].
    pub occ: [Occupant; NUM_LAYERS],
    /// Net owning a via per adjacent layer pair, indexed by the lower
    /// layer (`[0]` = M1–M2, `[1]` = M2–M3).
    pub vias: [Option<NetId>; NUM_LAYERS - 1],
}

/// The two-layer occupancy grid of a routing area.
///
/// Cells outside the rectilinear routing region and cells covered by
/// obstacles are marked [`Occupant::Blocked`] at construction time, so
/// routers only ever need the occupancy query.
///
/// # Examples
///
/// ```
/// use route_model::{Grid, Occupant};
/// use route_geom::{Layer, Point};
///
/// let g = Grid::new(4, 3);
/// assert!(g.in_bounds(Point::new(3, 2)));
/// assert_eq!(g.occupant(Point::new(0, 0), Layer::M1), Occupant::Free);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: u32,
    height: u32,
    cells: Vec<Cell>,
    /// Bit-packed "is free" plane: one bit per cell per layer, one
    /// `u64` word per 64 row-major cells, `words` words per layer.
    /// Kept coherent with `cells` by every occupancy mutation.
    free: Vec<u64>,
    /// Words per layer plane in `free`.
    words: usize,
}

impl Grid {
    /// Creates an all-free grid of `width x height` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        let cells = (width * height) as usize;
        let words = cells.div_ceil(64);
        let mut free = vec![u64::MAX; words * NUM_LAYERS];
        // Clear the tail bits past the last real cell so every set bit
        // corresponds to an actual free slot.
        let tail = cells % 64;
        if tail != 0 {
            for layer in 0..NUM_LAYERS {
                free[layer * words + words - 1] = (1u64 << tail) - 1;
            }
        }
        Grid { width, height, cells: vec![Cell::default(); cells], free, words }
    }

    /// Number of columns.
    #[inline]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// The rectangle covering the whole grid.
    pub fn bounds(&self) -> Rect {
        Rect::new(Point::new(0, 0), Point::new(self.width as i32 - 1, self.height as i32 - 1))
    }

    /// Whether `p` lies on the grid.
    #[inline]
    pub const fn in_bounds(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }

    #[inline]
    fn idx(&self, p: Point) -> usize {
        debug_assert!(self.in_bounds(p), "point {p} out of bounds");
        p.y as usize * self.width as usize + p.x as usize
    }

    /// The full cell at `p`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `p` is out of bounds.
    #[inline]
    pub fn cell(&self, p: Point) -> Cell {
        self.cells[self.idx(p)]
    }

    /// Occupancy of `p` on `layer`.
    #[inline]
    pub fn occupant(&self, p: Point, layer: Layer) -> Occupant {
        self.cells[self.idx(p)].occ[layer.index()]
    }

    /// Net owning the via between `lower` and the layer above it at `p`.
    ///
    /// Returns `None` for `lower == M3` (there is no layer above).
    #[inline]
    pub fn via_between(&self, p: Point, lower: Layer) -> Option<NetId> {
        if lower.index() >= NUM_LAYERS - 1 {
            return None;
        }
        self.cells[self.idx(p)].vias[lower.index()]
    }

    /// Whether any via (of any pair) exists at `p`.
    #[inline]
    pub fn has_via(&self, p: Point) -> bool {
        self.cells[self.idx(p)].vias.iter().any(Option::is_some)
    }

    /// Sets the occupancy of `p` on `layer`, keeping the bit-packed
    /// free plane coherent.
    #[inline]
    pub fn set_occupant(&mut self, p: Point, layer: Layer, occ: Occupant) {
        let i = self.idx(p);
        self.cells[i].occ[layer.index()] = occ;
        let word = layer.index() * self.words + (i >> 6);
        let bit = 1u64 << (i & 63);
        if occ.is_free() {
            self.free[word] |= bit;
        } else {
            self.free[word] &= !bit;
        }
    }

    /// Sets or clears the via between `lower` and the layer above it at
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if `lower` is the topmost layer (no pair above it).
    #[inline]
    pub fn set_via_between(&mut self, p: Point, lower: Layer, net: Option<NetId>) {
        assert!(lower.index() < NUM_LAYERS - 1, "no layer above {lower}");
        let i = self.idx(p);
        self.cells[i].vias[lower.index()] = net;
    }

    /// Whether `p` is free on `layer` (in bounds, unoccupied, no foreign
    /// via). Served from the bit-packed plane: one word fetch, no cell
    /// dereference.
    pub fn is_free(&self, p: Point, layer: Layer) -> bool {
        if !self.in_bounds(p) {
            return false;
        }
        let i = p.y as usize * self.width as usize + p.x as usize;
        (self.free[layer.index() * self.words + (i >> 6)] >> (i & 63)) & 1 == 1
    }

    /// A borrowed read-only view of the bit-packed occupancy plane —
    /// the narrow API hot loops probe instead of per-cell
    /// [`Grid::occupant`] calls.
    #[inline]
    pub fn occupancy_view(&self) -> OccupancyView<'_> {
        OccupancyView { grid: self }
    }

    /// Verifies that the bit-packed free plane agrees with `cells`
    /// bit for bit (including the zeroed tail past the last cell).
    /// Intended for debug assertions and the fuzz oracles; costs a
    /// full grid scan.
    pub fn debug_validate_bits(&self) -> bool {
        for layer in 0..NUM_LAYERS {
            for w in 0..self.words {
                let mut expect = 0u64;
                for b in 0..64 {
                    let cell = (w << 6) | b;
                    if cell < self.cells.len() && self.cells[cell].occ[layer].is_free() {
                        expect |= 1u64 << b;
                    }
                }
                if self.free[layer * self.words + w] != expect {
                    return false;
                }
            }
        }
        true
    }

    /// Whether net `net` may occupy `p` on `layer`: the slot is free or
    /// already owned by the same net.
    pub fn admits(&self, p: Point, layer: Layer, net: NetId) -> bool {
        if !self.in_bounds(p) {
            return false;
        }
        match self.occupant(p, layer) {
            Occupant::Free => true,
            Occupant::Net(n) => n == net,
            Occupant::Blocked => false,
        }
    }

    /// Iterates over all in-bounds points, row-major.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.bounds().cells()
    }

    /// Count of free slots over both layers (capacity measure).
    pub fn free_slots(&self) -> usize {
        self.cells.iter().flat_map(|c| c.occ.iter()).filter(|o| o.is_free()).count()
    }
}

/// Read-only window onto the [`Grid`]'s bit-packed free plane.
///
/// One bit per cell per layer, one `u64` word per 64 row-major cells.
/// Hot loops (the `SearchArena` expansion loop, the sequential Lee
/// router, the rip-up router) probe this instead of dereferencing
/// 40-byte [`Cell`]s: a free slot is decided by a single word fetch,
/// and all four Manhattan neighbors by [`OccupancyView::neighbor_free_mask`]
/// without a branch per direction.
///
/// # Examples
///
/// ```
/// use route_model::Grid;
/// use route_geom::{Layer, Point};
///
/// let g = Grid::new(8, 8);
/// let view = g.occupancy_view();
/// assert!(view.is_free(Point::new(3, 3), Layer::M1));
/// // All four neighbors of an interior point of an empty grid are free.
/// assert_eq!(view.neighbor_free_mask(Point::new(3, 3), Layer::M1), 0b1111);
/// // A corner sees only its two in-bounds neighbors.
/// assert_ne!(view.neighbor_free_mask(Point::new(0, 0), Layer::M1), 0b1111);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OccupancyView<'a> {
    grid: &'a Grid,
}

impl OccupancyView<'_> {
    /// Number of `u64` words per layer plane.
    #[inline]
    pub fn words_per_layer(&self) -> usize {
        self.grid.words
    }

    /// Raw word `word` of `layer`'s plane (bit `b` of word `w` covers
    /// row-major cell `64*w + b`; bits past the last cell are zero).
    #[inline]
    pub fn word(&self, layer: Layer, word: usize) -> u64 {
        self.grid.free[layer.index() * self.grid.words + word]
    }

    /// Whether `p` is free on `layer` (out of bounds counts as not
    /// free). Equivalent to [`Grid::is_free`].
    #[inline]
    pub fn is_free(&self, p: Point, layer: Layer) -> bool {
        self.grid.is_free(p, layer)
    }

    /// One-word-fetch probe of the four Manhattan neighbors of `p` on
    /// `layer`: bit `i` of the result is set iff `p` stepped by
    /// [`route_geom::Dir::ALL`]`[i]` is in bounds and free.
    ///
    /// `p` itself need not be in bounds; every out-of-bounds neighbor
    /// reports not-free. The four edge tests are the only branches and
    /// predict perfectly on interior cells.
    #[inline]
    pub fn neighbor_free_mask(&self, p: Point, layer: Layer) -> u8 {
        let w = self.grid.width as i64;
        let h = self.grid.height as i64;
        let (x, y) = (p.x as i64, p.y as i64);
        if x < 0 || y < 0 || x >= w || y >= h {
            // Off-grid center: fall back to the per-neighbor scalar
            // probe (at most one neighbor can be in bounds).
            let mut mask = 0u8;
            for (i, dir) in Dir::ALL.iter().enumerate() {
                mask |= u8::from(self.grid.is_free(p.step(*dir), layer)) << i;
            }
            return mask;
        }
        let plane =
            &self.grid.free[layer.index() * self.grid.words..(layer.index() + 1) * self.grid.words];
        let cell = (y * w + x) as usize;
        let bit = |c: usize| ((plane[c >> 6] >> (c & 63)) & 1) as u8;
        let wu = w as usize;
        let mut mask = 0u8;
        // Dir::ALL order: North (+w), South (-w), East (+1), West (-1).
        if y + 1 < h {
            mask |= bit(cell + wu);
        }
        if y > 0 {
            mask |= bit(cell - wu) << 1;
        }
        if x + 1 < w {
            mask |= bit(cell + 1) << 2;
        }
        if x > 0 {
            mask |= bit(cell - 1) << 3;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_free() {
        let g = Grid::new(5, 4);
        assert_eq!(g.free_slots(), 5 * 4 * NUM_LAYERS);
        for p in g.points() {
            for l in Layer::ALL {
                assert!(g.is_free(p, l));
            }
            assert!(!g.has_via(p));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let _ = Grid::new(0, 5);
    }

    #[test]
    fn set_and_get_occupant() {
        let mut g = Grid::new(3, 3);
        let p = Point::new(1, 2);
        g.set_occupant(p, Layer::M2, Occupant::Net(NetId(7)));
        assert_eq!(g.occupant(p, Layer::M2), Occupant::Net(NetId(7)));
        assert_eq!(g.occupant(p, Layer::M1), Occupant::Free);
        assert!(!g.is_free(p, Layer::M2));
        assert!(g.is_free(p, Layer::M1));
    }

    #[test]
    fn admits_same_net_only() {
        let mut g = Grid::new(3, 3);
        let p = Point::new(0, 0);
        g.set_occupant(p, Layer::M1, Occupant::Net(NetId(1)));
        assert!(g.admits(p, Layer::M1, NetId(1)));
        assert!(!g.admits(p, Layer::M1, NetId(2)));
        g.set_occupant(p, Layer::M1, Occupant::Blocked);
        assert!(!g.admits(p, Layer::M1, NetId(1)));
        assert!(!g.admits(Point::new(-1, 0), Layer::M1, NetId(1)));
    }

    #[test]
    fn via_round_trip() {
        let mut g = Grid::new(2, 2);
        let p = Point::new(1, 1);
        g.set_via_between(p, Layer::M1, Some(NetId(3)));
        assert_eq!(g.via_between(p, Layer::M1), Some(NetId(3)));
        assert_eq!(g.via_between(p, Layer::M2), None);
        assert!(g.has_via(p));
        g.set_via_between(p, Layer::M2, Some(NetId(4)));
        assert_eq!(g.via_between(p, Layer::M2), Some(NetId(4)));
        g.set_via_between(p, Layer::M1, None);
        assert_eq!(g.via_between(p, Layer::M1), None);
        assert!(g.has_via(p), "the M2-M3 via remains");
        // The topmost layer has no pair above it.
        assert_eq!(g.via_between(p, Layer::M3), None);
    }

    #[test]
    #[should_panic(expected = "no layer above")]
    fn set_via_above_top_rejected() {
        let mut g = Grid::new(2, 2);
        g.set_via_between(Point::new(0, 0), Layer::M3, Some(NetId(1)));
    }

    #[test]
    fn bounds_cover_grid() {
        let g = Grid::new(7, 2);
        let b = g.bounds();
        assert_eq!(b.width(), 7);
        assert_eq!(b.height(), 2);
        assert_eq!(g.points().count() as u64, b.area());
    }

    #[test]
    fn occupant_display() {
        assert_eq!(Occupant::Free.to_string(), "free");
        assert_eq!(Occupant::Blocked.to_string(), "blocked");
        assert_eq!(Occupant::Net(NetId(2)).to_string(), "n2");
    }

    #[test]
    fn bit_plane_tracks_mutations() {
        let mut g = Grid::new(9, 5);
        assert!(g.debug_validate_bits());
        let p = Point::new(4, 2);
        g.set_occupant(p, Layer::M2, Occupant::Net(NetId(1)));
        assert!(g.debug_validate_bits());
        assert!(!g.is_free(p, Layer::M2));
        g.set_occupant(p, Layer::M2, Occupant::Free);
        assert!(g.debug_validate_bits());
        assert!(g.is_free(p, Layer::M2));
        // Re-blocking the same slot twice stays coherent.
        g.set_occupant(p, Layer::M2, Occupant::Blocked);
        g.set_occupant(p, Layer::M2, Occupant::Blocked);
        assert!(g.debug_validate_bits());
    }

    #[test]
    fn neighbor_mask_matches_dir_all() {
        use route_geom::Dir;
        let mut g = Grid::new(5, 4);
        g.set_occupant(Point::new(2, 2), Layer::M1, Occupant::Blocked);
        g.set_occupant(Point::new(1, 1), Layer::M1, Occupant::Net(NetId(0)));
        let view = g.occupancy_view();
        for p in g.points() {
            for layer in Layer::ALL {
                let mask = view.neighbor_free_mask(p, layer);
                for (i, dir) in Dir::ALL.iter().enumerate() {
                    let n = p.step(*dir);
                    assert_eq!(
                        mask >> i & 1 == 1,
                        g.is_free(n, layer),
                        "p={p} dir={dir:?} layer={layer}"
                    );
                }
            }
        }
    }

    #[test]
    fn word_layout_is_row_major_per_layer() {
        let g = Grid::new(70, 2);
        let view = g.occupancy_view();
        assert_eq!(view.words_per_layer(), (70 * 2usize).div_ceil(64));
        assert_eq!(view.word(Layer::M1, 0), u64::MAX);
        // 140 cells -> tail word holds 140 - 128 = 12 live bits.
        assert_eq!(view.word(Layer::M3, 2), (1 << 12) - 1);
    }
}
