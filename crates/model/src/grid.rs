use std::fmt;

use route_geom::{Layer, Point, Rect, NUM_LAYERS};

use crate::NetId;

/// What occupies one grid cell on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Occupant {
    /// Nothing; wiring may be placed here.
    #[default]
    Free,
    /// Permanently unusable: an obstacle, or outside the routing region.
    Blocked,
    /// Wiring (or a pin) of the given net.
    Net(NetId),
}

impl Occupant {
    /// The net occupying this slot, if any.
    #[inline]
    pub const fn net(self) -> Option<NetId> {
        match self {
            Occupant::Net(n) => Some(n),
            _ => None,
        }
    }

    /// Whether the slot is free.
    #[inline]
    pub const fn is_free(self) -> bool {
        matches!(self, Occupant::Free)
    }
}

impl fmt::Display for Occupant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Occupant::Free => f.write_str("free"),
            Occupant::Blocked => f.write_str("blocked"),
            Occupant::Net(n) => write!(f, "{n}"),
        }
    }
}

/// One grid cell: per-layer occupancy plus optional vias between
/// adjacent layer pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Occupancy per layer, indexed by [`Layer::index`].
    pub occ: [Occupant; NUM_LAYERS],
    /// Net owning a via per adjacent layer pair, indexed by the lower
    /// layer (`[0]` = M1–M2, `[1]` = M2–M3).
    pub vias: [Option<NetId>; NUM_LAYERS - 1],
}

/// The two-layer occupancy grid of a routing area.
///
/// Cells outside the rectilinear routing region and cells covered by
/// obstacles are marked [`Occupant::Blocked`] at construction time, so
/// routers only ever need the occupancy query.
///
/// # Examples
///
/// ```
/// use route_model::{Grid, Occupant};
/// use route_geom::{Layer, Point};
///
/// let g = Grid::new(4, 3);
/// assert!(g.in_bounds(Point::new(3, 2)));
/// assert_eq!(g.occupant(Point::new(0, 0), Layer::M1), Occupant::Free);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: u32,
    height: u32,
    cells: Vec<Cell>,
}

impl Grid {
    /// Creates an all-free grid of `width x height` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        Grid { width, height, cells: vec![Cell::default(); (width * height) as usize] }
    }

    /// Number of columns.
    #[inline]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// The rectangle covering the whole grid.
    pub fn bounds(&self) -> Rect {
        Rect::new(Point::new(0, 0), Point::new(self.width as i32 - 1, self.height as i32 - 1))
    }

    /// Whether `p` lies on the grid.
    #[inline]
    pub const fn in_bounds(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }

    #[inline]
    fn idx(&self, p: Point) -> usize {
        debug_assert!(self.in_bounds(p), "point {p} out of bounds");
        p.y as usize * self.width as usize + p.x as usize
    }

    /// The full cell at `p`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `p` is out of bounds.
    #[inline]
    pub fn cell(&self, p: Point) -> Cell {
        self.cells[self.idx(p)]
    }

    /// Occupancy of `p` on `layer`.
    #[inline]
    pub fn occupant(&self, p: Point, layer: Layer) -> Occupant {
        self.cells[self.idx(p)].occ[layer.index()]
    }

    /// Net owning the via between `lower` and the layer above it at `p`.
    ///
    /// Returns `None` for `lower == M3` (there is no layer above).
    #[inline]
    pub fn via_between(&self, p: Point, lower: Layer) -> Option<NetId> {
        if lower.index() >= NUM_LAYERS - 1 {
            return None;
        }
        self.cells[self.idx(p)].vias[lower.index()]
    }

    /// Whether any via (of any pair) exists at `p`.
    #[inline]
    pub fn has_via(&self, p: Point) -> bool {
        self.cells[self.idx(p)].vias.iter().any(Option::is_some)
    }

    /// Sets the occupancy of `p` on `layer`.
    #[inline]
    pub fn set_occupant(&mut self, p: Point, layer: Layer, occ: Occupant) {
        let i = self.idx(p);
        self.cells[i].occ[layer.index()] = occ;
    }

    /// Sets or clears the via between `lower` and the layer above it at
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if `lower` is the topmost layer (no pair above it).
    #[inline]
    pub fn set_via_between(&mut self, p: Point, lower: Layer, net: Option<NetId>) {
        assert!(lower.index() < NUM_LAYERS - 1, "no layer above {lower}");
        let i = self.idx(p);
        self.cells[i].vias[lower.index()] = net;
    }

    /// Whether `p` is free on `layer` (in bounds, unoccupied, no foreign
    /// via).
    pub fn is_free(&self, p: Point, layer: Layer) -> bool {
        self.in_bounds(p) && self.occupant(p, layer).is_free()
    }

    /// Whether net `net` may occupy `p` on `layer`: the slot is free or
    /// already owned by the same net.
    pub fn admits(&self, p: Point, layer: Layer, net: NetId) -> bool {
        if !self.in_bounds(p) {
            return false;
        }
        match self.occupant(p, layer) {
            Occupant::Free => true,
            Occupant::Net(n) => n == net,
            Occupant::Blocked => false,
        }
    }

    /// Iterates over all in-bounds points, row-major.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.bounds().cells()
    }

    /// Count of free slots over both layers (capacity measure).
    pub fn free_slots(&self) -> usize {
        self.cells.iter().flat_map(|c| c.occ.iter()).filter(|o| o.is_free()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_free() {
        let g = Grid::new(5, 4);
        assert_eq!(g.free_slots(), 5 * 4 * NUM_LAYERS);
        for p in g.points() {
            for l in Layer::ALL {
                assert!(g.is_free(p, l));
            }
            assert!(!g.has_via(p));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let _ = Grid::new(0, 5);
    }

    #[test]
    fn set_and_get_occupant() {
        let mut g = Grid::new(3, 3);
        let p = Point::new(1, 2);
        g.set_occupant(p, Layer::M2, Occupant::Net(NetId(7)));
        assert_eq!(g.occupant(p, Layer::M2), Occupant::Net(NetId(7)));
        assert_eq!(g.occupant(p, Layer::M1), Occupant::Free);
        assert!(!g.is_free(p, Layer::M2));
        assert!(g.is_free(p, Layer::M1));
    }

    #[test]
    fn admits_same_net_only() {
        let mut g = Grid::new(3, 3);
        let p = Point::new(0, 0);
        g.set_occupant(p, Layer::M1, Occupant::Net(NetId(1)));
        assert!(g.admits(p, Layer::M1, NetId(1)));
        assert!(!g.admits(p, Layer::M1, NetId(2)));
        g.set_occupant(p, Layer::M1, Occupant::Blocked);
        assert!(!g.admits(p, Layer::M1, NetId(1)));
        assert!(!g.admits(Point::new(-1, 0), Layer::M1, NetId(1)));
    }

    #[test]
    fn via_round_trip() {
        let mut g = Grid::new(2, 2);
        let p = Point::new(1, 1);
        g.set_via_between(p, Layer::M1, Some(NetId(3)));
        assert_eq!(g.via_between(p, Layer::M1), Some(NetId(3)));
        assert_eq!(g.via_between(p, Layer::M2), None);
        assert!(g.has_via(p));
        g.set_via_between(p, Layer::M2, Some(NetId(4)));
        assert_eq!(g.via_between(p, Layer::M2), Some(NetId(4)));
        g.set_via_between(p, Layer::M1, None);
        assert_eq!(g.via_between(p, Layer::M1), None);
        assert!(g.has_via(p), "the M2-M3 via remains");
        // The topmost layer has no pair above it.
        assert_eq!(g.via_between(p, Layer::M3), None);
    }

    #[test]
    #[should_panic(expected = "no layer above")]
    fn set_via_above_top_rejected() {
        let mut g = Grid::new(2, 2);
        g.set_via_between(Point::new(0, 0), Layer::M3, Some(NetId(1)));
    }

    #[test]
    fn bounds_cover_grid() {
        let g = Grid::new(7, 2);
        let b = g.bounds();
        assert_eq!(b.width(), 7);
        assert_eq!(b.height(), 2);
        assert_eq!(g.points().count() as u64, b.area());
    }

    #[test]
    fn occupant_display() {
        assert_eq!(Occupant::Free.to_string(), "free");
        assert_eq!(Occupant::Blocked.to_string(), "blocked");
        assert_eq!(Occupant::Net(NetId(2)).to_string(), "n2");
    }
}
