//! The unified detailed-routing API: every router in the workspace —
//! the rip-up/reroute router, the sequential maze baseline and the
//! channel/switchbox baselines — can be driven through the
//! [`DetailedRouter`] trait, taking a [`Problem`] and returning a
//! [`RouteResult`].
//!
//! The trait is the batch engine's currency: anything implementing it
//! can be fanned out over a problem list without the caller knowing
//! which algorithm is behind it.

use std::error::Error;
use std::fmt;

use crate::observe::RouteObserver;
use crate::{NetId, Problem, RouteDb};

/// Error shared by every router behind [`DetailedRouter`].
///
/// The variants split *structural* rejections (the router does not
/// handle this problem shape) from *routing* failures (the problem is in
/// scope but could not be completed within the router's budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The router does not handle this problem shape at all (e.g. a
    /// channel router given interior pins or obstacles).
    Unsupported {
        /// Explanation of the offending feature.
        reason: String,
    },
    /// The problem is in scope but the router could not produce a legal
    /// routing for it.
    Unroutable {
        /// Explanation of the failure.
        reason: String,
    },
    /// The vertical constraint graph contains a cycle the router cannot
    /// break (left-edge channel-router family).
    VerticalCycle {
        /// Net numbers (1-based, as in the channel spec) on the cycle.
        cycle: Vec<u32>,
    },
    /// The router exhausted its track or column budget.
    BudgetExhausted {
        /// Tracks in use when the router gave up.
        tracks: usize,
    },
    /// A pre-routed database was paired with the wrong problem.
    DbMismatch {
        /// Nets in the problem.
        expected: usize,
        /// Nets in the database.
        found: usize,
    },
    /// The router panicked; the batch engine converts panics into this
    /// variant so one bad instance cannot take down a batch.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Static analysis proved the problem admits no complete routing,
    /// so no router was run at all. Carries the human-readable summary
    /// of the first infeasibility certificate; the full machine-checkable
    /// witness lives in the `route-analyze` crate's report.
    Infeasible {
        /// Summary of the infeasibility proof (e.g. the saturated cut).
        reason: String,
    },
    /// The instance blew its wall-clock budget. The batch engine cannot
    /// interrupt a running router, but it disqualifies results delivered
    /// after the deadline so comparisons stay budget-fair.
    DeadlineExceeded {
        /// Time the instance actually took, in milliseconds.
        elapsed_ms: u64,
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

impl RouteError {
    /// Whether a supervised re-attempt of the same instance could
    /// plausibly succeed.
    ///
    /// This is the classification the recovery layer consults before
    /// retrying an instance under an escalated budget:
    ///
    /// - **Retryable** failures depend on the router's budget, schedule
    ///   or environment: [`Unroutable`](RouteError::Unroutable) and
    ///   [`BudgetExhausted`](RouteError::BudgetExhausted) can yield to a
    ///   bigger rip-up budget or a different net order,
    ///   [`DeadlineExceeded`](RouteError::DeadlineExceeded) to a retry
    ///   that stays under the wall clock, and
    ///   [`Panicked`](RouteError::Panicked) to a re-run (though
    ///   supervisors cap panic retries at one, since a deterministic
    ///   router panics the same way twice).
    /// - **Non-retryable** failures are structural facts about the
    ///   problem/router pairing that no budget can change:
    ///   [`Unsupported`](RouteError::Unsupported),
    ///   [`VerticalCycle`](RouteError::VerticalCycle) and
    ///   [`DbMismatch`](RouteError::DbMismatch) describe the input
    ///   shape, and [`Infeasible`](RouteError::Infeasible) carries a
    ///   proof that *no* router can complete the instance, so retrying
    ///   would only burn the budget the proof already saved.
    pub fn is_retryable(&self) -> bool {
        match self {
            RouteError::Unroutable { .. }
            | RouteError::BudgetExhausted { .. }
            | RouteError::Panicked { .. }
            | RouteError::DeadlineExceeded { .. } => true,
            RouteError::Unsupported { .. }
            | RouteError::VerticalCycle { .. }
            | RouteError::DbMismatch { .. }
            | RouteError::Infeasible { .. } => false,
        }
    }
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unsupported { reason } => write!(f, "unsupported problem: {reason}"),
            RouteError::Unroutable { reason } => write!(f, "unroutable: {reason}"),
            RouteError::VerticalCycle { cycle } => {
                write!(f, "vertical constraint cycle through nets {cycle:?}")
            }
            RouteError::BudgetExhausted { tracks } => {
                write!(f, "router exhausted its budget at {tracks} tracks")
            }
            RouteError::DbMismatch { expected, found } => {
                write!(f, "database has {found} nets but the problem has {expected}")
            }
            RouteError::Panicked { message } => write!(f, "router panicked: {message}"),
            RouteError::Infeasible { reason } => {
                write!(f, "provably infeasible: {reason}")
            }
            RouteError::DeadlineExceeded { elapsed_ms, budget_ms } => {
                write!(f, "deadline exceeded: {elapsed_ms} ms against a {budget_ms} ms budget")
            }
        }
    }
}

impl Error for RouteError {}

/// A successful (possibly incomplete) routing: the committed database
/// plus the nets that could not be connected.
///
/// Routers that are *complete-or-error* (the channel baselines) always
/// return an empty `failed` list; routers that degrade gracefully (the
/// rip-up router, the sequential baseline) report the nets they gave up
/// on and deliver the rest.
#[derive(Debug, Clone)]
pub struct Routing {
    /// The database with all committed wiring.
    pub db: RouteDb,
    /// Nets with at least one unconnected pin, ascending.
    pub failed: Vec<NetId>,
}

impl Routing {
    /// Whether every net was fully connected.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// What a [`DetailedRouter`] returns.
pub type RouteResult = Result<Routing, RouteError>;

/// A detailed router: anything that can take a grid [`Problem`] and
/// produce a committed routing (or a structured error).
///
/// Implementations must be deterministic — the same problem must produce
/// the same [`RouteDb::checksum`] on every call — because the batch
/// engine routes instances concurrently and promises bit-identical
/// results regardless of thread count.
///
/// # Examples
///
/// ```
/// use route_model::{DetailedRouter, Problem, RouteResult, Routing, RouteDb};
///
/// /// A "router" that commits nothing and fails every net.
/// struct GiveUp;
///
/// impl DetailedRouter for GiveUp {
///     fn name(&self) -> &str {
///         "give-up"
///     }
///     fn route(&self, problem: &Problem) -> RouteResult {
///         Ok(Routing {
///             db: RouteDb::new(problem),
///             failed: problem.nets().iter().map(|n| n.id).collect(),
///         })
///     }
/// }
/// ```
pub trait DetailedRouter {
    /// A short stable name identifying the algorithm (used in reports
    /// and benchmark tables).
    fn name(&self) -> &str;

    /// Routes `problem` from scratch.
    fn route(&self, problem: &Problem) -> RouteResult;

    /// Routes `problem` from scratch, reporting progress to `observer`.
    ///
    /// Every implementation emits the same event vocabulary (see
    /// [`RouteObserver`]); the provided default routes normally and then
    /// emits the summary subset — one
    /// [`on_net_scheduled`](RouteObserver::on_net_scheduled) followed by
    /// [`on_net_committed`](RouteObserver::on_net_committed) or
    /// [`on_net_failed`](RouteObserver::on_net_failed) per net — so
    /// complete-or-error baselines (the channel and switchbox adapters)
    /// are observable without bespoke instrumentation. Routers with
    /// richer internals (the rip-up router, the sequential baseline)
    /// override this to stream search and modification events live.
    ///
    /// Observation must never change the result: `route_observed` with
    /// any observer returns a database with the same
    /// [`RouteDb::checksum`] as [`route`](DetailedRouter::route).
    fn route_observed(&self, problem: &Problem, observer: &mut dyn RouteObserver) -> RouteResult {
        let result = self.route(problem);
        if let Ok(routing) = &result {
            for net in problem.nets() {
                observer.on_net_scheduled(net.id);
                if routing.failed.contains(&net.id) {
                    observer.on_net_failed(net.id);
                } else {
                    observer.on_net_committed(net.id);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PinSide, ProblemBuilder};

    struct Null;

    impl DetailedRouter for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn route(&self, problem: &Problem) -> RouteResult {
            Ok(Routing {
                db: RouteDb::new(problem),
                failed: problem.nets().iter().map(|n| n.id).collect(),
            })
        }
    }

    fn tiny() -> Problem {
        let mut b = ProblemBuilder::switchbox(4, 3);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.build().unwrap()
    }

    #[test]
    fn default_route_observed_emits_summary_vocabulary() {
        use crate::{EventLog, RouteEvent};
        let p = tiny();
        let mut log = EventLog::new();
        let routing = Null.route_observed(&p, &mut log).unwrap();
        assert!(!routing.is_complete());
        let id = p.nets()[0].id;
        assert_eq!(
            log.events(),
            &[RouteEvent::NetScheduled { net: id }, RouteEvent::NetFailed { net: id }]
        );
    }

    #[test]
    fn trait_objects_work() {
        let routers: Vec<Box<dyn DetailedRouter>> = vec![Box::new(Null)];
        let p = tiny();
        for r in &routers {
            assert_eq!(r.name(), "null");
            let routing = r.route(&p).unwrap();
            assert!(!routing.is_complete());
            assert_eq!(routing.failed.len(), 1);
        }
    }

    #[test]
    fn errors_render_and_classify_retryability() {
        // One row per variant: display needle + whether a supervised
        // retry is allowed to re-attempt it. Budget- and environment-
        // dependent failures retry; structural rejections and
        // infeasibility proofs never do (and `Panicked` retries are
        // additionally capped at one by the supervisor itself).
        let cases: Vec<(RouteError, &str, bool)> = vec![
            (RouteError::Unsupported { reason: "x".into() }, "unsupported", false),
            (RouteError::Unroutable { reason: "y".into() }, "unroutable", true),
            (RouteError::VerticalCycle { cycle: vec![1, 2] }, "cycle", false),
            (RouteError::BudgetExhausted { tracks: 3 }, "budget", true),
            (RouteError::DbMismatch { expected: 2, found: 1 }, "database", false),
            (RouteError::Panicked { message: "boom".into() }, "panicked", true),
            (RouteError::Infeasible { reason: "cut".into() }, "infeasible", false),
            (RouteError::DeadlineExceeded { elapsed_ms: 9, budget_ms: 5 }, "deadline", true),
        ];
        for (e, needle, retryable) in cases {
            assert!(e.to_string().contains(needle), "{e}");
            assert_eq!(e.is_retryable(), retryable, "retryability of {e}");
        }
    }
}
